//! Regression bands for the reproduced results: if a change to the
//! scheduler, the workloads, or the timing model pushes the headline
//! numbers out of the paper-shaped bands recorded in EXPERIMENTS.md, these
//! tests fail. Runs on a representative subset to stay fast; the full
//! tables come from `veal-bench`.

use veal::{run_application, AccelSetup, CpuModel, TranslationPolicy};

fn subset() -> Vec<veal_workloads::Application> {
    [
        "rawcaudio",
        "mpeg2dec",
        "pegwitenc",
        "172.mgrid",
        "cjpeg",
        "171.swim",
    ]
    .iter()
    .filter_map(|n| veal::workloads::application(n))
    .collect()
}

fn mean(apps: &[veal_workloads::Application], setup: &AccelSetup) -> f64 {
    let cpu = CpuModel::arm11();
    apps.iter()
        .map(|a| run_application(a, &cpu, setup).speedup())
        .sum::<f64>()
        / apps.len() as f64
}

#[test]
fn headline_means_stay_in_their_bands() {
    let apps = subset();
    let native = mean(&apps, &AccelSetup::native());
    let dynamic = mean(
        &apps,
        &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
    );
    let hinted = mean(&apps, &AccelSetup::paper(TranslationPolicy::static_hints()));

    // Bands chosen around the current calibration (subset means are lower
    // than suite means because the subset over-represents the
    // translation-sensitive anchors).
    assert!((1.8..=4.2).contains(&native), "native {native}");
    assert!((1.2..=native).contains(&dynamic), "dynamic {dynamic}");
    assert!(
        (dynamic..=native + 1e-9).contains(&hinted),
        "hinted {hinted} outside [{dynamic}, {native}]"
    );
    // The hybrid scheme must recover most of what full dynamism loses
    // (paper: 2.27 -> 2.66 of 2.76).
    let recovered = (hinted - dynamic) / (native - dynamic).max(1e-9);
    assert!(recovered > 0.5, "hints recover only {recovered:.2}");
}

#[test]
fn anchor_apps_keep_their_paper_shapes() {
    let cpu = CpuModel::arm11();
    let check = |name: &str, min_native: f64, max_dyn_fraction: f64| {
        let app = veal::workloads::application(name).unwrap();
        let native = run_application(&app, &cpu, &AccelSetup::native()).speedup();
        let dynamic = run_application(
            &app,
            &cpu,
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        )
        .speedup();
        assert!(native >= min_native, "{name} native {native}");
        assert!(
            dynamic <= max_dyn_fraction * native,
            "{name}: dynamic {dynamic} vs native {native} — lost its paper shape"
        );
    };
    // Paper: mpeg2dec 2.1 -> 1.15; pegwitenc and mgrid lose ~everything.
    check("mpeg2dec", 1.4, 0.85);
    check("pegwitenc", 2.0, 0.65);
    check("172.mgrid", 3.0, 0.55);

    // And rawcaudio must NOT lose anything.
    let app = veal::workloads::application("rawcaudio").unwrap();
    let native = run_application(&app, &cpu, &AccelSetup::native()).speedup();
    let dynamic = run_application(
        &app,
        &cpu,
        &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
    )
    .speedup();
    assert!(dynamic > 0.97 * native, "rawcaudio became sensitive");
}

#[test]
fn design_point_fraction_band() {
    use veal::sim::dse::fraction_of_infinite;
    use veal::{AcceleratorConfig, CcaSpec};
    let apps = subset();
    let f = fraction_of_infinite(
        &apps,
        &CpuModel::arm11(),
        &AcceleratorConfig::paper_design(),
        Some(&CcaSpec::paper()),
    );
    // Paper: 83% on the full suite; keep a generous band on the subset.
    assert!((0.55..=1.01).contains(&f), "fraction {f}");
}

#[test]
fn figure8_magnitude_band() {
    // Suite-average translation cost must stay near the paper's ~100k
    // instructions, with priority the dominant phase.
    use veal::Phase;
    let cpu = CpuModel::arm11();
    let setup = AccelSetup::paper(TranslationPolicy::fully_dynamic());
    let mut total = veal_ir::PhaseBreakdown::default();
    let mut translations = 0u64;
    for app in subset() {
        let run = run_application(&app, &cpu, &setup);
        total.merge(&run.breakdown);
        translations += run.translations;
    }
    let avg = total.total() as f64 / translations.max(1) as f64;
    assert!(
        (20_000.0..=400_000.0).contains(&avg),
        "avg translation cost {avg}"
    );
    assert!(
        total.fraction(Phase::Priority) > 0.5,
        "priority no longer dominates: {:.2}",
        total.fraction(Phase::Priority)
    );
    assert!(total.fraction(Phase::Scheduling) < 0.2);
}
