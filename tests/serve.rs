//! Integration tests for the multi-tenant translation service
//! (DESIGN.md §11, `veal::serve`).
//!
//! The load-bearing property is the serving invariant: sharing a memo
//! across tenants and spreading work over threads must be *invisible* to
//! every individual tenant. Each test here attacks that from a different
//! side — solo-replay bit-identity, single-flight under contention,
//! sharded-vs-global memo equivalence, and deterministic shedding.

use std::sync::Arc;
use veal::serve::{generate, LoadSpec, ServeConfig, ServeReport, TranslationService};
use veal::VmStats;
use veal_vm::{MemoBackend, ShardedMemo, TranslationMemo};

fn spec(seed: u64, requests: usize, tenants: usize) -> LoadSpec {
    LoadSpec {
        seed,
        requests,
        tenants,
        ..LoadSpec::default()
    }
}

/// One request's observable result: stream position, charged translation
/// cycles, and the schedule (II and per-op placement) or a CPU-fallback
/// marker.
type Signature = Vec<(usize, u64, String)>;

/// A compact bit-accurate signature of one tenant's observable results.
fn tenant_signature(report: &ServeReport, tenant: usize) -> Signature {
    report.tenants[tenant]
        .outcomes
        .iter()
        .map(|o| {
            let sched = match &o.translated {
                None => "cpu".to_string(),
                Some(t) => format!(
                    "ii={} ops={:?}",
                    t.scheduled.schedule.ii,
                    t.scheduled.schedule.entries()
                ),
            };
            (o.seq, o.translation_cycles, sched)
        })
        .collect()
}

/// The differential determinism test the tentpole hangs on: per-tenant
/// stats and every translated schedule must be bit-identical to replaying
/// that tenant's requests on a solo session with no memo at all.
#[test]
fn served_tenants_are_bit_identical_to_solo_replay() {
    let cfg = ServeConfig {
        threads: 4,
        ..ServeConfig::paper()
    };
    let stream = generate(&spec(0xD1FF, 240, 5), &cfg.config, cfg.cca.as_ref());
    let service = TranslationService::new(cfg.clone());
    let report = service.run(&stream);
    assert_eq!(report.stats.shed, 0, "queues must be deep enough here");

    for t in 0..report.tenants.len() {
        // Replay this tenant's slice of the stream, alone, memo-less.
        let mut solo = cfg.solo_session();
        let mut solo_sig: Signature = Vec::new();
        for (seq, r) in stream.iter().enumerate().filter(|(_, r)| r.tenant == t) {
            let inv = solo.invoke(r.key, &r.body, &r.hints);
            let sched = match &inv.translated {
                None => "cpu".to_string(),
                Some(tl) => format!(
                    "ii={} ops={:?}",
                    tl.scheduled.schedule.ii,
                    tl.scheduled.schedule.entries()
                ),
            };
            solo_sig.push((seq, inv.translation_cycles, sched));
        }
        assert_eq!(
            solo.stats(),
            &report.tenants[t].stats,
            "tenant {t}: VmStats diverged from solo replay"
        );
        assert_eq!(
            solo_sig,
            tenant_signature(&report, t),
            "tenant {t}: schedules diverged from solo replay"
        );
    }
}

/// Thread count must be invisible: 1, 2 and 8 workers over the same
/// stream produce identical per-tenant results.
#[test]
fn thread_count_is_invisible_to_tenants() {
    let stream = {
        let cfg = ServeConfig::paper();
        generate(&spec(0x7EAD, 180, 4), &cfg.config, cfg.cca.as_ref())
    };
    let mut baseline: Option<(Vec<VmStats>, Vec<Signature>)> = None;
    for threads in [1usize, 2, 8] {
        let cfg = ServeConfig {
            threads,
            ..ServeConfig::paper()
        };
        let report = TranslationService::new(cfg).run(&stream);
        let stats: Vec<VmStats> = report.tenants.iter().map(|t| t.stats.clone()).collect();
        let sigs: Vec<_> = (0..report.tenants.len())
            .map(|t| tenant_signature(&report, t))
            .collect();
        match &baseline {
            None => baseline = Some((stats, sigs)),
            Some((s0, g0)) => {
                assert_eq!(s0, &stats, "{threads} threads changed tenant stats");
                assert_eq!(g0, &sigs, "{threads} threads changed tenant results");
            }
        }
    }
}

/// The contention stress the single-flight layer exists for: many threads
/// hammering a small shared pool must compute each distinct translation
/// exactly once — zero duplicate translations, and exactly one compute per
/// distinct (loop, hints) pair.
#[test]
fn contention_on_shared_loops_never_duplicates_work() {
    let cfg = ServeConfig {
        threads: 8,
        batch_size: 2, // small batches maximize cross-thread interleaving
        ..ServeConfig::paper()
    };
    let load = LoadSpec {
        shared_permille: 1000, // every request draws from the shared pool
        shared_loops: 4,
        ..spec(0xC047E57, 400, 8)
    };
    let stream = generate(&load, &cfg.config, cfg.cca.as_ref());
    let service = TranslationService::new(cfg);
    let report = service.run(&stream);

    let distinct: std::collections::BTreeSet<(u64, u64)> = stream
        .iter()
        .map(|r| (r.body.content_hash(), r.hints.fingerprint()))
        .collect();
    assert_eq!(report.stats.shed, 0);
    assert_eq!(
        report.stats.computes,
        distinct.len() as u64,
        "each distinct loop must be translated exactly once"
    );
    assert_eq!(service.memo().duplicate_translations(), 0);
    assert_eq!(report.stats.duplicate_translations, 0);
    // The memo absorbed the cross-tenant duplication: far more lookups
    // than computes.
    assert!(report.stats.memo.hits > report.stats.computes);
}

/// A sharded memo is observationally a single table: driving the same
/// invocation sequence through a `ShardedMemo` and a global
/// `TranslationMemo` yields bit-identical session stats and memo stats.
#[test]
fn sharded_memo_matches_the_global_table_bit_for_bit() {
    let cfg = ServeConfig::paper();
    let stream = generate(&spec(0x5AA2DED, 150, 1), &cfg.config, cfg.cca.as_ref());

    let global = Arc::new(TranslationMemo::new());
    let mut with_global = cfg
        .solo_session()
        .with_memo_backend(Arc::clone(&global) as Arc<dyn MemoBackend>);
    let sharded = Arc::new(ShardedMemo::new(8));
    let mut with_sharded = cfg
        .solo_session()
        .with_memo_backend(Arc::clone(&sharded) as Arc<dyn MemoBackend>);

    for r in &stream {
        with_global.invoke(r.key, &r.body, &r.hints);
        with_sharded.invoke(r.key, &r.body, &r.hints);
    }
    assert_eq!(with_global.stats(), with_sharded.stats());
    assert_eq!(
        MemoBackend::stats(&*global),
        MemoBackend::stats(&*sharded),
        "memo counters diverged between layouts"
    );
}

/// Shedding is part of the deterministic contract: which requests survive
/// a bounded queue is a pure function of the stream, never of the thread
/// count that later drains it.
#[test]
fn shedding_is_deterministic_across_thread_counts() {
    let stream = {
        let cfg = ServeConfig::paper();
        generate(&spec(0x5AED, 300, 3), &cfg.config, cfg.cca.as_ref())
    };
    let mut survivors: Option<Vec<Vec<usize>>> = None;
    for threads in [1usize, 4] {
        let cfg = ServeConfig {
            threads,
            queue_capacity: 8,
            ..ServeConfig::paper()
        };
        let report = TranslationService::new(cfg).run(&stream);
        assert_eq!(report.stats.shed, 300 - 3 * 8);
        let got: Vec<Vec<usize>> = report
            .tenants
            .iter()
            .map(|t| t.outcomes.iter().map(|o| o.seq).collect())
            .collect();
        match &survivors {
            None => survivors = Some(got),
            Some(expect) => assert_eq!(expect, &got, "{threads} threads changed shedding"),
        }
    }
}
