//! VM integration: hint compatibility across accelerator generations,
//! cache behaviour, and the Figure 7 transform dependency.

use veal::{
    compute_hints, run_application, AccelSetup, AcceleratorConfig, CcaSpec, CpuModel, StaticHints,
    TranslationPolicy, Translator,
};
use veal_vm::VmSession;
use veal_workloads::kernels;

#[test]
fn hinted_binary_runs_on_every_cca_generation() {
    // The core compatibility property of paper §4.2: hints computed for
    // one CCA must never break execution on different hardware.
    let la = AcceleratorConfig::paper_design();
    let bodies = [
        kernels::adpcm_step(),
        kernels::viterbi_acs(),
        kernels::quantize(),
        kernels::bit_unpack(),
    ];
    for body in &bodies {
        let hints = compute_hints(body, &la, Some(&CcaSpec::paper()));
        for (label, cca) in [
            ("paper", Some(CcaSpec::paper())),
            ("narrow", Some(CcaSpec::narrow())),
            ("none", None),
        ] {
            let mut cfg = la.clone();
            if cca.is_none() {
                cfg.cca_units = 0;
            }
            let t = Translator::new(cfg, cca, TranslationPolicy::static_hints());
            let out = t.translate(body, &hints);
            assert!(
                out.result.is_ok(),
                "{} with {label} CCA: {:?}",
                body.name,
                out.result.err()
            );
        }
    }
}

#[test]
fn stale_priority_hints_fall_back_to_dynamic() {
    // A priority order that no longer matches the graph (evolved CCA
    // decisions) must not break translation — the VM recomputes.
    let body = kernels::adpcm_step();
    let garbage = StaticHints {
        priority: Some(vec![veal::OpId::new(0)]), // wrong length
        cca_groups: None,
    };
    let t = Translator::new(
        AcceleratorConfig::paper_design(),
        Some(CcaSpec::paper()),
        TranslationPolicy::static_hints(),
    );
    let out = t.translate(&body, &garbage);
    assert!(out.result.is_ok());
    // The dynamic priority phase ran (it was charged).
    assert!(out.breakdown.get(veal::Phase::Priority) > 0);
}

#[test]
fn session_translates_once_per_resident_loop() {
    let t = Translator::new(
        AcceleratorConfig::paper_design(),
        Some(CcaSpec::paper()),
        TranslationPolicy::fully_dynamic(),
    );
    let mut session = VmSession::new(t);
    let body = kernels::quantize();
    let mut total = 0u64;
    for _ in 0..100 {
        total += session
            .invoke(42, &body, &StaticHints::none())
            .translation_cycles;
    }
    assert_eq!(session.stats().translations, 1);
    assert!(total > 0);
    assert!(session.cache_stats().hit_rate() > 0.98);
}

#[test]
fn transforms_gate_most_of_the_benefit() {
    // Figure 7 at integration level: across the media suite, disabling the
    // static transformations forfeits well over half of the benefit.
    let cpu = CpuModel::arm11();
    let with = AccelSetup {
        translation_free: true,
        ..AccelSetup::paper(TranslationPolicy::static_hints())
    };
    let without = AccelSetup {
        static_transforms: false,
        ..with.clone()
    };
    let mut kept = 0.0;
    let apps = veal::workloads::media_fp_suite();
    for app in &apps {
        let s_with = run_application(app, &cpu, &with).speedup();
        let s_without = run_application(app, &cpu, &without).speedup();
        if s_with > 1.0 {
            kept += ((s_without - 1.0) / (s_with - 1.0)).clamp(0.0, 1.0);
        }
    }
    let mean_kept = kept / apps.len() as f64;
    assert!(
        mean_kept < 0.5,
        "transforms should gate most benefit; kept {mean_kept:.2}"
    );
}

#[test]
fn mgrid_needs_fission_to_accelerate() {
    // mgrid's 27-point stencils exceed the 16-load-stream budget; without
    // static fission nothing accelerates.
    let cpu = CpuModel::arm11();
    let app = veal::workloads::application("172.mgrid").unwrap();
    let without = AccelSetup {
        static_transforms: false,
        translation_free: true,
        ..AccelSetup::paper(TranslationPolicy::static_hints())
    };
    let run = run_application(&app, &cpu, &without);
    let accelerated = run.loops.iter().filter(|l| l.accelerated).count();
    assert_eq!(
        accelerated, 0,
        "raw mgrid loops must be rejected without fission"
    );
}

#[test]
fn small_code_cache_forces_retranslation() {
    let cpu = CpuModel::arm11();
    let app = veal::workloads::application("mpeg2dec").unwrap();
    let big = AccelSetup::paper(TranslationPolicy::fully_dynamic());
    let tiny = AccelSetup {
        cache_entries: 2,
        ..big.clone()
    };
    let run_big = run_application(&app, &cpu, &big);
    let run_tiny = run_application(&app, &cpu, &tiny);
    // With sequential invocation bursts the tiny cache still mostly hits,
    // but it can never do better than the big one.
    assert!(run_tiny.translations >= run_big.translations);
    assert!(run_tiny.speedup() <= run_big.speedup() + 1e-9);
}

#[test]
fn hints_survive_latency_evolution() {
    // Paper footnote 3: statically encoded recurrence criticality is only
    // architecture independent while FU latencies stay consistent. When a
    // future accelerator changes a latency, the hinted binary must still
    // *work* (translate or fall back), even if the schedule is no longer
    // ideal.
    use veal::LatencyModel;
    let base = AcceleratorConfig::paper_design();
    let body = kernels::adpcm_step();
    let hints = compute_hints(&body, &base, Some(&CcaSpec::paper()));

    let mut slow_mul = LatencyModel::default();
    slow_mul.set(veal::Opcode::Mul, 5);
    let mut evolved = AcceleratorConfig::paper_design();
    evolved.latencies = slow_mul;

    let t = Translator::new(
        evolved,
        Some(CcaSpec::paper()),
        TranslationPolicy::static_hints(),
    );
    let out = t.translate(&body, &hints);
    let mapped = out
        .result
        .expect("hinted binary still maps on evolved latencies");
    // The recurrence through the 5-cycle multiplier now bounds II higher
    // than the default machine's 9.
    assert!(
        mapped.scheduled.schedule.ii >= 11,
        "II {}",
        mapped.scheduled.schedule.ii
    );
}

#[test]
fn dynamic_translation_adapts_to_latency_evolution() {
    use veal::LatencyModel;
    let body = kernels::fir(8);
    let mut fast_mul = LatencyModel::default();
    fast_mul.set(veal::Opcode::Mul, 1);
    let mut evolved = AcceleratorConfig::paper_design();
    evolved.latencies = fast_mul.clone();

    let t_default = Translator::new(
        AcceleratorConfig::paper_design(),
        Some(CcaSpec::paper()),
        TranslationPolicy::fully_dynamic(),
    );
    let t_evolved = Translator::new(
        evolved,
        Some(CcaSpec::paper()),
        TranslationPolicy::fully_dynamic(),
    );
    let a = t_default
        .translate(&body, &StaticHints::none())
        .result
        .unwrap();
    let b = t_evolved
        .translate(&body, &StaticHints::none())
        .result
        .unwrap();
    // A faster multiplier can only help the schedule.
    assert!(b.scheduled.schedule.ii <= a.scheduled.schedule.ii);
}
