//! The untrusted-snapshot property harness for warm-state persistence
//! (DESIGN.md §14, EXPERIMENTS.md "Snapshot restore").
//!
//! Four corruption prongs, each seeded and reproducible, all driven
//! through [`veal::check_restore`] — the differential oracle that restores
//! hostile bytes into a fresh memo + code cache and then audits every
//! admitted entry against the live translator (schedules re-verified,
//! fingerprints matched, derived sizes recomputed, cache budget intact):
//!
//! 1. **byte** — arbitrary transport faults on snapshot bytes; damage may
//!    cost entries (salvaged/rejected) or the stream tail (torn), never a
//!    panic and never an invalid admitted entry;
//! 2. **truncate** — crash-mid-write prefixes, including an every-prefix
//!    sweep; the intact head restores, the missing tail is reported torn;
//! 3. **forge** — payload corruption *resealed* with a fresh section
//!    checksum, so the damage passes transport integrity and must be
//!    caught by semantic re-validation (or be semantically harmless —
//!    authenticity is the documented non-promise);
//! 4. **splice** — version stamps bumped and sections transplanted from a
//!    *stale translator's* snapshot; the fingerprint gate must reject
//!    every foreign entry.
//!
//! Plus the positive direction: untampered snapshots restore bit-
//! identically (re-encoding the restored state reproduces the input
//! bytes, and a revived session replays the exact cycles a continuing
//! one charges), and a restored multi-tenant service serves the same
//! stream with zero computes and per-tenant stats bit-identical to the
//! cold run's.
//!
//! `VEAL_FUZZ_CASES` scales each prong's corpus (default 600; CI smoke
//! runs 200).

use std::sync::Arc;
use veal::vm::{MemoBackend, TranslationMemo};
use veal::{
    check_restore, exposed_translator, AcceleratorConfig, CcaSpec, LoadSpec, ServeConfig,
    SnapshotFuzzer, StaticHints, TranslationPolicy, TranslationService, Translator, VmSession,
};
use veal_ir::rng::Rng64;
use veal_workloads::{synth_loop, SynthSpec};

fn fuzz_cases() -> u64 {
    std::env::var("VEAL_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

fn arb_spec(rng: &mut Rng64) -> SynthSpec {
    SynthSpec {
        seed: rng.next_u64(),
        compute_ops: rng.gen_range(4, 40),
        fp_frac: [0.0, 0.4, 0.8][rng.gen_range(0, 3)],
        loads: rng.gen_range(1, 6),
        stores: rng.gen_range(1, 3),
        recurrences: rng.gen_range(0, 3),
        rec_distance: rng.gen_range(1, 5) as u32,
    }
}

/// A stale design point: same machine, different policy, so its
/// translator fingerprint differs from [`exposed_translator`]'s and its
/// snapshots must never splice into a live session.
fn stale_translator() -> Translator {
    Translator::new(
        AcceleratorConfig::paper_design(),
        Some(CcaSpec::paper()),
        TranslationPolicy::fully_dynamic(),
    )
}

/// A session warmed over 1–3 seeded synth loops, its snapshot, and the
/// bodies it was warmed on (for replay comparisons).
fn warm_session(case: u64, salt: u64, t: Translator) -> (VmSession, Vec<u8>, Vec<veal::LoopBody>) {
    let mut rng = Rng64::new(case.wrapping_mul(0x9E37_79B9) ^ salt);
    let memo = Arc::new(TranslationMemo::new());
    let mut session = VmSession::new(t).with_memo_backend(memo as Arc<dyn MemoBackend>);
    let bodies: Vec<_> = (0..rng.gen_range(1, 4))
        .map(|_| synth_loop(&arb_spec(&mut rng)))
        .collect();
    for (k, b) in bodies.iter().enumerate() {
        session.invoke(k as u64, b, &StaticHints::none());
    }
    let bytes = session.save_warm_state().expect("warm state encodes");
    (session, bytes, bodies)
}

/// A small pool of distinct warm snapshots: corpora cycle through it so
/// case counts stay high without re-translating per case.
fn snapshot_pool(salt: u64, n: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| warm_session(i, salt, exposed_translator()).1)
        .collect()
}

#[test]
fn transport_faulted_snapshots_never_admit_invalid_state() {
    let cases = fuzz_cases();
    let t = exposed_translator();
    let pool = snapshot_pool(0xB17E, 24);
    let mut fuzzer = SnapshotFuzzer::new(0x5AFE_0B17);
    let (mut damaged, mut unscathed) = (0u64, 0u64);
    for case in 0..cases {
        let bytes = &pool[(case % pool.len() as u64) as usize];
        let corrupted = fuzzer.corrupt_bytes(bytes);
        // The oracle restores AND audits; an Err here means corruption
        // smuggled an invalid entry past re-validation.
        let report =
            check_restore(&corrupted, &t, None).unwrap_or_else(|e| panic!("case {case}: {e}"));
        if report.is_cold() || report.torn || report.salvaged + report.rejected > 0 {
            damaged += 1;
        } else {
            unscathed += 1;
        }
    }
    assert!(damaged > 0, "corpus never damaged a snapshot");
    assert!(
        unscathed > 0,
        "corpus never left a snapshot fully restorable"
    );
}

#[test]
fn every_truncation_restores_the_intact_head() {
    let t = exposed_translator();
    // Exhaustive: every prefix of one snapshot, byte by byte.
    let (_, bytes, _) = warm_session(0, 0x7259, exposed_translator());
    let full = check_restore(&bytes, &t, None).expect("pristine snapshot");
    assert!(full.restored() > 0 && !full.torn);
    for len in 0..bytes.len() {
        let report =
            check_restore(&bytes[..len], &t, None).unwrap_or_else(|e| panic!("prefix {len}: {e}"));
        // A clean cut costs only the tail: nothing decodes wrongly enough
        // to be salvaged or rejected, and the head stays bounded.
        assert_eq!(report.salvaged, 0, "prefix {len}");
        assert_eq!(report.rejected, 0, "prefix {len}");
        assert!(report.restored() <= full.restored(), "prefix {len}");
        if len >= 6 {
            assert!(report.torn, "prefix {len} lost its end marker");
        } else {
            assert!(report.is_cold(), "prefix {len} is not a snapshot");
        }
    }
    // Seeded random prefixes across the pool, for corpus breadth.
    let cases = fuzz_cases();
    let pool = snapshot_pool(0x7259, 24);
    let mut fuzzer = SnapshotFuzzer::new(0x0C2A_58ED);
    for case in 0..cases {
        let bytes = &pool[(case % pool.len() as u64) as usize];
        let cut = fuzzer.truncate(bytes);
        let report = check_restore(&cut, &t, None).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(report.salvaged + report.rejected, 0, "case {case}");
        assert!(
            report.torn || report.is_cold() || cut.len() == bytes.len(),
            "case {case}: a strict prefix must read torn or cold"
        );
    }
}

#[test]
fn resealed_forgeries_are_caught_or_semantically_harmless() {
    let cases = fuzz_cases();
    let t = exposed_translator();
    let pool = snapshot_pool(0xF02E, 24);
    let mut fuzzer = SnapshotFuzzer::new(0x005E_A1ED);
    let (mut forged_total, mut rejected_entries) = (0u64, 0u64);
    for case in 0..cases {
        let bytes = &pool[(case % pool.len() as u64) as usize];
        let Some(forged) = fuzzer.reseal_forgery(bytes) else {
            continue;
        };
        forged_total += 1;
        // The forged checksum passes transport integrity, so the damage
        // reaches the semantic re-validators. check_restore's audit is
        // the assertion: whatever they admit must re-verify against the
        // live translator. (Authenticity is the documented non-promise —
        // a forgery may survive if it is still semantically valid.)
        let report =
            check_restore(&forged, &t, None).unwrap_or_else(|e| panic!("case {case}: {e}"));
        rejected_entries += report.rejected;
    }
    assert!(forged_total > 0, "corpus never forged a section");
    assert!(
        rejected_entries > 0,
        "semantic re-validation never had to reject a forgery ({forged_total} forged)"
    );
}

#[test]
fn spliced_stale_sections_never_leak_foreign_entries() {
    let cases = fuzz_cases();
    let t = exposed_translator();
    let pool = snapshot_pool(0x59_1CE, 12);
    let donors: Vec<Vec<u8>> = (0..12)
        .map(|i| warm_session(i, 0xDEAD, stale_translator()).1)
        .collect();
    let mut fuzzer = SnapshotFuzzer::new(0x0DD_5EED);
    let (mut version_bumps, mut fp_rejections) = (0u64, 0u64);
    for case in 0..cases {
        let bytes = &pool[(case % pool.len() as u64) as usize];
        let donor = &donors[(case % donors.len() as u64) as usize];
        let Some(spliced) = fuzzer.splice(bytes, donor) else {
            continue;
        };
        let report =
            check_restore(&spliced, &t, None).unwrap_or_else(|e| panic!("case {case}: {e}"));
        // A bumped version stamp reads as "not our snapshot": cold start.
        if report.is_cold() {
            version_bumps += 1;
        }
        // A transplanted stale section either breaks framing (salvaged /
        // torn) or decodes to an entry whose translator fingerprint the
        // gate must reject; check_restore has already audited that no
        // admitted entry carries a foreign fingerprint.
        fp_rejections += report.rejected;
    }
    assert!(version_bumps > 0, "corpus never bumped a version stamp");
    assert!(
        fp_rejections > 0,
        "the fingerprint gate never saw a stale entry"
    );
}

#[test]
fn untampered_snapshots_restore_bit_identically() {
    let cases = (fuzz_cases() / 8).max(25);
    for case in 0..cases {
        let (mut original, bytes, bodies) = warm_session(case, 0x1DE4, exposed_translator());
        let memo = Arc::new(TranslationMemo::new());
        let mut revived =
            VmSession::new(exposed_translator()).with_memo_backend(memo as Arc<dyn MemoBackend>);
        let report = revived.restore_warm_state(&bytes);
        assert!(report.restored() > 0, "case {case}");
        assert_eq!(report.salvaged, 0, "case {case}");
        assert_eq!(report.rejected, 0, "case {case}");
        assert!(!report.torn, "case {case}");
        // Re-encoding the restored state reproduces the input stream.
        assert_eq!(
            revived.save_warm_state().as_deref(),
            Ok(bytes.as_slice()),
            "case {case}"
        );
        // Second window: accelerated loops replay identically (restored
        // cache, zero cycles, same schedule). Rejected loops differ once
        // by design — the pin set is derived state, not snapshotted, so
        // the revived session re-pins them from the memo's replayed
        // rejection — but the disposition must match.
        for (k, b) in bodies.iter().enumerate() {
            let a = original.invoke(k as u64, b, &StaticHints::none());
            let r = revived.invoke(k as u64, b, &StaticHints::none());
            match (&a.translated, &r.translated) {
                (Some(ta), Some(tr)) => {
                    assert_eq!(
                        a.translation_cycles, r.translation_cycles,
                        "case {case} loop {k}"
                    );
                    assert_eq!(
                        ta.scheduled.schedule.ii, tr.scheduled.schedule.ii,
                        "case {case} loop {k}"
                    );
                }
                (None, None) => {}
                _ => panic!("case {case} loop {k}: dispositions diverged"),
            }
        }
        // Third window: the re-pin has happened; everything is now
        // bit-identical to the session that never crashed.
        for (k, b) in bodies.iter().enumerate() {
            let a = original.invoke(k as u64, b, &StaticHints::none());
            let r = revived.invoke(k as u64, b, &StaticHints::none());
            assert_eq!(
                a.translation_cycles, r.translation_cycles,
                "case {case} loop {k}"
            );
            assert_eq!(
                a.translated.is_some(),
                r.translated.is_some(),
                "case {case} loop {k}"
            );
        }
    }
}

#[test]
fn a_restored_service_replays_the_cold_run_bit_identically() {
    for seed in 0..4u64 {
        let cfg = ServeConfig::paper();
        let spec = LoadSpec {
            seed: 0xC0DE ^ seed,
            requests: 48,
            tenants: 3,
            ..LoadSpec::default()
        };
        let stream = veal::serve::generate(&spec, &cfg.config, cfg.cca.as_ref());
        let origin = TranslationService::new(cfg.clone());
        let cold = origin.run(&stream);
        let snapshot = origin.save_snapshot().expect("warm state encodes");
        drop(origin); // the crash

        let revived = TranslationService::new(cfg);
        let report = revived.restore_snapshot(&snapshot);
        assert!(report.restored() > 0, "seed {seed}");
        assert_eq!(report.salvaged + report.rejected, 0, "seed {seed}");
        let warm = revived.run(&stream);
        assert_eq!(warm.stats.computes, 0, "seed {seed}: restored memo missed");
        assert_eq!(warm.stats.duplicate_translations, 0, "seed {seed}");
        assert_eq!(warm.stats.completed, cold.stats.completed, "seed {seed}");
        for (c, w) in cold.tenants.iter().zip(&warm.tenants) {
            assert_eq!(c.stats, w.stats, "seed {seed} tenant {}", c.tenant);
            for (a, b) in c.outcomes.iter().zip(&w.outcomes) {
                assert_eq!(a.seq, b.seq, "seed {seed}");
                assert_eq!(a.translation_cycles, b.translation_cycles, "seed {seed}");
            }
        }
    }
}
