//! Integration test pinning the paper's Figure 5 walkthrough, across
//! crates: separation → CCA mapping → MII → schedule → registers, with the
//! schedule checked by the independent verifier.

use veal::ir::streams::separate;
use veal::sched::{rec_mii, res_mii, verify_schedule};
use veal::{AcceleratorConfig, CcaSpec, CostMeter, Opcode, StaticHints, System, TranslationPolicy};

#[test]
fn figure5_numbers_match_the_paper() {
    let (body, ids) = veal::figure5_loop();
    assert_eq!(body.len(), 15);

    // Separation: ops 13-15 are control, ops 1 and 11 are address
    // generators, leaving one load and one store stream.
    let mut meter = CostMeter::new();
    let sep = separate(&body.dfg, &mut meter).expect("separates");
    let summary = sep.summary();
    assert_eq!((summary.loads, summary.stores), (1, 1));
    assert!(sep.control_ops.contains(&ids.ind));
    assert!(sep.control_ops.contains(&ids.cmp));
    assert!(sep.control_ops.contains(&ids.br));
    assert_eq!(sep.addr_ops, vec![ids.addr_in, ids.addr_out]);

    // CCA mapping: exactly {5, 6, 8}.
    let mut dfg = sep.dfg;
    let groups = veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].members, vec![ids.and, ids.sub, ids.xor]);

    // MII: ResMII 3, RecMII 4.
    let la = AcceleratorConfig::paper_design();
    assert_eq!(res_mii(&dfg, &la, summary, &mut meter), 3);
    assert_eq!(rec_mii(&dfg, &la.latencies, &mut meter), 4);

    // Full translation: II 4, op 10 in a later stage, schedule valid.
    let sys = System::paper(TranslationPolicy::fully_dynamic());
    let out = sys.translate_loop(&body, &StaticHints::none());
    let t = out.result.expect("maps");
    assert_eq!(t.scheduled.schedule.ii, 4);
    assert!(t.scheduled.schedule.stage(ids.add10).unwrap() >= 1);
    assert!(verify_schedule(&dfg, &t.scheduled.schedule, &la).is_empty());
}

#[test]
fn figure9_static_encodings_round_trip_for_figure5() {
    // Figure 9(b)/(c): the hints survive the binary format and cut the
    // dynamic cost (the paper: 100k -> 31k on average; the exact factor
    // here depends on loop size).
    let (body, _) = veal::figure5_loop();
    let la = AcceleratorConfig::paper_design();
    let hints = veal::compute_hints(&body, &la, Some(&CcaSpec::paper()));
    assert!(hints.priority.is_some());
    assert_eq!(hints.cca_groups.as_ref().map(Vec::len), Some(1));

    let module = veal::BinaryModule {
        loops: vec![veal::EncodedLoop {
            body: body.clone(),
            priority_hint: hints.priority.clone(),
            cca_hint: hints.cca_groups.clone(),
            family_hint: None,
        }],
    };
    let decoded = veal::decode_module(&veal::encode_module(&module)).expect("decodes");
    let dec_hints = veal::StaticHints {
        priority: decoded.loops[0].priority_hint.clone(),
        cca_groups: decoded.loops[0].cca_hint.clone(),
    };
    assert_eq!(dec_hints, hints);

    let dynamic = System::paper(TranslationPolicy::fully_dynamic())
        .translate_loop(&decoded.loops[0].body, &StaticHints::none());
    let hinted = System::paper(TranslationPolicy::static_hints())
        .translate_loop(&decoded.loops[0].body, &dec_hints);
    assert!(hinted.result.is_ok());
    assert!(
        hinted.cost() * 3 < dynamic.cost(),
        "hints must slash translation cost: {} vs {}",
        hinted.cost(),
        dynamic.cost()
    );
    // Both paths land on the same II.
    assert_eq!(
        hinted.result.unwrap().scheduled.schedule.ii,
        dynamic.result.unwrap().scheduled.schedule.ii
    );
}

#[test]
fn figure5_op7_op10_merge_is_rejected() {
    // "Ops 7 and 10 could legally be combined; however, doing so would
    // lengthen one of the recurrence cycles."
    let (body, ids) = veal::figure5_loop();
    let mut meter = CostMeter::new();
    let sep = separate(&body.dfg, &mut meter).unwrap();
    let dfg = sep.dfg;
    let cond = dfg.condensation();
    // Structurally combinable: both are CCA-supported and adjacent.
    assert!(dfg.node(ids.or).opcode().unwrap().cca_supported());
    assert!(dfg.node(ids.add10).opcode().unwrap().cca_supported());
    assert!(dfg
        .succ_edges(ids.or)
        .any(|e| e.dst == ids.add10 && e.distance == 0));
    // But the recurrence rule forbids the group.
    assert!(!veal::cca::is_legal_group(
        &dfg,
        &CcaSpec::paper(),
        &[ids.or, ids.add10],
        &cond
    ));
}

#[test]
fn figure5_latency_assumptions() {
    // "Assume multiplies take 3 cycles, the CCA takes 2 cycles, and all
    // other ops take 1 cycle."
    assert_eq!(Opcode::Mul.default_latency(), 3);
    assert_eq!(Opcode::Cca.default_latency(), 2);
    for op in [
        Opcode::Add,
        Opcode::And,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Or,
        Opcode::Xor,
    ] {
        assert_eq!(op.default_latency(), 1, "{op}");
    }
}
