//! The fault-injection property harness for the hint trust boundary
//! (DESIGN.md §9, EXPERIMENTS.md "Fault injection").
//!
//! Three corruption prongs, each seeded and reproducible:
//!
//! 1. **byte** — arbitrary transport faults on encoded modules; every
//!    case must end in a typed `DecodeError` or a translation that the
//!    differential oracle accepts;
//! 2. **forge** — hint payloads corrupted *and resealed* (checksum forged)
//!    so they pass transport integrity; the semantic validator must catch
//!    or cleanly absorb every one, and survivors must execute bit-identical
//!    to the original golden checksum;
//! 3. **mutate** — structural mutations of decoded hints (permute,
//!    truncate, duplicate, cross-loop splice, out-of-range), checked by the
//!    oracle and driven through a budget-capped `VmSession`.
//!
//! `VEAL_FUZZ_CASES` scales each prong's corpus (default 600; CI smoke
//! runs 200; the acceptance sweep runs 3500+ for a ≥ 10k total).

use veal::{
    check_degradation, compute_hints, decode_module, encode_module, exposed_translator,
    BinaryModule, EncodedLoop, FaultVerdict, HintFuzzer, VmSession,
};
use veal_ir::rng::Rng64;
use veal_workloads::{semantic_checksum, synth_loop, SynthSpec};

fn fuzz_cases() -> u64 {
    std::env::var("VEAL_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

fn arb_spec(rng: &mut Rng64) -> SynthSpec {
    SynthSpec {
        seed: rng.next_u64(),
        compute_ops: rng.gen_range(4, 40),
        fp_frac: [0.0, 0.4, 0.8][rng.gen_range(0, 3)],
        loads: rng.gen_range(1, 6),
        stores: rng.gen_range(1, 3),
        recurrences: rng.gen_range(0, 3),
        rec_distance: rng.gen_range(1, 5) as u32,
    }
}

/// One synth loop with its statically computed (valid) hints, encoded.
fn hinted_case(case: u64, salt: u64) -> (veal_ir::LoopBody, veal_vm::StaticHints, Vec<u8>) {
    let mut rng = Rng64::new(case.wrapping_mul(0x9E37_79B9) ^ salt);
    let body = synth_loop(&arb_spec(&mut rng));
    let t = exposed_translator();
    let hints = compute_hints(&body, t.config(), t.cca());
    let bytes = encode_module(&BinaryModule {
        loops: vec![EncodedLoop {
            priority_hint: hints.priority.clone(),
            cca_hint: hints.cca_groups.clone(),
            family_hint: None,
            body: body.clone(),
        }],
    });
    (body, hints, bytes)
}

#[test]
fn byte_corruption_ends_in_typed_error_or_clean_degradation() {
    let cases = fuzz_cases();
    let t = exposed_translator();
    let mut fuzzer = HintFuzzer::new(0xBAD_B17E5);
    let (mut rejected, mut survived) = (0u64, 0u64);
    for case in 0..cases {
        let (_, _, bytes) = hinted_case(case, 0xB17E);
        let corrupted = fuzzer.corrupt_bytes(&bytes);
        match decode_module(&corrupted) {
            Err(e) => {
                // Typed error with a working Display — the decoder's whole
                // contract for garbage input.
                assert!(!e.to_string().is_empty(), "case {case}");
                rejected += 1;
            }
            Ok(m) => {
                // The corruption was harmless (padding, a hint the decoder
                // skips) or produced a *different but well-formed* module.
                // Either way: translation must satisfy the differential
                // oracle, and the decoded program must be interpretable
                // without panicking.
                for l in &m.loops {
                    check_degradation(&t, &l.body, &l.hints())
                        .unwrap_or_else(|e| panic!("case {case}: {e}"));
                    let _ = semantic_checksum(&l.body);
                    survived += 1;
                }
            }
        }
    }
    assert!(rejected > 0, "corpus never tripped the decoder");
    assert!(survived > 0, "corpus never produced a decodable module");
}

#[test]
fn forged_hint_sections_degrade_cleanly_and_preserve_semantics() {
    let cases = fuzz_cases();
    let t = exposed_translator();
    let mut fuzzer = HintFuzzer::new(0x5EA1);
    let (mut forged_total, mut reached_validator, mut degraded) = (0u64, 0u64, 0u64);
    for case in 0..cases {
        let (body, _, bytes) = hinted_case(case, 0xF0F0);
        let Some(forged) = fuzzer.corrupt_hint_payload(&bytes) else {
            continue; // loop produced no hint sections
        };
        forged_total += 1;
        let golden = semantic_checksum(&body);
        match decode_module(&forged) {
            // The forged checksum is valid by construction, but the
            // mutation can still break section framing (counts, ranges) —
            // a typed error is a clean ending.
            Err(e) => assert!(!e.to_string().is_empty(), "case {case}"),
            Ok(m) => {
                let l = &m.loops[0];
                // Only hint payloads were touched: the decoded *body* is
                // bit-identical, so any surviving translation runs the
                // same program — the golden checksum must match.
                assert_eq!(
                    l.body.content_hash(),
                    body.content_hash(),
                    "case {case}: forge leaked outside the hint section"
                );
                assert_eq!(semantic_checksum(&l.body), golden, "case {case}");
                reached_validator += 1;
                let v = check_degradation(&t, &l.body, &l.hints())
                    .unwrap_or_else(|e| panic!("case {case}: {e}"));
                if matches!(v, FaultVerdict::Accelerated { degradations } if degradations > 0) {
                    degraded += 1;
                }
            }
        }
    }
    assert!(forged_total > 0, "corpus never forged a hint section");
    assert!(
        reached_validator > 0,
        "no forged module passed transport integrity"
    );
    assert!(
        degraded > 0,
        "validator never had to reject a forged hint ({reached_validator} reached it)"
    );
}

#[test]
fn structural_hint_mutations_match_the_dynamic_fallback() {
    let cases = fuzz_cases();
    let t = exposed_translator();
    let mut fuzzer = HintFuzzer::new(0x0DDC0DE);
    let mut degraded = 0u64;
    for case in 0..cases {
        let (body, hints, _) = hinted_case(case, 0x517E);
        let (donor_body, ..) = hinted_case(case.wrapping_add(1), 0x517E);
        let donor = compute_hints(&donor_body, t.config(), t.cca());
        let mutated = fuzzer.mutate_hints(&hints, Some(&donor));
        let v =
            check_degradation(&t, &body, &mutated).unwrap_or_else(|e| panic!("case {case}: {e}"));
        if matches!(v, FaultVerdict::Accelerated { degradations } if degradations > 0) {
            degraded += 1;
        }
    }
    assert!(degraded > 0, "mutation corpus never degraded a hint");
}

/// Regression: quarantine streaks used to be keyed on the caller's `u64`
/// key alone, so a binary whose hints were *fixed* (new hints fingerprint)
/// stayed quarantined from its corrected hints forever. Drive mutated
/// hints to quarantine, then ship the corrected hints and require the
/// session to lift the quarantine and consult them again.
#[test]
fn corrected_binaries_escape_quarantine() {
    use veal_vm::session::QUARANTINE_THRESHOLD;
    let cases = (fuzz_cases() / 4).max(50);
    let mut fuzzer = HintFuzzer::new(0x0F1CE);
    let mut lifted = 0u64;
    for case in 0..cases {
        let (body, hints, _) = hinted_case(case, 0x11F7);
        let mutated = fuzzer.mutate_hints(&hints, None);
        if mutated.fingerprint() == hints.fingerprint() {
            continue; // mutation was a no-op; nothing to fix later
        }
        // Capacity-1 cache with an alternating second loop: every
        // invocation of key 1 misses the cache and revalidates the hints,
        // so a consistently failing mutation reaches the threshold.
        let mut session = VmSession::with_cache(exposed_translator(), veal_vm::CodeCache::new(1));
        let (other_body, ..) = hinted_case(case.wrapping_add(7), 0x11F7);
        for _ in 0..QUARANTINE_THRESHOLD {
            session.invoke(1, &body, &mutated);
            session.invoke(2, &other_body, &veal_vm::StaticHints::none());
        }
        if !session.is_quarantined(1) {
            continue; // the mutation happened to validate (or never degraded)
        }
        let validations = session.stats().hint_validations;
        // The fixed binary: statically correct hints, new fingerprint.
        session.invoke(1, &body, &hints);
        assert!(
            !session.is_quarantined(1),
            "case {case}: corrected hints stayed quarantined"
        );
        assert_eq!(session.stats().quarantine_lifts, 1, "case {case}");
        assert!(
            session.stats().hint_validations > validations,
            "case {case}: corrected hints were not consulted"
        );
        lifted += 1;
    }
    assert!(lifted > 0, "corpus never quarantined a mutated hint");
}

#[test]
fn budgeted_session_absorbs_mutations_with_coherent_stats() {
    let cases = fuzz_cases();
    let mut fuzzer = HintFuzzer::new(0xCAB);
    // A budget low enough that some translations trip the watchdog but
    // most complete (synth loops cost roughly hundreds to tens of
    // thousands of units).
    let mut session = VmSession::new(exposed_translator()).with_translation_budget(6_000);
    let (mut accelerated, mut cpu) = (0u64, 0u64);
    for case in 0..cases {
        let (body, hints, _) = hinted_case(case, 0xCAB5);
        let mutated = fuzzer.mutate_hints(&hints, None);
        let inv = session.invoke(case, &body, &mutated);
        if inv.translated.is_some() {
            accelerated += 1;
        } else {
            cpu += 1;
        }
    }
    let st = session.stats();
    assert_eq!(accelerated + cpu, cases);
    assert_eq!(
        st.breakdown.total(),
        st.translation_units,
        "watchdog-truncated charges must stay coherent"
    );
    assert!(
        st.watchdog_aborts > 0,
        "budget never tripped — corpus too cheap for the cap"
    );
    assert!(st.hint_validations > 0);
    assert!(
        st.watchdog_aborts <= st.failures,
        "aborts are a subset of failures"
    );
}
