//! The full static-compiler story at CFG level: a function whose inner
//! loop contains a call and a branchy diamond is inlined, if-converted,
//! extracted to dataflow form, and mapped onto the accelerator.

use veal::ir::cfg::Program;
use veal::opt::cfgpass::{extract_loop_dfg, if_convert, inline_calls, merge_straightline};
use veal::{classify_loop, LoopClass, Opcode, StaticHints, System, TranslationPolicy};
use veal_ir::{FunctionBuilder, Instruction, VReg};

/// Builds:
///
/// ```c
/// int f(int x) { return x * 3; }        // callee, single block
/// for (i = 0; i < n; i++) {
///     t = f(a);                          // call to inline
///     if (t < 0) y = -t; else y = t;    // diamond to if-convert
///     acc += y;
/// }
/// ```
fn build_program() -> (Program, usize) {
    // Callee: v0 is the parameter.
    let mut cb = FunctionBuilder::new("times3");
    let b0 = cb.block();
    cb.set_entry(b0);
    let p = cb.fresh_reg();
    let r = cb.fresh_reg();
    cb.push(b0, Opcode::Mul, Some(r), vec![p.into(), 3i64.into()]);
    cb.ret(b0, Some(r));
    let callee = cb.finish();

    let mut fb = FunctionBuilder::new("hot");
    let entry = fb.block();
    let header = fb.block();
    let then_b = fb.block();
    let else_b = fb.block();
    let join = fb.block();
    let exit = fb.block();
    fb.set_entry(entry);
    let i = fb.fresh_reg();
    let n = fb.fresh_reg();
    let a = fb.fresh_reg();
    let t = fb.fresh_reg();
    let y = fb.fresh_reg();
    let acc = fb.fresh_reg();
    let cneg = fb.fresh_reg();
    let cback = fb.fresh_reg();
    fb.branch(entry, header);
    // header: t = f(a); if (t < 0) ...
    fb.push_instr(
        header,
        Instruction::call(t, veal_ir::FuncId::new(1), vec![a.into()]),
    );
    fb.push(
        header,
        Opcode::CmpLt,
        Some(cneg),
        vec![t.into(), 0i64.into()],
    );
    fb.cond_branch(header, cneg, then_b, else_b);
    fb.push(then_b, Opcode::Neg, Some(y), vec![t.into()]);
    fb.branch(then_b, join);
    fb.push(else_b, Opcode::Mov, Some(y), vec![t.into()]);
    fb.branch(else_b, join);
    // join: acc += y; i++; loop back
    fb.push(join, Opcode::Add, Some(acc), vec![acc.into(), y.into()]);
    fb.push(join, Opcode::Add, Some(i), vec![i.into(), 1i64.into()]);
    fb.push(join, Opcode::CmpLt, Some(cback), vec![i.into(), n.into()]);
    fb.cond_branch(join, cback, header, exit);
    fb.ret(exit, Some(acc));
    let hot = fb.finish();
    let acc_idx = acc.index();
    (
        Program {
            functions: vec![hot, callee],
        },
        acc_idx,
    )
}

#[test]
fn cfg_pipeline_produces_an_accelerated_loop() {
    let (program, acc_idx) = build_program();
    let hot = &program.functions[0];
    // Raw: one natural loop spanning several blocks (not extractable).
    let loops = hot.natural_loops();
    assert_eq!(loops.len(), 1);
    assert!(loops[0].blocks.len() > 1);

    // 1. Inline the visible callee.
    let (inlined, n_inlined) = inline_calls(&program, hot);
    assert_eq!(n_inlined, 1);
    assert!(inlined
        .blocks()
        .iter()
        .all(|b| b.instrs.iter().all(|i| i.opcode != Opcode::Call)));

    // 2. If-convert the diamond, then merge the straight-line remains.
    let (converted, n_diamonds) = if_convert(&inlined);
    assert_eq!(n_diamonds, 1);
    let (converted, merges) = merge_straightline(&converted);
    assert!(merges >= 1);
    let loops = converted.natural_loops();
    assert_eq!(loops.len(), 1);
    assert_eq!(loops[0].blocks.len(), 1, "loop is single-block now");

    // 3. Extract the dataflow form.
    let body = extract_loop_dfg(&converted, &loops[0], &[VReg::new(acc_idx)])
        .expect("single-block loop extracts");
    assert_eq!(classify_loop(&body.dfg), LoopClass::ModuloSchedulable);
    assert!(body.dfg.live_out_ids().count() >= 1);

    // 4. Translate onto the paper accelerator.
    let sys = System::paper(TranslationPolicy::fully_dynamic());
    let out = sys.translate_loop(&body, &StaticHints::none());
    let t = out.result.expect("extracted loop maps");
    assert!(t.scheduled.schedule.ii >= 1);
    assert!(t.scheduled.registers.pressure.fits());
}

#[test]
fn without_inlining_the_loop_is_a_subroutine() {
    let (program, _) = build_program();
    let hot = &program.functions[0];
    let (converted, _) = if_convert(hot);
    let (converted, _) = merge_straightline(&converted);
    // The call is still there; even after predication the loop cannot be
    // accelerated — Figure 2's "Subroutine" category.
    let loops = converted.natural_loops();
    if loops[0].blocks.len() == 1 {
        let body = extract_loop_dfg(&converted, &loops[0], &[]).unwrap();
        assert_eq!(classify_loop(&body.dfg), LoopClass::Subroutine);
    }
}

#[test]
fn extraction_is_deterministic() {
    let (program, acc_idx) = build_program();
    let hot = &program.functions[0];
    let (inlined, _) = inline_calls(&program, hot);
    let (converted, _) = if_convert(&inlined);
    let (converted, _) = merge_straightline(&converted);
    let lp = &converted.natural_loops()[0];
    let a = extract_loop_dfg(&converted, lp, &[VReg::new(acc_idx)]).unwrap();
    let b = extract_loop_dfg(&converted, lp, &[VReg::new(acc_idx)]).unwrap();
    assert_eq!(a.dfg, b.dfg);
}
