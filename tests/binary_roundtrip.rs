//! Property tests for the binary module format: arbitrary well-formed
//! loops (hand kernels and random synthetics) must round-trip exactly,
//! with and without hint sections, and truncated or corrupted bytes must
//! never panic the decoder.

use veal::{
    compute_hints, decode_module, encode_module, AcceleratorConfig, BinaryModule, CcaSpec,
    EncodedLoop, OpId,
};
use veal_ir::rng::Rng64;
use veal_workloads::{synth_loop, SynthSpec};

fn arb_spec(rng: &mut Rng64) -> SynthSpec {
    SynthSpec {
        seed: rng.next_u64(),
        compute_ops: rng.gen_range(4, 40),
        fp_frac: [0.0, 0.4, 0.8][rng.gen_range(0, 3)],
        loads: rng.gen_range(1, 6),
        stores: rng.gen_range(1, 3),
        recurrences: rng.gen_range(0, 3),
        rec_distance: rng.gen_range(1, 5) as u32,
    }
}

const CASES: u64 = 64;

fn for_each_spec(mut check: impl FnMut(u64, &mut Rng64, SynthSpec)) {
    for case in 0..CASES {
        let mut rng = Rng64::new(case.wrapping_mul(0xD1B5_4A32) ^ 0xB17);
        let spec = arb_spec(&mut rng);
        check(case, &mut rng, spec);
    }
}

#[test]
fn random_loops_round_trip() {
    for_each_spec(|case, _rng, spec| {
        let body = synth_loop(&spec);
        let module = BinaryModule {
            loops: vec![EncodedLoop {
                body: body.clone(),
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            }],
        };
        let back = decode_module(&encode_module(&module)).expect("round trip");
        assert_eq!(
            back.loops[0].body.dfg.edges(),
            body.dfg.edges(),
            "case {case}"
        );
        assert_eq!(back.loops[0].body.dfg.len(), body.dfg.len(), "case {case}");
        for i in 0..body.dfg.len() {
            let id = OpId::new(i);
            assert_eq!(
                &back.loops[0].body.dfg.node(id).kind,
                &body.dfg.node(id).kind,
                "case {case}"
            );
            assert_eq!(
                back.loops[0].body.dfg.node(id).stream,
                body.dfg.node(id).stream,
                "case {case}"
            );
            assert_eq!(
                back.loops[0].body.dfg.node(id).live_out,
                body.dfg.node(id).live_out,
                "case {case}"
            );
        }
    });
}

#[test]
fn hinted_loops_round_trip() {
    for_each_spec(|case, _rng, spec| {
        let body = synth_loop(&spec);
        let la = AcceleratorConfig::paper_design();
        let hints = compute_hints(&body, &la, Some(&CcaSpec::paper()));
        let module = BinaryModule {
            loops: vec![EncodedLoop {
                body,
                priority_hint: hints.priority.clone(),
                cca_hint: hints.cca_groups.clone(),
                family_hint: Some(case),
            }],
        };
        let back = decode_module(&encode_module(&module)).expect("round trip");
        assert_eq!(&back.loops[0].priority_hint, &hints.priority, "case {case}");
        assert_eq!(&back.loops[0].cca_hint, &hints.cca_groups, "case {case}");
        assert_eq!(back.loops[0].family_hint, Some(case), "case {case}");
    });
}

#[test]
fn truncation_never_panics() {
    for_each_spec(|_case, rng, spec| {
        let body = synth_loop(&spec);
        let module = BinaryModule {
            loops: vec![EncodedLoop {
                body,
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            }],
        };
        let bytes = encode_module(&module);
        let cut_frac = rng.next_f64();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Must return an error or a module, never panic.
        let _ = decode_module(&bytes[..cut.min(bytes.len().saturating_sub(1))]);
    });
}

#[test]
fn byte_corruption_never_panics() {
    for_each_spec(|_case, rng, spec| {
        let body = synth_loop(&spec);
        let module = BinaryModule {
            loops: vec![EncodedLoop {
                body,
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            }],
        };
        let mut bytes = encode_module(&module);
        if !bytes.is_empty() {
            let pos = rng.gen_range(0, bytes.len());
            bytes[pos] = (rng.next_u64() & 0xFF) as u8;
            let _ = decode_module(&bytes);
        }
    });
}

#[test]
fn every_prefix_of_every_module_yields_a_clean_decode_error() {
    // The exhaustive truncation sweep: for EVERY cut point k, decoding
    // bytes[..k] must return a typed DecodeError — never panic, never
    // succeed on a strict prefix (a well-formed module consumes all its
    // bytes, so any prefix is missing at least the final section
    // terminator).
    for_each_spec(|case, _rng, spec| {
        let body = synth_loop(&spec);
        let la = AcceleratorConfig::paper_design();
        let hints = compute_hints(&body, &la, Some(&CcaSpec::paper()));
        let module = BinaryModule {
            loops: vec![EncodedLoop {
                body,
                priority_hint: hints.priority,
                cca_hint: hints.cca_groups,
                family_hint: None,
            }],
        };
        let bytes = encode_module(&module);
        for k in 0..bytes.len() {
            let err = decode_module(&bytes[..k])
                .expect_err("case {case}: prefix of length {k} must not decode");
            // Exercise Display on the typed error as well.
            assert!(!err.to_string().is_empty(), "case {case} cut {k}");
        }
    });
}

#[test]
fn multi_loop_modules_preserve_order() {
    for case in 0u64..16 {
        let mut rng = Rng64::new(case.wrapping_mul(0xC0FF_EE11) ^ 0x51DE);
        let n = rng.gen_range(1, 6);
        let module = BinaryModule {
            loops: (0..n)
                .map(|_| EncodedLoop {
                    body: synth_loop(&SynthSpec {
                        seed: rng.next_u64(),
                        ..SynthSpec::default()
                    }),
                    priority_hint: None,
                    cca_hint: None,
                    family_hint: None,
                })
                .collect(),
        };
        let back = decode_module(&encode_module(&module)).expect("round trip");
        assert_eq!(back.loops.len(), module.loops.len(), "case {case}");
        for (a, b) in back.loops.iter().zip(&module.loops) {
            assert_eq!(&a.body.name, &b.body.name, "case {case}");
            assert_eq!(a.body.dfg.edges(), b.body.dfg.edges(), "case {case}");
        }
    }
}
