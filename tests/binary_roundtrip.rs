//! Property tests for the binary module format: arbitrary well-formed
//! loops (hand kernels and random synthetics) must round-trip exactly,
//! with and without hint sections, and truncated or corrupted bytes must
//! never panic the decoder.

use proptest::prelude::*;
use veal::{
    compute_hints, decode_module, encode_module, AcceleratorConfig, BinaryModule, CcaSpec,
    EncodedLoop, OpId,
};
use veal_workloads::{synth_loop, SynthSpec};

fn arb_spec() -> impl Strategy<Value = SynthSpec> {
    (
        any::<u64>(),
        4usize..40,
        prop_oneof![Just(0.0), Just(0.4), Just(0.8)],
        1usize..6,
        1usize..3,
        0usize..3,
        1u32..5,
    )
        .prop_map(
            |(seed, compute_ops, fp_frac, loads, stores, recurrences, rec_distance)| SynthSpec {
                seed,
                compute_ops,
                fp_frac,
                loads,
                stores,
                recurrences,
                rec_distance,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_loops_round_trip(spec in arb_spec()) {
        let body = synth_loop(&spec);
        let module = BinaryModule {
            loops: vec![EncodedLoop { body: body.clone(), priority_hint: None, cca_hint: None }],
        };
        let back = decode_module(&encode_module(&module)).expect("round trip");
        prop_assert_eq!(back.loops[0].body.dfg.edges(), body.dfg.edges());
        prop_assert_eq!(back.loops[0].body.dfg.len(), body.dfg.len());
        for i in 0..body.dfg.len() {
            let id = OpId::new(i);
            prop_assert_eq!(&back.loops[0].body.dfg.node(id).kind, &body.dfg.node(id).kind);
            prop_assert_eq!(back.loops[0].body.dfg.node(id).stream, body.dfg.node(id).stream);
            prop_assert_eq!(back.loops[0].body.dfg.node(id).live_out, body.dfg.node(id).live_out);
        }
    }

    #[test]
    fn hinted_loops_round_trip(spec in arb_spec()) {
        let body = synth_loop(&spec);
        let la = AcceleratorConfig::paper_design();
        let hints = compute_hints(&body, &la, Some(&CcaSpec::paper()));
        let module = BinaryModule {
            loops: vec![EncodedLoop {
                body,
                priority_hint: hints.priority.clone(),
                cca_hint: hints.cca_groups.clone(),
            }],
        };
        let back = decode_module(&encode_module(&module)).expect("round trip");
        prop_assert_eq!(&back.loops[0].priority_hint, &hints.priority);
        prop_assert_eq!(&back.loops[0].cca_hint, &hints.cca_groups);
    }

    #[test]
    fn truncation_never_panics(spec in arb_spec(), cut_frac in 0.0f64..1.0) {
        let body = synth_loop(&spec);
        let module = BinaryModule {
            loops: vec![EncodedLoop { body, priority_hint: None, cca_hint: None }],
        };
        let bytes = encode_module(&module);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Must return an error or a module, never panic.
        let _ = decode_module(&bytes[..cut.min(bytes.len().saturating_sub(1))]);
    }

    #[test]
    fn byte_corruption_never_panics(spec in arb_spec(), pos_frac in 0.0f64..1.0, val in any::<u8>()) {
        let body = synth_loop(&spec);
        let module = BinaryModule {
            loops: vec![EncodedLoop { body, priority_hint: None, cca_hint: None }],
        };
        let mut bytes = encode_module(&module);
        if !bytes.is_empty() {
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] = val;
            let _ = decode_module(&bytes);
        }
    }

    #[test]
    fn multi_loop_modules_preserve_order(seeds in proptest::collection::vec(any::<u64>(), 1..6)) {
        let module = BinaryModule {
            loops: seeds
                .iter()
                .map(|&seed| EncodedLoop {
                    body: synth_loop(&SynthSpec { seed, ..SynthSpec::default() }),
                    priority_hint: None,
                    cca_hint: None,
                })
                .collect(),
        };
        let back = decode_module(&encode_module(&module)).expect("round trip");
        prop_assert_eq!(back.loops.len(), module.loops.len());
        for (a, b) in back.loops.iter().zip(&module.loops) {
            prop_assert_eq!(&a.body.name, &b.body.name);
            prop_assert_eq!(a.body.dfg.edges(), b.body.dfg.edges());
        }
    }
}
