//! Differential harness for the data-oriented sweep: the old arm (reference
//! kernels, hash-based containers, toggles off) and the new arm (CSR/bitset
//! kernels, toggles on) must produce **bit-identical** translations — same
//! schedules, same CCA decisions, same graphs, same per-phase meter charges
//! — over the whole workload suite.
//!
//! This is the repo-level gate behind the hot-path rewrite: the per-crate
//! corpora (`crates/ir/tests/soa_equivalence.rs`, the sched/cca proptests)
//! pin individual kernels; this test pins the *composition*, including the
//! dispatch points inside `translate` (`sched::reference` routing,
//! `map_cca`'s commit loop, `verify_and_apply_cca`'s probe move, `rec_mii`'s
//! packed-SCC fast path, and `Dfg::collapse`'s sorted-merge fast path).

use veal::ir::streams::separate;
use veal::ir::{set_data_oriented, CostMeter};
use veal::sched::{rec_mii, set_parametric_enabled};
use veal::vm::verify::verify_and_apply_cca;
use veal::vm::{StaticHints, TranslationPolicy, Translator};
use veal::{AcceleratorConfig, CcaSpec, OpId};

/// Runs `f` with both toggles forced to one arm, restoring defaults after.
fn with_arm<T>(new_arm: bool, f: impl FnOnce() -> T) -> T {
    set_parametric_enabled(new_arm);
    set_data_oriented(new_arm);
    let out = f();
    set_parametric_enabled(true);
    set_data_oriented(true);
    out
}

#[test]
fn translate_is_bit_identical_across_arms_on_full_suite() {
    let translator = Translator::new(
        AcceleratorConfig::paper_design(),
        Some(CcaSpec::paper()),
        TranslationPolicy::fully_dynamic(),
    );
    let hints = StaticHints::none();
    let mut loops = 0usize;
    for app in veal::workloads::full_suite() {
        for (i, l) in app.loops.iter().enumerate() {
            loops += 1;
            let body = &l.raw.body;
            let old = with_arm(false, || translator.translate(body, &hints));
            let new = with_arm(true, || translator.translate(body, &hints));
            let name = format!("{}#{i}", app.name);
            assert_eq!(old.breakdown, new.breakdown, "{name}: charges diverged");
            match (&old.result, &new.result) {
                (Ok(o), Ok(n)) => {
                    assert_eq!(
                        o.dfg.content_hash(),
                        n.dfg.content_hash(),
                        "{name}: final graph diverged"
                    );
                    assert_eq!(o.scheduled.schedule.ii, n.scheduled.schedule.ii, "{name}");
                    assert_eq!(
                        o.scheduled.schedule.entries(),
                        n.scheduled.schedule.entries(),
                        "{name}: schedule diverged"
                    );
                    assert_eq!(
                        format!("{}", o.scheduled.schedule),
                        format!("{}", n.scheduled.schedule),
                        "{name}: rendered schedule diverged"
                    );
                    assert_eq!(o.control_words, n.control_words, "{name}");
                    assert_eq!(o.cca_groups, n.cca_groups, "{name}");
                    assert_eq!(o.accel_ops, n.accel_ops, "{name}");
                }
                (Err(eo), Err(en)) => {
                    assert_eq!(format!("{eo}"), format!("{en}"), "{name}: errors diverged");
                }
                (o, n) => panic!(
                    "{name}: outcome diverged (old ok={}, new ok={})",
                    o.is_ok(),
                    n.is_ok()
                ),
            }
        }
    }
    assert!(loops >= 27, "suite shrank: only {loops} loops");
}

#[test]
fn cca_commit_and_hint_decode_match_across_arms() {
    // `map_cca` (identify + commit, exercising the collapse fast path) and
    // `verify_and_apply_cca` (the hint-decode path that now moves the
    // vetted probe into place instead of replaying collapses) must agree
    // with the reference arm on graph content, group list, and charges.
    let spec = CcaSpec::paper();
    for app in veal::workloads::full_suite() {
        for (i, l) in app.loops.iter().enumerate() {
            let mut meter = CostMeter::new();
            let Ok(sep) = separate(&l.raw.body.dfg, &mut meter) else {
                continue;
            };
            let name = format!("{}#{i}", app.name);

            let run_map = |arm: bool| {
                with_arm(arm, || {
                    let mut meter = CostMeter::new();
                    let mut d = sep.dfg.clone();
                    let groups = veal::cca::map_cca(&mut d, &spec, &mut meter);
                    (groups, d.content_hash(), *meter.breakdown())
                })
            };
            let (g_old, h_old, m_old) = run_map(false);
            let (g_new, h_new, m_new) = run_map(true);
            assert_eq!(g_old, g_new, "{name}: groups diverged");
            assert_eq!(h_old, h_new, "{name}: mapped graph diverged");
            assert_eq!(m_old, m_new, "{name}: mapping charges diverged");

            let groups: Vec<Vec<OpId>> = g_new.into_iter().map(|g| g.members).collect();
            let run_decode = |arm: bool| {
                with_arm(arm, || {
                    let mut meter = CostMeter::new();
                    let mut d = sep.dfg.clone();
                    let n = verify_and_apply_cca(&mut d, &spec, &groups, &mut meter);
                    (n, d.content_hash(), *meter.breakdown())
                })
            };
            let (n_old, h_old, m_old) = run_decode(false);
            let (n_new, h_new, m_new) = run_decode(true);
            assert_eq!(n_old, n_new, "{name}: applied-group count diverged");
            assert_eq!(h_old, h_new, "{name}: decoded graph diverged");
            assert_eq!(m_old, m_new, "{name}: decode charges diverged");
            assert_eq!(
                h_old,
                with_arm(true, || {
                    let mut d = sep.dfg.clone();
                    for g in &groups {
                        d.collapse(g);
                    }
                    d.content_hash()
                }),
                "{name}: probe move differs from direct collapse replay"
            );
        }
    }
}

#[test]
fn rec_mii_dispatch_matches_across_arms() {
    let config = AcceleratorConfig::paper_design();
    for app in veal::workloads::full_suite() {
        for (i, l) in app.loops.iter().enumerate() {
            let mut meter = CostMeter::new();
            let Ok(sep) = separate(&l.raw.body.dfg, &mut meter) else {
                continue;
            };
            let mut dfg = sep.dfg;
            veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
            let name = format!("{}#{i}", app.name);
            let run = |arm: bool| {
                with_arm(arm, || {
                    let mut meter = CostMeter::new();
                    let mii = rec_mii(&dfg, &config.latencies, &mut meter);
                    (mii, *meter.breakdown())
                })
            };
            let (mii_old, m_old) = run(false);
            let (mii_new, m_new) = run(true);
            assert_eq!(mii_old, mii_new, "{name}: RecMII diverged");
            assert_eq!(m_old, m_new, "{name}: RecMII charges diverged");
        }
    }
}
