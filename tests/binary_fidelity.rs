//! Whole-application binary fidelity: packaging every legalized loop of an
//! application into the VEAL binary format (with hint sections), decoding
//! it back, and translating the *decoded* loops must reproduce exactly the
//! schedules obtained from the in-memory path.

use veal::{
    compute_hints, decode_module, encode_module, AcceleratorConfig, BinaryModule, CcaSpec,
    EncodedLoop, StaticHints, TransformLimits, TranslationPolicy, Translator,
};

fn translator(policy: TranslationPolicy) -> Translator {
    Translator::new(
        AcceleratorConfig::paper_design(),
        Some(CcaSpec::paper()),
        policy,
    )
}

#[test]
fn decoded_binaries_translate_identically() {
    let app = veal::workloads::application("cjpeg").unwrap();
    let limits = TransformLimits::default();
    let la = AcceleratorConfig::paper_design();

    // Static compiler: legalize, compute hints, pack the binary.
    let mut module = BinaryModule::default();
    for l in &app.loops {
        for part in veal::legalize(&l.raw, &limits) {
            let hints = compute_hints(&part.body, &la, Some(&CcaSpec::paper()));
            module.loops.push(EncodedLoop {
                body: part.body,
                priority_hint: hints.priority,
                cca_hint: hints.cca_groups,
                family_hint: None,
            });
        }
    }
    let bytes = encode_module(&module);
    let decoded = decode_module(&bytes).expect("module decodes");
    assert_eq!(decoded.loops.len(), module.loops.len());

    // VM side: translate from the decoded bytes and from memory; results
    // must match loop by loop.
    let t = translator(TranslationPolicy::static_hints());
    for (orig, dec) in module.loops.iter().zip(&decoded.loops) {
        let orig_hints = StaticHints {
            priority: orig.priority_hint.clone(),
            cca_groups: orig.cca_hint.clone(),
        };
        let dec_hints = StaticHints {
            priority: dec.priority_hint.clone(),
            cca_groups: dec.cca_hint.clone(),
        };
        let a = t.translate(&orig.body, &orig_hints);
        let b = t.translate(&dec.body, &dec_hints);
        match (&a.result, &b.result) {
            (Ok(x), Ok(y)) => {
                assert_eq!(
                    x.scheduled.schedule.ii, y.scheduled.schedule.ii,
                    "{}: II diverged through the binary",
                    orig.body.name
                );
                assert_eq!(x.cca_groups, y.cca_groups, "{}", orig.body.name);
                assert_eq!(
                    x.scheduled.registers.pressure, y.scheduled.registers.pressure,
                    "{}",
                    orig.body.name
                );
            }
            (Err(x), Err(y)) => assert_eq!(
                format!("{x}"),
                format!("{y}"),
                "{}: rejection reason diverged",
                orig.body.name
            ),
            (a, b) => panic!(
                "{}: outcome diverged through the binary: {:?} vs {:?}",
                orig.body.name,
                a.is_ok(),
                b.is_ok()
            ),
        }
        assert_eq!(a.cost(), b.cost(), "{}: cost diverged", orig.body.name);
    }
}

#[test]
fn hint_stripped_binary_still_runs_everywhere() {
    // Strip the hint sections from the same module: every loop must still
    // translate (dynamically) or be rejected for the same capability
    // reasons — never crash, never change its *accelerability*.
    let app = veal::workloads::application("gsmdecode").unwrap();
    let limits = TransformLimits::default();
    let mut module = BinaryModule::default();
    for l in &app.loops {
        for part in veal::legalize(&l.raw, &limits) {
            module.loops.push(EncodedLoop {
                body: part.body,
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            });
        }
    }
    let decoded = decode_module(&encode_module(&module)).expect("decodes");
    let dynamic = translator(TranslationPolicy::fully_dynamic());
    let mut accelerated = 0;
    for l in &decoded.loops {
        if dynamic
            .translate(&l.body, &StaticHints::none())
            .result
            .is_ok()
        {
            accelerated += 1;
        }
    }
    assert!(
        accelerated * 2 > decoded.loops.len(),
        "most legalized loops must map: {accelerated}/{}",
        decoded.loops.len()
    );
}
