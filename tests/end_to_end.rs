//! End-to-end integration: whole applications through every policy.

use veal::{run_application, AccelSetup, CpuModel, System, TranslationPolicy};

#[test]
fn every_media_app_accelerates_natively() {
    let sys = System::native();
    for app in veal::workloads::media_fp_suite() {
        let run = sys.run(&app);
        assert!(
            run.speedup() > 1.0,
            "{} did not accelerate: {:.2}",
            app.name,
            run.speedup()
        );
        assert_eq!(
            run.translation_cycles, 0,
            "{} charged translation",
            app.name
        );
    }
}

#[test]
fn policy_ordering_holds_per_app() {
    // Native (free translation) must dominate every real policy, and the
    // static-hints policy must never pay more translation than fully
    // dynamic.
    let arm = CpuModel::arm11();
    for name in ["mpeg2dec", "pegwitenc", "rawcaudio", "172.mgrid"] {
        let app = veal::workloads::application(name).unwrap();
        let native = run_application(&app, &arm, &AccelSetup::native());
        let dynamic = run_application(
            &app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        );
        let hinted = run_application(
            &app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::static_hints()),
        );
        assert!(
            native.speedup() >= dynamic.speedup() - 1e-9,
            "{name}: native {} < dynamic {}",
            native.speedup(),
            dynamic.speedup()
        );
        assert!(
            native.speedup() >= hinted.speedup() - 1e-9,
            "{name}: native {} < hinted {}",
            native.speedup(),
            hinted.speedup()
        );
        assert!(
            hinted.translation_cycles <= dynamic.translation_cycles,
            "{name}: hints cost more than dynamic"
        );
    }
}

#[test]
fn translation_sensitive_apps_collapse_dynamically() {
    // The paper's Figure 10 anchors.
    let arm = CpuModel::arm11();
    for name in ["mpeg2dec", "pegwitenc", "172.mgrid"] {
        let app = veal::workloads::application(name).unwrap();
        let native = run_application(&app, &arm, &AccelSetup::native()).speedup();
        let dynamic = run_application(
            &app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        )
        .speedup();
        assert!(
            dynamic < 0.8 * native,
            "{name}: expected a large dynamic-translation hit ({dynamic:.2} vs {native:.2})"
        );
    }
}

#[test]
fn rawcaudio_is_translation_insensitive() {
    // "there is only one critical loop in the application and so the
    // translation cost is easily amortized"
    let arm = CpuModel::arm11();
    let app = veal::workloads::application("rawcaudio").unwrap();
    let native = run_application(&app, &arm, &AccelSetup::native()).speedup();
    let dynamic = run_application(
        &app,
        &arm,
        &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
    )
    .speedup();
    assert!(dynamic > 0.98 * native, "{dynamic:.3} vs {native:.3}");
}

#[test]
fn code_cache_hit_rates_are_high() {
    // Paper §4.3: per-app hit rates "very close to 100%".
    let arm = CpuModel::arm11();
    for app in veal::workloads::media_fp_suite() {
        let run = run_application(
            &app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        );
        assert!(
            run.cache.hit_rate() > 0.9,
            "{}: hit rate {:.3}",
            app.name,
            run.cache.hit_rate()
        );
    }
}

#[test]
fn accelerator_beats_wider_cpus_on_media_suite() {
    let arm = CpuModel::arm11();
    let apps = veal::workloads::media_fp_suite();
    let mut hinted_sum = 0.0;
    let mut wide_sum = 0.0;
    for app in &apps {
        let hinted = run_application(
            app,
            &arm,
            &AccelSetup::paper(TranslationPolicy::static_hints()),
        );
        hinted_sum += hinted.speedup();
        let base = veal::sim::speedup::cpu_only_cycles(app, &arm) as f64;
        wide_sum += base / veal::sim::speedup::cpu_only_cycles(app, &CpuModel::quad_issue()) as f64;
    }
    let n = apps.len() as f64;
    assert!(
        hinted_sum / n > 1.5 * (wide_sum / n),
        "LA {:.2} vs 4-issue {:.2}",
        hinted_sum / n,
        wide_sum / n
    );
}

#[test]
fn whole_app_cycles_are_reproducible() {
    let sys = System::paper(TranslationPolicy::fully_dynamic());
    let app = veal::workloads::application("cjpeg").unwrap();
    let a = sys.run(&app);
    let b = sys.run(&app);
    assert_eq!(a.system_cycles, b.system_cycles);
    assert_eq!(a.cpu_only_cycles, b.cpu_only_cycles);
    assert_eq!(a.translation_cycles, b.translation_cycles);
}
