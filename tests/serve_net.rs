//! Loopback integration tests for the TCP serving path (DESIGN.md §15,
//! `veal::serve::net` + `veal::serve::wire`).
//!
//! The wire layer must be *invisible* the same way the concurrency is:
//! responses served over a socket are bit-identical to the in-process
//! service, malformed frames cost at most their own frame or connection
//! (never the server, never a bystander connection), and idle connections
//! are evicted without disturbing live ones.

use std::io::Write as _;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use veal::serve::wire::{encode_frame, ErrorCode, WireFrame, WIRE_VERSION};
use veal::serve::{generate, LoadSpec, NetConfig, NetReport, ServeConfig, TranslationService};
use veal::{NetServer, WireClient};

fn spec(seed: u64, requests: usize, tenants: usize) -> LoadSpec {
    LoadSpec {
        seed,
        requests,
        tenants,
        ..LoadSpec::default()
    }
}

/// Binds a loopback server on an ephemeral port and runs it on its own
/// thread; returns the address and the report-bearing join handle.
fn spawn_server(cfg: ServeConfig, net: NetConfig) -> (String, thread::JoinHandle<NetReport>) {
    let service = TranslationService::new(cfg);
    let server = NetServer::bind(service, net).expect("bind loopback");
    let addr = server.local_addr().expect("bound address").to_string();
    (addr, thread::spawn(move || server.run()))
}

/// The tentpole's acceptance bar: every response that crosses the socket
/// is bit-identical to what the in-process service hands back for the
/// same stream — same cycles charged, same encoded schedule bytes, same
/// per-tenant session statistics.
#[test]
fn network_responses_are_bit_identical_to_in_process_serving() {
    let cfg = ServeConfig {
        threads: 1,
        ..ServeConfig::paper()
    };
    let stream = generate(&spec(0x9E7, 60, 3), &cfg.config, cfg.cca.as_ref());

    // In-process reference: a fresh service over the same stream.
    let reference = TranslationService::new(cfg.clone()).run(&stream);
    assert_eq!(reference.stats.shed, 0, "queues must be deep enough here");

    let (addr, handle) = spawn_server(cfg.clone(), NetConfig::default());

    // One connection per tenant, driven lock-step in stream order — the
    // same admission order the in-process run used.
    let mut clients: Vec<Option<WireClient>> = (0..3).map(|_| None).collect();
    let mut net_outcomes: Vec<Vec<veal::ClientOutcome>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for req in &stream {
        let slot = &mut clients[req.tenant];
        let c = slot.get_or_insert_with(|| {
            WireClient::connect(
                &addr,
                u32::try_from(req.tenant).expect("small tenant index"),
                None,
                cfg.config.clone(),
            )
            .expect("connect")
        });
        let outcome = c.request(req.key, &req.body, &req.hints).expect("request");
        assert!(outcome.error.is_none(), "no refusals in a calm stream");
        net_outcomes[req.tenant].push(outcome);
    }
    clients
        .into_iter()
        .flatten()
        .next()
        .expect("at least one connection")
        .shutdown()
        .expect("graceful shutdown");
    let report = handle.join().expect("server thread");

    for (tenant, got) in net_outcomes.iter().enumerate() {
        let want = &reference.tenants[tenant].outcomes;
        assert_eq!(got.len(), want.len(), "tenant {tenant} answer count");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(
                g.translation_cycles, w.translation_cycles,
                "tenant {tenant} cycles diverged over the wire"
            );
            let want_bytes = w
                .translated
                .as_deref()
                .map(|t| veal::encode_translated_loop(t).expect("schedule encodes"));
            assert_eq!(
                g.translated_bytes, want_bytes,
                "tenant {tenant} schedule bytes diverged over the wire"
            );
        }
        // The sessions behind the socket are the same sessions: their
        // cumulative statistics must match the in-process run bit for bit.
        assert_eq!(
            report.tenants[tenant].stats, reference.tenants[tenant].stats,
            "tenant {tenant} VmStats diverged over the wire"
        );
    }
    assert_eq!(report.stats.completed, 60);
    assert_eq!(report.stats.shed, 0);
    assert_eq!(report.frames, 60 + 3 + 1, "requests + hellos + shutdown");
}

/// Repeating a loop over one connection takes the body-less hash fast
/// path; the answers must not change.
#[test]
fn the_hash_fast_path_answers_match_full_module_requests() {
    let cfg = ServeConfig {
        threads: 1,
        ..ServeConfig::paper()
    };
    let stream = generate(&spec(0xFA57, 20, 1), &cfg.config, cfg.cca.as_ref());
    let (addr, handle) = spawn_server(cfg.clone(), NetConfig::default());

    let mut c = WireClient::connect(&addr, 0, None, cfg.config.clone()).expect("connect");
    let mut first_pass = Vec::new();
    for req in &stream {
        let o = c.request(req.key, &req.body, &req.hints).expect("request");
        assert!(o.error.is_none());
        first_pass.push(o.translated_bytes);
    }
    // Second pass over the same loops: every request reuses a registered
    // body, and every answer is byte-identical to the first pass.
    for (req, first) in stream.iter().zip(&first_pass) {
        let o = c.request(req.key, &req.body, &req.hints).expect("request");
        assert!(o.error.is_none());
        assert_eq!(&o.translated_bytes, first, "fast-path answer changed");
    }
    c.shutdown().expect("graceful shutdown");
    let report = handle.join().expect("server thread");
    assert_eq!(report.stats.completed, 40);
}

/// Frame-level damage costs the frame; stream-level damage costs the
/// connection; neither costs the server or a bystander connection.
#[test]
fn malformed_frames_degrade_the_frame_or_connection_never_the_server() {
    let cfg = ServeConfig {
        threads: 1,
        ..ServeConfig::paper()
    };
    let stream = generate(&spec(0xBAD, 12, 1), &cfg.config, cfg.cca.as_ref());
    let (addr, handle) = spawn_server(cfg.clone(), NetConfig::default());

    // A well-behaved bystander connection, kept open throughout.
    let mut good = WireClient::connect(&addr, 0, None, cfg.config.clone()).expect("connect");
    let first = &stream[0];
    let o = good
        .request(first.key, &first.body, &first.hints)
        .expect("request");
    assert!(o.error.is_none());

    // Attacker 1: a checksum-damaged frame, then a valid request on the
    // same connection — the frame is rejected, the connection survives.
    {
        let mut c = WireClient::connect(&addr, 1, None, cfg.config.clone()).expect("connect");
        let mut bad = encode_frame(&WireFrame::ReqHash {
            seq: 99,
            key: 1,
            loop_hash: 2,
            hints_fp: 3,
        });
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        c.raw_stream().write_all(&bad).expect("send damaged frame");
        let o = c
            .request(first.key, &first.body, &first.hints)
            .expect("the connection survives the damaged frame");
        assert!(o.error.is_none(), "valid follow-up must be served");
    }

    // Attacker 2: a syntactically valid frame whose module payload is
    // garbage — the decode gauntlet refuses it with a typed error.
    {
        let mut c = WireClient::connect(&addr, 1, None, cfg.config.clone()).expect("connect");
        c.raw_stream()
            .write_all(&encode_frame(&WireFrame::ReqModule {
                seq: 77,
                key: 7,
                module: vec![0xDE, 0xAD, 0xBE, 0xEF],
            }))
            .expect("send garbage module");
        let o = c.request(first.key, &first.body, &first.hints).expect("ok");
        assert!(o.error.is_none(), "connection must outlive the refusal");
    }

    // Attacker 3: an oversized length claim — unresynchronizable, so the
    // server closes that connection (and only that connection).
    {
        let mut s = TcpStream::connect(&addr).expect("raw connect");
        let mut frame = vec![2u8]; // ReqModule tag
        frame.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        frame.extend_from_slice(&[0u8; 8]); // checksum field
        s.write_all(&frame).expect("send oversized claim");
        // The server hangs up; give the reactor a moment to do it.
        thread::sleep(Duration::from_millis(100));
    }

    // Attacker 4: a truncated frame followed by a hangup — torn stream,
    // no response owed, nothing to clean up but the connection.
    {
        let mut s = TcpStream::connect(&addr).expect("raw connect");
        let whole = encode_frame(&WireFrame::Hello {
            version: WIRE_VERSION,
            tenant: 1,
            family_fp: None,
        });
        s.write_all(&whole[..whole.len() / 2]).expect("send half");
        drop(s);
        thread::sleep(Duration::from_millis(100));
    }

    // The bystander is untouched: it serves the rest of its stream.
    for req in &stream[1..] {
        let o = good.request(req.key, &req.body, &req.hints).expect("ok");
        assert!(o.error.is_none(), "bystander must be unaffected");
    }
    good.shutdown().expect("graceful shutdown");
    let report = handle.join().expect("server thread");
    assert!(
        report.decode_rejects >= 2,
        "the damaged frame and the garbage module are counted rejects"
    );
    assert!(
        report.fatal_closes >= 1,
        "the oversized claim closes its connection"
    );
    assert_eq!(
        report.stats.completed,
        12 + 2,
        "stream + two attacker requests"
    );
}

/// A request before the hello and a hello from the future both earn typed
/// refusals, not silence.
#[test]
fn protocol_misuse_earns_typed_errors() {
    let cfg = ServeConfig {
        threads: 1,
        ..ServeConfig::paper()
    };
    let stream = generate(&spec(0x5E0, 1, 1), &cfg.config, cfg.cca.as_ref());
    let (addr, handle) = spawn_server(cfg.clone(), NetConfig::default());

    // Request without a hello: BadHello, per-request.
    {
        let mut c = WireClient::connect_raw(&addr, cfg.config.clone()).expect("connect");
        let req = &stream[0];
        let o = c.request(req.key, &req.body, &req.hints).expect("answered");
        assert_eq!(
            o.error.as_ref().map(|(code, _)| *code),
            Some(ErrorCode::BadHello)
        );
    }

    // Hello from a future wire version: BadHello, connection-level.
    {
        let mut s = TcpStream::connect(&addr).expect("raw connect");
        s.write_all(&encode_frame(&WireFrame::Hello {
            version: WIRE_VERSION + 1,
            tenant: 0,
            family_fp: None,
        }))
        .expect("send future hello");
        thread::sleep(Duration::from_millis(100));
    }

    let c = WireClient::connect(&addr, 0, None, cfg.config.clone()).expect("connect");
    c.shutdown().expect("graceful shutdown");
    let report = handle.join().expect("server thread");
    assert!(report.responses >= 2, "both misuses were answered");
}

/// Connections past the idle deadline are evicted; live ones are not.
#[test]
fn idle_connections_are_evicted_at_the_deadline() {
    let cfg = ServeConfig {
        threads: 1,
        ..ServeConfig::paper()
    };
    let net = NetConfig {
        idle_timeout: Duration::from_millis(150),
        ..NetConfig::default()
    };
    let stream = generate(&spec(0x1D1E, 30, 1), &cfg.config, cfg.cca.as_ref());
    let (addr, handle) = spawn_server(cfg.clone(), net);

    // The idler says hello and then goes quiet past the deadline.
    let idler = WireClient::connect(&addr, 1, None, cfg.config.clone()).expect("connect");

    // The live connection keeps talking the whole time: each request
    // resets its own deadline, and the idler's eviction never touches it.
    let mut live = WireClient::connect(&addr, 0, None, cfg.config.clone()).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_millis(600);
    let mut served = 0usize;
    while std::time::Instant::now() < deadline {
        let req = &stream[served % stream.len()];
        let o = live.request(req.key, &req.body, &req.hints).expect("ok");
        assert!(o.error.is_none());
        served += 1;
        thread::sleep(Duration::from_millis(20));
    }
    drop(idler);
    live.shutdown().expect("graceful shutdown");
    let report = handle.join().expect("server thread");
    assert!(
        report.idle_evicted >= 1,
        "the silent connection must be evicted at the deadline"
    );
    assert!(served > 0 && report.stats.completed as usize >= served);
}
