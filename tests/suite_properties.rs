//! Property tests over the workload suite and the scheduler: every loop
//! the suite ships is well formed; every schedule the system produces
//! passes the independent verifier; register pressure never exceeds the
//! file the schedule was accepted for.

use proptest::prelude::*;
use veal::ir::streams::separate;
use veal::sched::{modulo_schedule, rec_mii, res_mii, verify_schedule, ScheduleOptions};
use veal::{
    classify_loop, legalize, AcceleratorConfig, CcaSpec, CostMeter, LoopClass, RawLoop,
    TransformLimits,
};
use veal_sched::PriorityKind;
use veal_workloads::{synth_loop, SynthSpec};

#[test]
fn every_suite_loop_verifies_and_legalizes() {
    let limits = TransformLimits::default();
    for app in veal::workloads::full_suite() {
        for l in &app.loops {
            assert_eq!(
                veal::ir::verify_dfg(&l.raw.body.dfg),
                Ok(()),
                "{}/{}",
                app.name,
                l.raw.body.name
            );
            for part in legalize(&l.raw, &limits) {
                assert_eq!(
                    veal::ir::verify_dfg(&part.body.dfg),
                    Ok(()),
                    "{}/{} (legalized)",
                    app.name,
                    part.body.name
                );
            }
        }
    }
}

#[test]
fn every_accepted_schedule_passes_the_verifier() {
    // Run every legalized, modulo-schedulable suite loop through both
    // priority functions on the design point and verify each accepted
    // schedule from scratch.
    let la = AcceleratorConfig::paper_design();
    let limits = TransformLimits::default();
    let mut accepted = 0usize;
    for app in veal::workloads::media_fp_suite() {
        for l in &app.loops {
            for part in legalize(&l.raw, &limits) {
                if classify_loop(&part.body.dfg) != LoopClass::ModuloSchedulable {
                    continue;
                }
                let mut meter = CostMeter::new();
                let Ok(sep) = separate(&part.body.dfg, &mut meter) else {
                    continue;
                };
                let summary = sep.summary();
                let mut dfg = sep.dfg;
                veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
                for priority in [PriorityKind::Swing, PriorityKind::Height] {
                    let opts = ScheduleOptions {
                        priority,
                        static_order: None,
                        streams: Some(summary),
                    };
                    if let Ok(s) = modulo_schedule(&dfg, &la, &opts, &mut CostMeter::new()) {
                        accepted += 1;
                        let defects = verify_schedule(&dfg, &s.schedule, &la);
                        assert!(
                            defects.is_empty(),
                            "{}/{} [{priority:?}]: {defects:?}",
                            app.name,
                            part.body.name
                        );
                        assert!(s.schedule.ii >= s.mii || s.mii > la.max_ii);
                        assert!(s.registers.pressure.fits());
                    }
                }
            }
        }
    }
    assert!(accepted > 50, "too few schedules exercised: {accepted}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_loops_schedule_correctly_or_reject(
        seed in any::<u64>(),
        ops in 4usize..48,
        loads in 1usize..8,
        rec in 0usize..2,
    ) {
        let body = synth_loop(&SynthSpec {
            seed,
            compute_ops: ops,
            fp_frac: if seed % 2 == 0 { 0.0 } else { 0.5 },
            loads,
            stores: 1,
            recurrences: rec,
            rec_distance: 1 + ops as u32 / 8,
        });
        let la = AcceleratorConfig::paper_design();
        let mut meter = CostMeter::new();
        let sep = separate(&body.dfg, &mut meter).expect("synth loops separate");
        let summary = sep.summary();
        let mut dfg = sep.dfg;
        veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
        let mii = res_mii(&dfg, &la, summary, &mut meter)
            .max(rec_mii(&dfg, &la.latencies, &mut meter));
        let opts = ScheduleOptions { priority: PriorityKind::Swing, static_order: None, streams: Some(summary) };
        match modulo_schedule(&dfg, &la, &opts, &mut CostMeter::new()) {
            Ok(s) => {
                // Accepted schedules are valid and respect the MII bound.
                prop_assert!(s.schedule.ii >= mii.min(la.max_ii));
                prop_assert!(s.schedule.ii <= la.max_ii);
                let defects = verify_schedule(&dfg, &s.schedule, &la);
                prop_assert!(defects.is_empty(), "{defects:?}");
                prop_assert!(s.registers.pressure.fits());
            }
            Err(_) => {
                // Rejection is allowed; silent wrong answers are not.
            }
        }
    }

    #[test]
    fn classification_is_stable_under_legalization(seed in any::<u64>()) {
        // Once a loop is modulo schedulable, the static pipeline must not
        // break it.
        let body = synth_loop(&SynthSpec { seed, ..SynthSpec::default() });
        prop_assume!(classify_loop(&body.dfg) == LoopClass::ModuloSchedulable);
        let out = legalize(&RawLoop::plain(body), &TransformLimits::default());
        for part in out {
            prop_assert_eq!(classify_loop(&part.body.dfg), LoopClass::ModuloSchedulable);
        }
    }
}
