//! Property tests over the workload suite and the scheduler: every loop
//! the suite ships is well formed; every schedule the system produces
//! passes the independent verifier; register pressure never exceeds the
//! file the schedule was accepted for.

use veal::ir::streams::separate;
use veal::sched::{modulo_schedule, rec_mii, res_mii, verify_schedule, ScheduleOptions};
use veal::{
    classify_loop, legalize, AcceleratorConfig, CcaSpec, CostMeter, LoopClass, RawLoop,
    TransformLimits,
};
use veal_ir::rng::Rng64;
use veal_sched::PriorityKind;
use veal_workloads::{synth_loop, SynthSpec};

#[test]
fn every_suite_loop_verifies_and_legalizes() {
    let limits = TransformLimits::default();
    for app in veal::workloads::full_suite() {
        for l in &app.loops {
            assert_eq!(
                veal::ir::verify_dfg(&l.raw.body.dfg),
                Ok(()),
                "{}/{}",
                app.name,
                l.raw.body.name
            );
            for part in legalize(&l.raw, &limits) {
                assert_eq!(
                    veal::ir::verify_dfg(&part.body.dfg),
                    Ok(()),
                    "{}/{} (legalized)",
                    app.name,
                    part.body.name
                );
            }
        }
    }
}

#[test]
fn every_accepted_schedule_passes_the_verifier() {
    // Run every legalized, modulo-schedulable suite loop through both
    // priority functions on the design point and verify each accepted
    // schedule from scratch.
    let la = AcceleratorConfig::paper_design();
    let limits = TransformLimits::default();
    let mut accepted = 0usize;
    for app in veal::workloads::media_fp_suite() {
        for l in &app.loops {
            for part in legalize(&l.raw, &limits) {
                if classify_loop(&part.body.dfg) != LoopClass::ModuloSchedulable {
                    continue;
                }
                let mut meter = CostMeter::new();
                let Ok(sep) = separate(&part.body.dfg, &mut meter) else {
                    continue;
                };
                let summary = sep.summary();
                let mut dfg = sep.dfg;
                veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
                for priority in [PriorityKind::Swing, PriorityKind::Height] {
                    let opts = ScheduleOptions {
                        priority,
                        static_order: None,
                        streams: Some(summary),
                    };
                    if let Ok(s) = modulo_schedule(&dfg, &la, &opts, &mut CostMeter::new()) {
                        accepted += 1;
                        let defects = verify_schedule(&dfg, &s.schedule, &la);
                        assert!(
                            defects.is_empty(),
                            "{}/{} [{priority:?}]: {defects:?}",
                            app.name,
                            part.body.name
                        );
                        assert!(s.schedule.ii >= s.mii || s.mii > la.max_ii);
                        assert!(s.registers.pressure.fits());
                    }
                }
            }
        }
    }
    assert!(accepted > 50, "too few schedules exercised: {accepted}");
}

#[test]
fn random_loops_schedule_correctly_or_reject() {
    for case in 0u64..48 {
        let mut rng = Rng64::new(case.wrapping_mul(0xFACE_FEED) ^ 0x5EED);
        let seed = rng.next_u64();
        let ops = rng.gen_range(4, 48);
        let loads = rng.gen_range(1, 8);
        let rec = rng.gen_range(0, 2);
        let body = synth_loop(&SynthSpec {
            seed,
            compute_ops: ops,
            fp_frac: if seed.is_multiple_of(2) { 0.0 } else { 0.5 },
            loads,
            stores: 1,
            recurrences: rec,
            rec_distance: 1 + ops as u32 / 8,
        });
        let la = AcceleratorConfig::paper_design();
        let mut meter = CostMeter::new();
        let sep = separate(&body.dfg, &mut meter).expect("synth loops separate");
        let summary = sep.summary();
        let mut dfg = sep.dfg;
        veal::cca::map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
        let mii =
            res_mii(&dfg, &la, summary, &mut meter).max(rec_mii(&dfg, &la.latencies, &mut meter));
        let opts = ScheduleOptions {
            priority: PriorityKind::Swing,
            static_order: None,
            streams: Some(summary),
        };
        match modulo_schedule(&dfg, &la, &opts, &mut CostMeter::new()) {
            Ok(s) => {
                // Accepted schedules are valid and respect the MII bound.
                assert!(s.schedule.ii >= mii.min(la.max_ii), "case {case}");
                assert!(s.schedule.ii <= la.max_ii, "case {case}");
                let defects = verify_schedule(&dfg, &s.schedule, &la);
                assert!(defects.is_empty(), "case {case}: {defects:?}");
                assert!(s.registers.pressure.fits(), "case {case}");
            }
            Err(_) => {
                // Rejection is allowed; silent wrong answers are not.
            }
        }
    }
}

#[test]
fn classification_is_stable_under_legalization() {
    // Once a loop is modulo schedulable, the static pipeline must not
    // break it.
    let mut exercised = 0usize;
    for case in 0u64..64 {
        let mut rng = Rng64::new(case.wrapping_mul(0xABCD_EF01) ^ 0xC1A5);
        let seed = rng.next_u64();
        let body = synth_loop(&SynthSpec {
            seed,
            ..SynthSpec::default()
        });
        if classify_loop(&body.dfg) != LoopClass::ModuloSchedulable {
            continue;
        }
        exercised += 1;
        let out = legalize(&RawLoop::plain(body), &TransformLimits::default());
        for part in out {
            assert_eq!(
                classify_loop(&part.body.dfg),
                LoopClass::ModuloSchedulable,
                "case {case}"
            );
        }
    }
    assert!(exercised > 10, "too few schedulable loops: {exercised}");
}
