//! Integration tests for the design-space exploration (Figures 3 and 4
//! and the §3.2 design point).

use veal::sim::dse::{fraction_of_infinite, mean_speedup};
use veal::{AcceleratorConfig, CcaSpec, CpuModel};
use veal_workloads::Application;

fn apps() -> Vec<Application> {
    // A representative subset keeps the test quick; the fig3/fig4 binaries
    // sweep the full suite.
    ["rawcaudio", "cjpeg", "171.swim", "g721encode", "epic"]
        .iter()
        .filter_map(|n| veal::workloads::application(n))
        .collect()
}

#[test]
fn design_point_attains_most_of_infinite_speedup() {
    let apps = apps();
    let cpu = CpuModel::arm11();
    let f = fraction_of_infinite(
        &apps,
        &cpu,
        &AcceleratorConfig::paper_design(),
        Some(&CcaSpec::paper()),
    );
    // Paper: 83% on their suite; allow a band on ours.
    assert!((0.6..=1.01).contains(&f), "fraction {f}");
}

#[test]
fn speedup_is_monotone_in_integer_units() {
    let apps = apps();
    let cpu = CpuModel::arm11();
    let inf = AcceleratorConfig::infinite();
    let mut prev = 0.0;
    for n in [1usize, 2, 4, 8] {
        let mut cfg = inf.clone();
        cfg.int_units = n;
        cfg.cca_units = 0;
        let s = mean_speedup(&apps, &cpu, &cfg, None);
        assert!(
            s + 1e-9 >= prev,
            "speedup regressed at {n} int units: {s} < {prev}"
        );
        prev = s;
    }
}

#[test]
fn one_cca_substitutes_for_many_integer_units() {
    // The Figure 3(a) headline: with one CCA, few integer units reach what
    // many units reach without one.
    let apps = apps();
    let cpu = CpuModel::arm11();
    let inf = AcceleratorConfig::infinite();

    let mut two_int_with_cca = inf.clone();
    two_int_with_cca.int_units = 2;
    two_int_with_cca.cca_units = 1;
    let s_cca = mean_speedup(&apps, &cpu, &two_int_with_cca, Some(&CcaSpec::paper()));

    let mut two_int_no_cca = inf.clone();
    two_int_no_cca.int_units = 2;
    two_int_no_cca.cca_units = 0;
    let s_plain = mean_speedup(&apps, &cpu, &two_int_no_cca, None);

    assert!(
        s_cca > s_plain,
        "adding a CCA must help at 2 int units: {s_cca} vs {s_plain}"
    );
}

#[test]
fn stream_budget_is_monotone_and_saturates() {
    let apps = apps();
    let cpu = CpuModel::arm11();
    let inf = AcceleratorConfig::infinite();
    let measure = |streams: usize| {
        let mut cfg = inf.clone();
        cfg.load_streams = streams;
        cfg.load_addr_gens = streams.div_ceil(4).max(1);
        mean_speedup(&apps, &cpu, &cfg, Some(&CcaSpec::paper()))
    };
    let s2 = measure(2);
    let s8 = measure(8);
    let s32 = measure(32);
    assert!(s8 >= s2);
    assert!(s32 >= s8);
    // Saturation: going from 8 to 32 gains less than going from 2 to 8.
    assert!(s32 - s8 <= s8 - s2 + 1e-9);
}

#[test]
fn max_ii_sixteen_suffices() {
    // Figure 4(b): the design point's control store depth is enough.
    let apps = apps();
    let cpu = CpuModel::arm11();
    let inf = AcceleratorConfig::infinite();
    let mut at16 = inf.clone();
    at16.max_ii = 16;
    let mut at64 = inf.clone();
    at64.max_ii = 64;
    let s16 = mean_speedup(&apps, &cpu, &at16, Some(&CcaSpec::paper()));
    let s64 = mean_speedup(&apps, &cpu, &at64, Some(&CcaSpec::paper()));
    assert!(s16 > 0.95 * s64, "II 16: {s16} vs II 64: {s64}");
}

#[test]
fn area_budget_matches_paper() {
    let area = AcceleratorConfig::paper_design().area();
    assert!((area.total() - 3.8).abs() < 0.25);
    assert!((area.fp_units - 2.38).abs() < 1e-9);
    // ARM11 + LA undercuts the 2-issue CPU (Figure 10's area argument).
    assert!(CpuModel::arm11().area_mm2 + area.total() < CpuModel::cortex_a8().area_mm2);
}
