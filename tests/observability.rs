//! Coherence tests for the observability layer (DESIGN.md §10).
//!
//! Two contracts are enforced over a seeded synth-loop corpus:
//!
//! 1. **fold coherence** — folding the event stream a `VmSession` emits
//!    ([`veal::fold_vm_stats`]) reproduces the session's directly-counted
//!    [`veal::VmStats`] exactly, for every stats path the session has
//!    (clean translations, cache hits, hint degradation, quarantine,
//!    watchdog aborts, pinned skips, failures);
//! 2. **determinism** — two runs from the same seed produce byte-identical
//!    JSONL, and attaching a sink never changes the counted statistics.

use std::sync::Arc;
use veal::obs::SharedBuf;
use veal::{
    compute_hints, exposed_translator, fold_vm_stats, parse_jsonl, JsonlSink, RingSink, Trace,
    VmSession,
};
use veal_ir::rng::Rng64;
use veal_ir::LoopBody;
use veal_vm::StaticHints;
use veal_workloads::{synth_loop, SynthSpec};

const CASES: usize = 20;

fn arb_spec(rng: &mut Rng64) -> SynthSpec {
    SynthSpec {
        seed: rng.next_u64(),
        compute_ops: rng.gen_range(4, 32),
        fp_frac: [0.0, 0.4, 0.8][rng.gen_range(0, 3)],
        loads: rng.gen_range(1, 6),
        stores: rng.gen_range(1, 3),
        recurrences: rng.gen_range(0, 3),
        rec_distance: rng.gen_range(1, 5) as u32,
    }
}

/// A seeded corpus: synth loops paired with their *valid* static hints.
fn corpus(seed: u64) -> Vec<(LoopBody, StaticHints)> {
    let t = exposed_translator();
    let mut rng = Rng64::new(seed);
    (0..CASES)
        .map(|_| {
            let body = synth_loop(&arb_spec(&mut rng));
            let hints = compute_hints(&body, t.config(), t.cca());
            (body, hints)
        })
        .collect()
}

/// Drives a deterministic invocation schedule exercising every stats path.
///
/// The corpus (20 keys) overflows the paper's 16-entry code cache, so
/// rounds re-translate evicted loops. Every third loop is invoked with
/// hints computed for a *different* loop — the validator rejects those, the
/// failure streak builds across rounds, and the loop is quarantined. The
/// occasional immediate re-invoke lands a code-cache hit, and later rounds
/// hit pinned (rejected) keys.
fn drive(session: &mut VmSession, corpus: &[(LoopBody, StaticHints)]) {
    for round in 0..4 {
        for (i, (body, hints)) in corpus.iter().enumerate() {
            let donor = &corpus[(i + 1) % corpus.len()].1;
            let spliced = i % 3 == 0;
            let h = if spliced { donor } else { hints };
            let _ = session.invoke(i as u64, body, h);
            if round == 0 && i % 5 == 0 {
                let _ = session.invoke(i as u64, body, h);
            }
        }
    }
}

#[test]
fn folding_the_event_stream_equals_the_direct_counters() {
    let ring = Arc::new(RingSink::new(1 << 16));
    let mut session = VmSession::new(exposed_translator()).with_trace(Trace::new(ring.clone()));
    let corpus = corpus(0xC0FFEE);
    drive(&mut session, &corpus);

    let events = ring.events();
    assert_eq!(fold_vm_stats(&events), *session.stats());

    // The schedule must actually have exercised the interesting paths, or
    // the equality above proves less than it claims.
    let stats = session.stats();
    assert!(stats.translations > 0, "no translations happened");
    assert!(stats.hint_validations > 0, "no hints were validated");
    assert!(
        stats.degraded_translations > 0,
        "spliced hints were never rejected"
    );
    assert!(
        stats.quarantined_loops > 0,
        "no streak reached the quarantine threshold"
    );
}

#[test]
fn folding_covers_the_watchdog_abort_path() {
    let ring = Arc::new(RingSink::new(1 << 16));
    // A 40-unit budget is far below any synth loop's translation cost, so
    // every attempt aborts at the cap and the key is pinned to the CPU.
    let mut session = VmSession::new(exposed_translator())
        .with_translation_budget(40)
        .with_trace(Trace::new(ring.clone()));
    let corpus = corpus(0xAB047);
    for (i, (body, hints)) in corpus.iter().enumerate() {
        let _ = session.invoke(i as u64, body, hints);
        // Second invoke of a pinned key: a `pinned_skip`, no new counts.
        let _ = session.invoke(i as u64, body, hints);
    }

    assert_eq!(fold_vm_stats(&ring.events()), *session.stats());
    assert!(session.stats().watchdog_aborts > 0, "budget never tripped");
    assert_eq!(session.stats().watchdog_aborts, session.stats().failures);
}

/// One full traced run from `seed`, returning the raw JSONL bytes.
fn traced_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::new();
    let trace = Trace::new(Arc::new(JsonlSink::to_writer(buf.clone())));
    let mut session = VmSession::new(exposed_translator()).with_trace(trace.clone());
    let corpus = corpus(seed);
    drive(&mut session, &corpus);
    trace.flush().expect("in-memory flush cannot fail");
    buf.contents()
}

#[test]
fn same_seed_runs_emit_byte_identical_jsonl() {
    let a = traced_run(0x5EED);
    let b = traced_run(0x5EED);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed traces diverged");

    // And the bytes are valid, strictly-parsed JSONL end to end.
    let text = std::str::from_utf8(&a).expect("trace is UTF-8");
    let events = parse_jsonl(text).expect("trace parses");
    assert!(!events.is_empty());
}

#[test]
fn attaching_a_sink_never_changes_the_counted_stats() {
    let corpus = corpus(0xD15AB1ED);
    let mut plain = VmSession::new(exposed_translator());
    drive(&mut plain, &corpus);

    let ring = Arc::new(RingSink::new(1 << 16));
    let mut traced = VmSession::new(exposed_translator()).with_trace(Trace::new(ring.clone()));
    drive(&mut traced, &corpus);

    assert_eq!(plain.stats(), traced.stats());
    assert!(!ring.events().is_empty());
}
