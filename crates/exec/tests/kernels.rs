//! Differential gate: LoopVM (scalar and lane modes) must reproduce the
//! reference interpreter bit for bit on the entire kernel library, on
//! the same fixture the golden `semantic_checksum` pins are stated in.

use veal_accel::AcceleratorConfig;
use veal_exec::{CompileError, ExecutableLoop};
use veal_ir::interp::{interpret, InterpError};
use veal_ir::{CostMeter, LoopBody};
use veal_sched::{modulo_schedule, ModuloSchedule, ScheduleOptions};
use veal_workloads::{
    fixture_inputs, fold_checksum, kernels, semantic_checksum, FIXTURE_ITERATIONS,
};

fn kernel_library() -> Vec<(&'static str, LoopBody)> {
    vec![
        ("dot_product", kernels::dot_product()),
        ("daxpy", kernels::daxpy()),
        ("fir8", kernels::fir(8)),
        ("adpcm_step", kernels::adpcm_step()),
        ("idct_row", kernels::idct_row()),
        ("autocorr", kernels::autocorr()),
        ("viterbi_acs", kernels::viterbi_acs()),
        ("quantize", kernels::quantize()),
        ("stencil3", kernels::stencil3()),
        ("crypto4", kernels::crypto_round(4)),
        ("swim_stencil", kernels::swim_stencil()),
        ("mgrid27", kernels::mgrid_resid(27)),
        ("fp_recurrence", kernels::fp_recurrence()),
        ("color_convert", kernels::color_convert()),
        ("bit_unpack", kernels::bit_unpack()),
        ("sobel3", kernels::sobel3()),
        ("alpha_blend", kernels::alpha_blend()),
        ("rgb_to_gray", kernels::rgb_to_gray()),
        ("bit_pack", kernels::bit_pack()),
        ("matmul_tile", kernels::matmul_tile()),
        ("lms_adapt", kernels::lms_adapt()),
        ("median3", kernels::median3()),
        ("while_scan", kernels::while_scan()),
    ]
}

fn try_schedule(body: &LoopBody) -> Option<ModuloSchedule> {
    modulo_schedule(
        &body.dfg,
        &AcceleratorConfig::paper_design(),
        &ScheduleOptions::default(),
        &mut CostMeter::new(),
    )
    .ok()
    .map(|s| s.schedule)
}

#[test]
fn loopvm_reproduces_interp_on_every_kernel() {
    for (name, body) in kernel_library() {
        let inputs = fixture_inputs(&body);
        let golden = interpret(&body.dfg, FIXTURE_ITERATIONS, &inputs)
            .unwrap_or_else(|e| panic!("{name}: interp failed: {e}"));
        let schedule = try_schedule(&body);
        for (mode, sched) in [("topo", None), ("schedule", schedule.as_ref())] {
            let exe = ExecutableLoop::compile(&body.dfg, sched)
                .unwrap_or_else(|e| panic!("{name} ({mode}): compile failed: {e}"));
            let scalar = exe.run(FIXTURE_ITERATIONS, &inputs);
            assert_eq!(scalar, golden, "{name} ({mode}): scalar output diverged");
            for width in [1usize, 4, 8] {
                let lanes = exe.run_lanes(FIXTURE_ITERATIONS, &inputs, width);
                assert_eq!(lanes, golden, "{name} ({mode}): lanes W={width} diverged");
            }
        }
    }
}

#[test]
fn loopvm_checksums_match_the_golden_pins() {
    for (name, body) in kernel_library() {
        let Some(pin) = semantic_checksum(&body) else {
            continue;
        };
        let inputs = fixture_inputs(&body);
        let exe = ExecutableLoop::compile(&body.dfg, None).expect("compiles");
        assert_eq!(
            fold_checksum(&exe.run(FIXTURE_ITERATIONS, &inputs)),
            pin,
            "{name}: scalar checksum off the golden pin"
        );
        assert_eq!(
            fold_checksum(&exe.run_lanes(FIXTURE_ITERATIONS, &inputs, 8)),
            pin,
            "{name}: lane checksum off the golden pin"
        );
    }
}

#[test]
fn opaque_bodies_are_refused_like_the_interpreter() {
    let body = kernels::call_loop();
    let err = interpret(&body.dfg, 1, &fixture_inputs(&body)).unwrap_err();
    let InterpError::Opaque(op) = err else {
        panic!("interp refuses call_loop with Opaque, got {err}");
    };
    assert_eq!(
        ExecutableLoop::compile(&body.dfg, None).unwrap_err(),
        CompileError::Opaque(op),
        "LoopVM must refuse the same op the interpreter refuses"
    );
}

#[test]
fn zero_and_short_runs_match() {
    for (name, body) in kernel_library() {
        let inputs = fixture_inputs(&body);
        let exe = ExecutableLoop::compile(&body.dfg, None).expect("compiles");
        for iterations in [0u64, 1, 2, 3, 7] {
            let golden = interpret(&body.dfg, iterations, &inputs).expect("interp");
            assert_eq!(
                exe.run(iterations, &inputs),
                golden,
                "{name}: scalar diverged at {iterations} iterations"
            );
            for width in [4usize, 8] {
                assert_eq!(
                    exe.run_lanes(iterations, &inputs, width),
                    golden,
                    "{name}: lanes W={width} diverged at {iterations} iterations"
                );
            }
        }
    }
}
