//! Seeded 200-case differential corpus.
//!
//! Random schedulable loops (`Rng64`-parameterized `synth_loop` specs)
//! run through the reference interpreter, LoopVM scalar, and lane mode
//! at W ∈ {1, 4, 8}; every executor must produce the identical checksum
//! on the shared golden fixture, at full and partial trip counts. Bodies
//! poisoned with an opaque call must be refused by all three, matching
//! `semantic_checksum`'s `None`.

use veal_accel::AcceleratorConfig;
use veal_exec::{CompileError, ExecutableLoop};
use veal_ir::interp::{interpret, InterpError};
use veal_ir::rng::Rng64;
use veal_ir::{CostMeter, Opcode};
use veal_sched::{modulo_schedule, ScheduleOptions};
use veal_workloads::{fixture_inputs, fold_checksum, synth_loop, SynthSpec};

const CASES: u64 = 200;

fn spec_for(seed: u64, rng: &mut Rng64) -> SynthSpec {
    SynthSpec {
        seed,
        compute_ops: 4 + rng.gen_range(0, 44),
        fp_frac: if rng.gen_bool(0.3) { 0.6 } else { 0.0 },
        loads: 1 + rng.gen_range(0, 6),
        stores: 1 + rng.gen_range(0, 3),
        recurrences: rng.gen_range(0, 3),
        rec_distance: 1 + rng.gen_range(0, 4) as u32,
    }
}

#[test]
fn corpus_checksums_are_identical_across_executors() {
    let mut rng = Rng64::new(0xD1FF_2026);
    let config = AcceleratorConfig::paper_design();
    let mut scheduled = 0usize;
    for case in 0..CASES {
        let spec = spec_for(case, &mut rng);
        let body = synth_loop(&spec);
        let inputs = fixture_inputs(&body);
        // Vary the trip count so batch tails (iterations % W ≠ 0) and
        // sub-width runs are exercised, not just the full fixture.
        let iterations = [24u64, 1, 5, 8, 23][case as usize % 5];
        let golden = interpret(&body.dfg, iterations, &inputs)
            .unwrap_or_else(|e| panic!("case {case}: interp failed: {e}"));
        let want = fold_checksum(&golden);

        // Mirror the translator pipeline: separate streams, then modulo
        // schedule the compute view. The separated graph shares the
        // original's id space, so its schedule orders the original's ops.
        let mut meter = CostMeter::new();
        let schedule = veal_ir::streams::separate(&body.dfg, &mut meter)
            .ok()
            .and_then(|sep| {
                modulo_schedule(&sep.dfg, &config, &ScheduleOptions::default(), &mut meter).ok()
            })
            .map(|s| s.schedule);
        scheduled += usize::from(schedule.is_some());

        let exe = ExecutableLoop::compile(&body.dfg, schedule.as_ref())
            .unwrap_or_else(|e| panic!("case {case}: compile failed: {e}"));
        assert_eq!(
            fold_checksum(&exe.run(iterations, &inputs)),
            want,
            "case {case} (seed {}): scalar checksum diverged",
            spec.seed
        );
        for width in [1usize, 4, 8] {
            assert_eq!(
                fold_checksum(&exe.run_lanes(iterations, &inputs, width)),
                want,
                "case {case} (seed {}): lane checksum diverged at W={width}",
                spec.seed
            );
        }
    }
    // The corpus is only meaningful if a healthy share of it actually
    // exercises schedule-ordered bytecode.
    assert!(
        scheduled * 2 > CASES as usize,
        "only {scheduled}/{CASES} cases were schedulable"
    );
}

#[test]
fn opaque_bodies_are_refused_by_all_executors() {
    use veal_ir::dfg::{EdgeKind, NodeKind};
    let mut rng = Rng64::new(0x0BAD_CA11);
    for case in 0..20u64 {
        let body = synth_loop(&spec_for(case, &mut rng));
        // Poison the body with an opaque call consuming a live value.
        let mut poisoned = body.dfg.clone();
        let feed = veal_ir::OpId::new(rng.gen_range(0, poisoned.len()));
        let call = poisoned.add_node(NodeKind::Op(Opcode::Call));
        poisoned.add_edge(feed, call, 0, EdgeKind::Data);
        poisoned.node_mut(call).live_out = true;

        let inputs = fixture_inputs(&body);
        let ierr = interpret(&poisoned, 4, &inputs).unwrap_err();
        let InterpError::Opaque(iop) = ierr else {
            panic!("case {case}: interp refused with {ierr}, expected Opaque");
        };
        let cerr = ExecutableLoop::compile(&poisoned, None).unwrap_err();
        assert_eq!(
            cerr,
            CompileError::Opaque(iop),
            "case {case}: LoopVM must refuse the same op"
        );
    }
}
