//! Pins for divergence-prone executor edge semantics.
//!
//! These are the corners where a host-native backend most plausibly
//! drifts from the reference interpreter — shift-amount masking, the one
//! undefined case of two's-complement division, and float→int casts of
//! non-finite values. Each case pins the *exact* expected value and
//! asserts the interpreter, LoopVM scalar, and both lane widths all
//! produce it, so agreement is by test, not by accident.

use veal_exec::ExecutableLoop;
use veal_ir::interp::{interpret, Inputs, Value};
use veal_ir::{DfgBuilder, Opcode};

/// Runs a two-input op over paired streams through all four executors
/// and returns the stored outputs after checking they are identical.
fn run_binop(op: Opcode, lhs: &[Value], rhs: &[Value]) -> Vec<Value> {
    let mut b = DfgBuilder::new();
    let x = b.load_stream(0);
    let y = b.load_stream(1);
    let r = b.op(op, &[x, y]);
    b.store_stream(2, r);
    let dfg = b.finish();
    let mut inputs = Inputs::default();
    inputs.streams.insert(0, lhs.to_vec());
    inputs.streams.insert(1, rhs.to_vec());
    let n = lhs.len() as u64;
    let golden = interpret(&dfg, n, &inputs).expect("interp");
    let exe = ExecutableLoop::compile(&dfg, None).expect("compiles");
    assert_eq!(exe.run(n, &inputs), golden, "{op:?}: scalar diverged");
    for width in [4usize, 8] {
        assert_eq!(
            exe.run_lanes(n, &inputs, width),
            golden,
            "{op:?}: lanes W={width} diverged"
        );
    }
    golden.stores[&2].clone()
}

fn ints(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

#[test]
fn shifts_mask_amounts_like_hardware() {
    // Shift amounts are taken mod 64 (`& 63`), including for negative
    // values being shifted: a shift of 64 is a shift of 0, 65 is 1, and
    // a negative amount masks to its low six bits (-1 & 63 == 63).
    let x = ints(&[-8, -8, -8, -8, -1]);
    let sh = ints(&[63, 64, 65, 1, -1]);
    assert_eq!(
        run_binop(Opcode::Sra, &x, &sh),
        // Arithmetic: sign fills in.
        ints(&[-1, -8, -4, -4, -1])
    );
    assert_eq!(
        run_binop(Opcode::Shr, &x, &sh),
        // Logical: -8 as u64 >> 63 is 1; >> 64 masks to >> 0.
        ints(&[1, -8, 0x7FFF_FFFF_FFFF_FFFC, 0x7FFF_FFFF_FFFF_FFFC, 1])
    );
    assert_eq!(
        run_binop(Opcode::Shl, &x, &sh),
        // -8 << 63 keeps only bit 0 of -8 (which is 0); -1 << 63 is MIN.
        ints(&[0, -8, -16, -16, i64::MIN])
    );
}

#[test]
fn division_overflow_and_zero_are_zero() {
    // i64::MIN / -1 overflows two's complement; the checked semantics
    // define it (and anything / 0) as 0 rather than trapping.
    let x = ints(&[i64::MIN, i64::MIN, 7, -7, i64::MAX]);
    let y = ints(&[-1, 1, 0, 2, -1]);
    assert_eq!(
        run_binop(Opcode::Div, &x, &y),
        ints(&[0, i64::MIN, 0, -3, -i64::MAX])
    );
    assert_eq!(run_binop(Opcode::Rem, &x, &y), ints(&[0, 0, 0, -1, 0]));
}

#[test]
fn float_to_int_saturates_on_non_finite() {
    // Rust's `as` cast: NaN → 0, ±∞ and out-of-range saturate to the
    // integer extremes. The backend must inherit exactly this.
    let mut b = DfgBuilder::new();
    let x = b.load_stream(0);
    let r = b.op(Opcode::FtoI, &[x]);
    b.store_stream(1, r);
    let dfg = b.finish();
    let mut inputs = Inputs::default();
    inputs.streams.insert(
        0,
        vec![
            Value::Fp(f64::NAN),
            Value::Fp(f64::INFINITY),
            Value::Fp(f64::NEG_INFINITY),
            Value::Fp(1e300),
            Value::Fp(-1e300),
            Value::Fp(-2.9),
        ],
    );
    let golden = interpret(&dfg, 6, &inputs).expect("interp");
    assert_eq!(
        golden.stores[&1],
        ints(&[0, i64::MAX, i64::MIN, i64::MAX, i64::MIN, -2])
    );
    let exe = ExecutableLoop::compile(&dfg, None).expect("compiles");
    assert_eq!(exe.run(6, &inputs), golden);
    assert_eq!(exe.run_lanes(6, &inputs, 8), golden);
    assert_eq!(exe.run_lanes(6, &inputs, 4), golden);
}
