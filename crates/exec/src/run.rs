//! The LoopVM executors: scalar and lane-vectorized.
//!
//! Both share one value-semantics core ([`eval`]) that mirrors
//! `veal_ir::interp::eval` op for op — wrapping integer arithmetic,
//! hardware-masked shifts, checked division to zero, saturating
//! float-to-int casts, trailing operands defaulting to `Int(0)`.
//!
//! The ring bank replaces the interpreter's `Vec<Vec<Value>>` history: one
//! flat `depth × n_slots` allocation, with `depth` a power of two so the
//! `(iter − distance) % depth` row lookup is a mask. The scalar executor
//! needs `depth > max_dist`; the lane executor needs
//! `depth ≥ width + max_dist` so a batch's writes never alias the rows
//! its own loop-carried reads still need.
//!
//! Stores are *staged*: execution order follows the schedule, but the
//! interpreter pushes same-stream stores in `dfg.topo_order()` position,
//! so each iteration's store values are parked per site and committed in
//! the compiler-recorded order — per lane, iteration-major, in the lane
//! executor.

use std::collections::BTreeMap;

use veal_ir::interp::{ExecResult, Inputs, Value};

use crate::{ExecOp, ExecutableLoop};

/// Per-run state: the ring bank, dense initial/input views, and store
/// staging. Allocation happens once per run, never per iteration.
struct Frame<'a> {
    ring: Vec<Value>,
    /// Dense `inputs.initials`, read by loop-carried edges that reach
    /// before iteration 0.
    init: Vec<Value>,
    /// Input slice per load cursor (missing streams read as empty).
    loads: Vec<&'a [Value]>,
    /// Staged store values, `site * width + lane`.
    staged: Vec<Value>,
    /// Output vector per distinct store stream.
    outs: Vec<Vec<Value>>,
    /// Ring depth (power of two) and its row mask.
    depth: usize,
    mask: usize,
}

impl<'a> Frame<'a> {
    fn new(exe: &ExecutableLoop, inputs: &'a Inputs, width: usize, iterations: u64) -> Self {
        let n = exe.n_slots;
        let depth = (exe.max_dist + width).next_power_of_two();
        let mut init = vec![Value::Int(0); n];
        for (&id, &v) in &inputs.initials {
            if id.index() < n {
                init[id.index()] = v;
            }
        }
        let mut ring = Vec::with_capacity(depth * n);
        for _ in 0..depth {
            ring.extend_from_slice(&init);
        }
        // Constants and live-ins are iteration-invariant: seeding every
        // row once is equivalent to the interpreter refreshing the
        // current row each iteration.
        for row in 0..depth {
            for &(slot, c) in &exe.consts {
                ring[row * n + slot as usize] = Value::Int(c);
            }
            for &id in &exe.live_ins {
                ring[row * n + id.index()] =
                    inputs.live_ins.get(&id).copied().unwrap_or(Value::Int(0));
            }
        }
        let loads = exe
            .load_streams
            .iter()
            .map(|s| inputs.streams.get(s).map_or(&[] as &[Value], Vec::as_slice))
            .collect();
        // Every store site pushes once per iteration; reserving the exact
        // final length (capped to keep a huge trip count from
        // preallocating unboundedly) keeps the commit loop free of
        // reallocation copies.
        let reserve = usize::try_from(iterations.min(1 << 20)).unwrap_or(usize::MAX);
        let mut sites_per_slot = vec![0usize; exe.out_streams.len()];
        for &slot in &exe.store_slot {
            sites_per_slot[slot as usize] += 1;
        }
        let outs = sites_per_slot
            .iter()
            .map(|&sites| Vec::with_capacity(sites.saturating_mul(reserve)))
            .collect();
        Frame {
            ring,
            init,
            loads,
            staged: vec![Value::Int(0); exe.store_streams.len() * width],
            outs,
            depth,
            mask: depth - 1,
        }
    }

    /// Commits one iteration's staged stores in interpreter order.
    #[inline]
    fn commit(&mut self, exe: &ExecutableLoop, width: usize, lane: usize) {
        for &site in &exe.store_commit {
            let slot = exe.store_slot[site as usize] as usize;
            self.outs[slot].push(self.staged[site as usize * width + lane]);
        }
    }

    /// Packages stores and live-outs exactly as the interpreter does.
    fn finish(mut self, exe: &ExecutableLoop, iterations: u64) -> ExecResult {
        let mut result = ExecResult::default();
        if iterations > 0 {
            // The interpreter creates a stream entry on first push, so a
            // zero-iteration run has no entries at all.
            for (i, &s) in exe.out_streams.iter().enumerate() {
                result.stores.insert(s, std::mem::take(&mut self.outs[i]));
            }
            let row = ((iterations - 1) as usize & self.mask) * exe.n_slots;
            let mut live_outs = BTreeMap::new();
            for &id in &exe.live_outs {
                live_outs.insert(id, self.ring[row + id.index()]);
            }
            result.live_outs = live_outs;
        }
        result
    }
}

/// Reads ring slot `src` at loop-carried distance `d` for iteration
/// `iter`: the dense initials before iteration 0, the ring otherwise.
#[inline(always)]
fn read(
    init: &[Value],
    ring: &[Value],
    mask: usize,
    n: usize,
    src: usize,
    d: u64,
    iter: u64,
) -> Value {
    if d > iter {
        init[src]
    } else {
        ring[((iter - d) as usize & mask) * n + src]
    }
}

/// Reads operand `j` of instruction `i` for iteration `iter`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn arg(
    exe: &ExecutableLoop,
    frame_init: &[Value],
    ring: &[Value],
    mask: usize,
    n: usize,
    base: usize,
    cnt: usize,
    j: usize,
    iter: u64,
) -> Value {
    if j >= cnt {
        return Value::Int(0);
    }
    let src = exe.arg_src[base + j] as usize;
    let d = u64::from(exe.arg_dist[base + j]);
    if d > iter {
        frame_init[src]
    } else {
        ring[((iter - d) as usize & mask) * n + src]
    }
}

/// Evaluates instruction `i` at iteration `iter` against the ring,
/// mirroring `veal_ir::interp::eval`. Returns the value to write to the
/// destination slot (stores also return their value, like the
/// interpreter writing it to history).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn eval(
    exe: &ExecutableLoop,
    frame_init: &[Value],
    loads: &[&[Value]],
    staged: &mut [Value],
    ring: &[Value],
    mask: usize,
    i: usize,
    iter: u64,
    width: usize,
    lane: usize,
) -> Value {
    let n = exe.n_slots;
    let base = exe.arg_base[i] as usize;
    let cnt = exe.arg_base[i + 1] as usize - base;
    let a = |j: usize| arg(exe, frame_init, ring, mask, n, base, cnt, j, iter);
    let ai = |j: usize| a(j).as_int();
    let af = |j: usize| a(j).as_fp();
    let sh = |j: usize| (ai(j) & 63) as u32;
    match exe.ops[i] {
        ExecOp::Add => Value::Int(ai(0).wrapping_add(ai(1))),
        ExecOp::Sub => Value::Int(ai(0).wrapping_sub(ai(1))),
        ExecOp::And => Value::Int(ai(0) & ai(1)),
        ExecOp::Or => Value::Int(ai(0) | ai(1)),
        ExecOp::Xor => Value::Int(ai(0) ^ ai(1)),
        ExecOp::Not => Value::Int(!ai(0)),
        ExecOp::Neg => Value::Int(ai(0).wrapping_neg()),
        ExecOp::Min => Value::Int(ai(0).min(ai(1))),
        ExecOp::Max => Value::Int(ai(0).max(ai(1))),
        ExecOp::Abs => Value::Int(ai(0).wrapping_abs()),
        ExecOp::CmpEq => Value::Int(i64::from(ai(0) == ai(1))),
        ExecOp::CmpNe => Value::Int(i64::from(ai(0) != ai(1))),
        ExecOp::CmpLt => Value::Int(i64::from(ai(0) < ai(1))),
        ExecOp::CmpLe => Value::Int(i64::from(ai(0) <= ai(1))),
        ExecOp::Select => {
            if ai(0) != 0 {
                a(1)
            } else {
                a(2)
            }
        }
        ExecOp::Mov => a(0),
        ExecOp::Shl => Value::Int(ai(0).wrapping_shl(sh(1))),
        ExecOp::Shr => Value::Int((ai(0) as u64).wrapping_shr(sh(1)) as i64),
        ExecOp::Sra => Value::Int(ai(0).wrapping_shr(sh(1))),
        ExecOp::Mul => Value::Int(ai(0).wrapping_mul(ai(1))),
        ExecOp::Div => Value::Int(ai(0).checked_div(ai(1)).unwrap_or(0)),
        ExecOp::Rem => Value::Int(ai(0).checked_rem(ai(1)).unwrap_or(0)),
        ExecOp::FAdd => Value::Fp(af(0) + af(1)),
        ExecOp::FSub => Value::Fp(af(0) - af(1)),
        ExecOp::FMul => Value::Fp(af(0) * af(1)),
        ExecOp::FDiv => Value::Fp(af(0) / af(1)),
        ExecOp::FNeg => Value::Fp(-af(0)),
        ExecOp::FAbs => Value::Fp(af(0).abs()),
        ExecOp::FMin => Value::Fp(af(0).min(af(1))),
        ExecOp::FMax => Value::Fp(af(0).max(af(1))),
        ExecOp::FCmpLt => Value::Int(i64::from(af(0) < af(1))),
        ExecOp::ItoF => Value::Fp(ai(0) as f64),
        ExecOp::FtoI => Value::Int(af(0) as i64),
        ExecOp::FMac => Value::Fp(af(0) * af(1) + af(2)),
        ExecOp::FSqrt => Value::Fp(af(0).abs().sqrt()),
        ExecOp::LoadStream => {
            let cursor = exe.payload[i] as usize;
            loads[cursor]
                .get(iter as usize)
                .copied()
                .unwrap_or(Value::Int(0))
        }
        ExecOp::LoadAddr => Value::Int(
            ai(0)
                .wrapping_mul(31)
                .wrapping_add(7)
                .wrapping_add(exe.load_salts[exe.payload[i] as usize]),
        ),
        ExecOp::Store => {
            let value = a(0);
            staged[exe.payload[i] as usize * width + lane] = value;
            value
        }
        ExecOp::Zero => Value::Int(0),
    }
}

/// Evaluates one vector-group instruction across a whole batch with the
/// opcode dispatch hoisted out of the lane loop: one `match` per
/// instruction per batch, then a tight sweep over the `active` lanes in
/// each arm. The sweep visits lanes in ascending iteration order and
/// writes each lane's destination row before the next lane reads, so it
/// is valid both for recurrence-free instructions and for self-recurrences
/// (a distance-d self read finds lane−d already written).
#[inline(always)]
fn sweep(
    exe: &ExecutableLoop,
    frame: &mut Frame,
    i: usize,
    base: u64,
    active: usize,
    width: usize,
) {
    let n = exe.n_slots;
    let mask = frame.mask;
    let dest = exe.dest[i] as usize;
    let ab = exe.arg_base[i] as usize;
    let cnt = exe.arg_base[i + 1] as usize - ab;

    // The lane loop shared by every arm: bind `iter` and the operand
    // reader `a`, compute the arm's value, write the destination slot.
    macro_rules! lanes {
        (|$iter:ident, $a:ident| $value:expr) => {
            for lane in 0..active {
                let $iter = base + lane as u64;
                let value = {
                    let ring = &frame.ring[..];
                    let $a = |j: usize| arg(exe, &frame.init, ring, mask, n, ab, cnt, j, $iter);
                    $value
                };
                frame.ring[(($iter as usize) & mask) * n + dest] = value;
            }
        };
    }
    // Fixed-arity arms preload each operand's (slot, distance) pair once
    // per batch and run a tight sweep with direct `read`s — no per-lane
    // CSR lookups or operand-count checks. A short operand list (trailing
    // operands read `Int(0)`, like the interpreter) falls back to the
    // generic loop.
    macro_rules! t1 {
        (($v0:ident) => $value:expr) => {
            if cnt >= 1 {
                let s0 = exe.arg_src[ab] as usize;
                let d0 = u64::from(exe.arg_dist[ab]);
                for lane in 0..active {
                    let iter = base + lane as u64;
                    let value = {
                        let $v0 = read(&frame.init, &frame.ring, mask, n, s0, d0, iter);
                        $value
                    };
                    frame.ring[((iter as usize) & mask) * n + dest] = value;
                }
            } else {
                lanes!(|iter, a| {
                    let $v0 = a(0);
                    $value
                });
            }
        };
    }
    macro_rules! t2 {
        (($v0:ident, $v1:ident) => $value:expr) => {
            if cnt >= 2 {
                let s0 = exe.arg_src[ab] as usize;
                let d0 = u64::from(exe.arg_dist[ab]);
                let s1 = exe.arg_src[ab + 1] as usize;
                let d1 = u64::from(exe.arg_dist[ab + 1]);
                for lane in 0..active {
                    let iter = base + lane as u64;
                    let value = {
                        let $v0 = read(&frame.init, &frame.ring, mask, n, s0, d0, iter);
                        let $v1 = read(&frame.init, &frame.ring, mask, n, s1, d1, iter);
                        $value
                    };
                    frame.ring[((iter as usize) & mask) * n + dest] = value;
                }
            } else {
                lanes!(|iter, a| {
                    let $v0 = a(0);
                    let $v1 = a(1);
                    $value
                });
            }
        };
    }
    macro_rules! t3 {
        (($v0:ident, $v1:ident, $v2:ident) => $value:expr) => {
            if cnt >= 3 {
                let s0 = exe.arg_src[ab] as usize;
                let d0 = u64::from(exe.arg_dist[ab]);
                let s1 = exe.arg_src[ab + 1] as usize;
                let d1 = u64::from(exe.arg_dist[ab + 1]);
                let s2 = exe.arg_src[ab + 2] as usize;
                let d2 = u64::from(exe.arg_dist[ab + 2]);
                for lane in 0..active {
                    let iter = base + lane as u64;
                    let value = {
                        let $v0 = read(&frame.init, &frame.ring, mask, n, s0, d0, iter);
                        let $v1 = read(&frame.init, &frame.ring, mask, n, s1, d1, iter);
                        let $v2 = read(&frame.init, &frame.ring, mask, n, s2, d2, iter);
                        $value
                    };
                    frame.ring[((iter as usize) & mask) * n + dest] = value;
                }
            } else {
                lanes!(|iter, a| {
                    let $v0 = a(0);
                    let $v1 = a(1);
                    let $v2 = a(2);
                    $value
                });
            }
        };
    }
    macro_rules! i1 {
        (($x:ident) => $e:expr) => {
            t1!((v) => {
                let $x = v.as_int();
                Value::Int($e)
            })
        };
    }
    macro_rules! i2 {
        (($x:ident, $y:ident) => $e:expr) => {
            t2!((v, w) => {
                let $x = v.as_int();
                let $y = w.as_int();
                Value::Int($e)
            })
        };
    }
    macro_rules! f1 {
        (($x:ident) => $e:expr) => {
            t1!((v) => {
                let $x = v.as_fp();
                Value::Fp($e)
            })
        };
    }
    macro_rules! f2 {
        (($x:ident, $y:ident) => $e:expr) => {
            t2!((v, w) => {
                let $x = v.as_fp();
                let $y = w.as_fp();
                Value::Fp($e)
            })
        };
    }

    match exe.ops[i] {
        ExecOp::Add => i2!((x, y) => x.wrapping_add(y)),
        ExecOp::Sub => i2!((x, y) => x.wrapping_sub(y)),
        ExecOp::And => i2!((x, y) => x & y),
        ExecOp::Or => i2!((x, y) => x | y),
        ExecOp::Xor => i2!((x, y) => x ^ y),
        ExecOp::Not => i1!((x) => !x),
        ExecOp::Neg => i1!((x) => x.wrapping_neg()),
        ExecOp::Min => i2!((x, y) => x.min(y)),
        ExecOp::Max => i2!((x, y) => x.max(y)),
        ExecOp::Abs => i1!((x) => x.wrapping_abs()),
        ExecOp::CmpEq => i2!((x, y) => i64::from(x == y)),
        ExecOp::CmpNe => i2!((x, y) => i64::from(x != y)),
        ExecOp::CmpLt => i2!((x, y) => i64::from(x < y)),
        ExecOp::CmpLe => i2!((x, y) => i64::from(x <= y)),
        ExecOp::Select => t3!((c, t, f) => if c.as_int() != 0 { t } else { f }),
        ExecOp::Mov => t1!((v) => v),
        ExecOp::Shl => i2!((x, y) => x.wrapping_shl((y & 63) as u32)),
        ExecOp::Shr => i2!((x, y) => (x as u64).wrapping_shr((y & 63) as u32) as i64),
        ExecOp::Sra => i2!((x, y) => x.wrapping_shr((y & 63) as u32)),
        ExecOp::Mul => i2!((x, y) => x.wrapping_mul(y)),
        ExecOp::Div => i2!((x, y) => x.checked_div(y).unwrap_or(0)),
        ExecOp::Rem => i2!((x, y) => x.checked_rem(y).unwrap_or(0)),
        ExecOp::FAdd => f2!((x, y) => x + y),
        ExecOp::FSub => f2!((x, y) => x - y),
        ExecOp::FMul => f2!((x, y) => x * y),
        ExecOp::FDiv => f2!((x, y) => x / y),
        ExecOp::FNeg => f1!((x) => -x),
        ExecOp::FAbs => f1!((x) => x.abs()),
        ExecOp::FMin => f2!((x, y) => x.min(y)),
        ExecOp::FMax => f2!((x, y) => x.max(y)),
        ExecOp::FCmpLt => t2!((v, w) => Value::Int(i64::from(v.as_fp() < w.as_fp()))),
        ExecOp::ItoF => t1!((v) => Value::Fp(v.as_int() as f64)),
        ExecOp::FtoI => t1!((v) => Value::Int(v.as_fp() as i64)),
        ExecOp::FMac => t3!((x, y, z) => Value::Fp(x.as_fp() * y.as_fp() + z.as_fp())),
        ExecOp::FSqrt => f1!((x) => x.abs().sqrt()),
        ExecOp::LoadStream => {
            // The cursor slice is loop-invariant across the batch; its
            // lifetime comes from `inputs`, not the frame, so the ring
            // write below does not conflict.
            let s: &[Value] = frame.loads[exe.payload[i] as usize];
            for lane in 0..active {
                let iter = base + lane as u64;
                let value = s.get(iter as usize).copied().unwrap_or(Value::Int(0));
                frame.ring[((iter as usize) & mask) * n + dest] = value;
            }
        }
        ExecOp::LoadAddr => {
            let salt = exe.load_salts[exe.payload[i] as usize];
            i1!((x) => x.wrapping_mul(31).wrapping_add(7).wrapping_add(salt))
        }
        ExecOp::Store => {
            // Arity refusal at compile time guarantees a store has an
            // operand; the generic `arg` fallback stays for safety.
            let site = exe.payload[i] as usize;
            if cnt >= 1 {
                let s0 = exe.arg_src[ab] as usize;
                let d0 = u64::from(exe.arg_dist[ab]);
                for lane in 0..active {
                    let iter = base + lane as u64;
                    let value = read(&frame.init, &frame.ring, mask, n, s0, d0, iter);
                    frame.staged[site * width + lane] = value;
                    frame.ring[((iter as usize) & mask) * n + dest] = value;
                }
            } else {
                for lane in 0..active {
                    let iter = base + lane as u64;
                    let value = {
                        let ring = &frame.ring[..];
                        arg(exe, &frame.init, ring, mask, n, ab, cnt, 0, iter)
                    };
                    frame.staged[site * width + lane] = value;
                    frame.ring[((iter as usize) & mask) * n + dest] = value;
                }
            }
        }
        ExecOp::Zero => {
            for lane in 0..active {
                let iter = (base + lane as u64) as usize;
                frame.ring[(iter & mask) * n + dest] = Value::Int(0);
            }
        }
    }
}

/// One iteration at a time: the straight-line instruction stream, then
/// the staged-store commit.
pub(crate) fn run_scalar(exe: &ExecutableLoop, iterations: u64, inputs: &Inputs) -> ExecResult {
    let mut frame = Frame::new(exe, inputs, 1, iterations);
    let n = exe.n_slots;
    let (mask, depth) = (frame.mask, frame.depth);
    debug_assert!(depth > exe.max_dist);
    for iter in 0..iterations {
        let cur = (iter as usize & mask) * n;
        for i in 0..exe.ops.len() {
            let value = eval(
                exe,
                &frame.init,
                &frame.loads,
                &mut frame.staged,
                &frame.ring,
                mask,
                i,
                iter,
                1,
                0,
            );
            frame.ring[cur + exe.dest[i] as usize] = value;
        }
        frame.commit(exe, 1, 0);
    }
    frame.finish(exe, iterations)
}

/// Lane-vectorized batches: `width` iterations per step. Acyclic plan
/// groups dispatch each instruction once and sweep the lanes in the
/// inner loop; recurrence groups run lane-serially. The commit replays
/// lanes iteration-major so store streams match the scalar order.
pub(crate) fn run_lanes(
    exe: &ExecutableLoop,
    iterations: u64,
    inputs: &Inputs,
    width: usize,
) -> ExecResult {
    let mut frame = Frame::new(exe, inputs, width, iterations);
    let n = exe.n_slots;
    let mask = frame.mask;
    debug_assert!(frame.depth >= width + exe.max_dist);
    let mut base = 0u64;
    while base < iterations {
        let active = usize::try_from(iterations - base)
            .unwrap_or(usize::MAX)
            .min(width);
        for group in &exe.lane_plan {
            if group.serial {
                for lane in 0..active {
                    let iter = base + lane as u64;
                    let cur = (iter as usize & mask) * n;
                    for &i in &group.members {
                        let i = i as usize;
                        let value = eval(
                            exe,
                            &frame.init,
                            &frame.loads,
                            &mut frame.staged,
                            &frame.ring,
                            mask,
                            i,
                            iter,
                            width,
                            lane,
                        );
                        frame.ring[cur + exe.dest[i] as usize] = value;
                    }
                }
            } else {
                for &i in &group.members {
                    sweep(exe, &mut frame, i as usize, base, active, width);
                }
            }
        }
        for lane in 0..active {
            frame.commit(exe, width, lane);
        }
        base += active as u64;
    }
    frame.finish(exe, iterations)
}
