//! # LoopVM — a native execution backend for modulo-scheduled loops
//!
//! Every speedup the rest of the workspace reports is *analytic*: the LA
//! cost model's `(SC + trips − 1) · II` formula, fed by a schedule that was
//! never executed. This crate closes that gap. It compiles a loop-body
//! [`Dfg`] — optionally ordered by its [`ModuloSchedule`] — into
//! [`ExecutableLoop`], a compact register-VM bytecode that a host CPU runs
//! at wall-clock speed:
//!
//! * **flat SoA instruction stream** in schedule order: dense opcodes, a
//!   CSR operand bank of `(source slot, iteration distance)` pairs, and a
//!   per-instruction payload word (stream cursor, store site, or address
//!   salt) — no per-iteration allocation, no map lookups;
//! * **preallocated operand ring**: one flat `depth × slots` bank of
//!   [`Value`]s, `depth` rounded to a power of two so loop-carried reads
//!   are a mask instead of a division;
//! * **stream-engine reads resolved to cursors**: each stream-annotated
//!   load is bound to a dense input-slice index at compile time;
//! * a **lane-vectorized mode** ([`ExecutableLoop::run_lanes`]) that maps
//!   LA lanes onto fixed-width software-SIMD batches: acyclic DFG nodes
//!   dispatch their opcode once and sweep `W` iterations in an inner lane
//!   loop (masked tail), while recurrence SCCs fall back to per-lane
//!   serial evaluation — mirroring how the modulo schedule overlaps
//!   stages across iterations.
//!
//! ## Trust and differential model
//!
//! LoopVM is *not* a second specification. `veal_ir::interp` remains the
//! single reference semantics; this backend must reproduce it bit for bit
//! (stores, live-outs, and therefore every golden `semantic_checksum`).
//! Compilation refuses exactly the graphs the interpreter refuses —
//! cyclic distance-0 subgraphs, opaque `Call`/`Cca` ops, and
//! arity-malformed ops with no operands — so the two executors agree on
//! the error surface as well as the value surface. The differential
//! corpus in `tests/` and the `bench_exec` gate hold that line.

mod compile;
mod run;

use std::fmt;

use veal_ir::interp::{ExecResult, Inputs};
use veal_ir::{Dfg, OpId};
use veal_sched::ModuloSchedule;

/// Default lane width for [`ExecutableLoop::run_lanes`]: batches of eight
/// iterations per inner step, matching the widest LA configurations.
pub const DEFAULT_LANES: usize = 8;

/// Why a graph could not be compiled to LoopVM bytecode. Mirrors
/// [`veal_ir::interp::InterpError`] case for case: a graph the
/// interpreter refuses must be refused here too, and vice versa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The distance-0 subgraph is cyclic.
    Cyclic,
    /// The graph contains an op with no executable semantics
    /// (`Call`/`Cca`).
    Opaque(OpId),
    /// An op that reads operands has none (see
    /// [`veal_ir::interp::InterpError::Arity`]).
    Arity(OpId),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Cyclic => write!(f, "distance-0 subgraph is cyclic"),
            CompileError::Opaque(op) => write!(f, "{op} has no executable semantics"),
            CompileError::Arity(op) => write!(f, "{op} reads operands but has none"),
        }
    }
}

impl std::error::Error for CompileError {}

/// LoopVM's dense opcode set: the interpretable subset of
/// [`veal_ir::Opcode`] with loads split by addressing mode and the
/// value-free control ops folded into one `Zero`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum ExecOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Not,
    Neg,
    Min,
    Max,
    Abs,
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    Select,
    Mov,
    Shl,
    Shr,
    Sra,
    Mul,
    Div,
    Rem,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    FAbs,
    FMin,
    FMax,
    FCmpLt,
    ItoF,
    FtoI,
    FMac,
    FSqrt,
    /// Stream-engine load: payload is a cursor into the bound input
    /// slices.
    LoadStream,
    /// Full-form load addressed by a generator: payload indexes the
    /// per-site salt table.
    LoadAddr,
    /// Store: payload is the store site; the value is staged and
    /// committed in interpreter topo order at end of iteration.
    Store,
    /// `LoadImm`/`Br`/`BrCond`/`Ret`: evaluates to `Int(0)`.
    Zero,
}

/// One group of the lane execution plan: a strongly-connected component
/// of the full dependence graph (all distances), in component topological
/// order.
#[derive(Debug, Clone)]
pub(crate) struct LaneGroup {
    /// Instruction indices, in d0-topological order.
    pub members: Vec<u32>,
    /// Multi-member cyclic components carry a recurrence through other
    /// instructions: evaluate each lane serially. Everything else —
    /// trivial components and single-member self-recurrences — dispatches
    /// once and sweeps all lanes in iteration order.
    pub serial: bool,
}

/// A loop compiled to LoopVM bytecode. Immutable after
/// [`ExecutableLoop::compile`]; every run allocates only its ring and
/// staging banks.
#[derive(Debug, Clone)]
pub struct ExecutableLoop {
    /// Node-slot count of the source graph (ring row width).
    pub(crate) n_slots: usize,
    /// Largest loop-carried distance across all edges.
    pub(crate) max_dist: usize,
    /// Dense opcode per instruction, in schedule order.
    pub(crate) ops: Vec<ExecOp>,
    /// Destination ring slot per instruction.
    pub(crate) dest: Vec<u32>,
    /// Payload word per instruction (see [`ExecOp`]).
    pub(crate) payload: Vec<u32>,
    /// CSR operand bank: instruction `i` reads
    /// `arg_src/arg_dist[arg_base[i] .. arg_base[i + 1]]`.
    pub(crate) arg_base: Vec<u32>,
    pub(crate) arg_src: Vec<u32>,
    pub(crate) arg_dist: Vec<u32>,
    /// Stream id per load cursor.
    pub(crate) load_streams: Vec<u16>,
    /// Stream id per store site (`u16::MAX` for un-annotated stores).
    pub(crate) store_streams: Vec<u16>,
    /// Dense output-vector index per store site (sites sharing a stream
    /// share a vector).
    pub(crate) store_slot: Vec<u32>,
    /// Distinct store stream ids, in ascending order (one output vector
    /// each).
    pub(crate) out_streams: Vec<u16>,
    /// Store sites in the interpreter's commit order (`dfg.topo_order()`),
    /// which schedule-order execution must replay per iteration.
    pub(crate) store_commit: Vec<u32>,
    /// Address salt per `LoadAddr` site (`node index · 17`).
    pub(crate) load_salts: Vec<i64>,
    /// Iteration-invariant ring seeds: `(slot, value)` per `Const` node.
    pub(crate) consts: Vec<(u32, i64)>,
    /// Ring slots of `LiveIn` nodes (paired with their `OpId` for input
    /// lookup).
    pub(crate) live_ins: Vec<OpId>,
    /// Live-out nodes, read from the final iteration's ring row.
    pub(crate) live_outs: Vec<OpId>,
    /// Lane execution plan: full-graph SCCs in component topo order.
    pub(crate) lane_plan: Vec<LaneGroup>,
}

impl ExecutableLoop {
    /// Compiles `dfg` to LoopVM bytecode. When a [`ModuloSchedule`] is
    /// given, instructions are emitted in schedule order (ties and
    /// unscheduled ops fall back to node id), which keeps the bytecode
    /// congruent with the accelerator's issue order; without one, plain
    /// topological order is used.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; the refused set matches `veal_ir::interp`.
    pub fn compile(dfg: &Dfg, schedule: Option<&ModuloSchedule>) -> Result<Self, CompileError> {
        compile::compile(dfg, schedule)
    }

    /// Executes the loop for `iterations` iterations, one iteration at a
    /// time, reproducing `veal_ir::interp::interpret` bit for bit.
    #[must_use]
    pub fn run(&self, iterations: u64, inputs: &Inputs) -> ExecResult {
        run::run_scalar(self, iterations, inputs)
    }

    /// Executes the loop in lane-vectorized batches of `width`
    /// iterations (masked tail), reproducing the interpreter bit for
    /// bit. `width` is clamped to at least 1.
    #[must_use]
    pub fn run_lanes(&self, iterations: u64, inputs: &Inputs, width: usize) -> ExecResult {
        run::run_lanes(self, iterations, inputs, width.max(1))
    }

    /// Number of bytecode instructions.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.ops.len()
    }

    /// Split of the lane plan: `(serial, vector)` instruction counts —
    /// how much of the stream runs lane-serially (recurrence components)
    /// versus dispatch-once-sweep-lanes.
    #[must_use]
    pub fn lane_stats(&self) -> (usize, usize) {
        let mut serial = 0;
        let mut vector = 0;
        for g in &self.lane_plan {
            if g.serial {
                serial += g.members.len();
            } else {
                vector += g.members.len();
            }
        }
        (serial, vector)
    }

    /// Approximate footprint of the compiled artifact, for code-cache
    /// accounting.
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.ops.len()
            + 4 * (self.dest.len() + self.payload.len() + self.arg_base.len())
            + 4 * (self.arg_src.len() + self.arg_dist.len())
            + 2 * (self.load_streams.len() + self.store_streams.len())
            + 8 * self.load_salts.len()
            + 12 * self.consts.len()
    }
}
