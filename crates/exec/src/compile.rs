//! Lowering a loop-body [`Dfg`] to LoopVM bytecode.
//!
//! The compiler walks the graph once to refuse what the interpreter
//! refuses (same errors, same first-offender order), then emits the
//! instruction stream in *schedule order*: a Kahn topological sort of the
//! distance-0 subgraph whose tie-break is the op's modulo-schedule time.
//! Any valid d0-topological order computes the same values; following the
//! schedule keeps the bytecode congruent with the accelerator's issue
//! order and exercises the same overlap the lane mode models.
//!
//! Two orders matter and they are *different*:
//!
//! * **evaluation order** (above) only has to respect d0 edges;
//! * **store commit order** must replay the interpreter's — stores to the
//!   same stream push in `dfg.topo_order()` position within each
//!   iteration, so the compiler records every store site's topo position
//!   and the executors stage values and commit them in that order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use veal_ir::interp::reads_operands;
use veal_ir::{Dfg, OpId, Opcode};
use veal_sched::ModuloSchedule;

use crate::{CompileError, ExecOp, ExecutableLoop, LaneGroup};

fn exec_op(op: Opcode) -> ExecOp {
    use Opcode::*;
    match op {
        Add => ExecOp::Add,
        Sub => ExecOp::Sub,
        And => ExecOp::And,
        Or => ExecOp::Or,
        Xor => ExecOp::Xor,
        Not => ExecOp::Not,
        Neg => ExecOp::Neg,
        Min => ExecOp::Min,
        Max => ExecOp::Max,
        Abs => ExecOp::Abs,
        CmpEq => ExecOp::CmpEq,
        CmpNe => ExecOp::CmpNe,
        CmpLt => ExecOp::CmpLt,
        CmpLe => ExecOp::CmpLe,
        Select => ExecOp::Select,
        Mov => ExecOp::Mov,
        Shl => ExecOp::Shl,
        Shr => ExecOp::Shr,
        Sra => ExecOp::Sra,
        Mul => ExecOp::Mul,
        Div => ExecOp::Div,
        Rem => ExecOp::Rem,
        FAdd => ExecOp::FAdd,
        FSub => ExecOp::FSub,
        FMul => ExecOp::FMul,
        FDiv => ExecOp::FDiv,
        FNeg => ExecOp::FNeg,
        FAbs => ExecOp::FAbs,
        FMin => ExecOp::FMin,
        FMax => ExecOp::FMax,
        FCmpLt => ExecOp::FCmpLt,
        ItoF => ExecOp::ItoF,
        FtoI => ExecOp::FtoI,
        FMac => ExecOp::FMac,
        FSqrt => ExecOp::FSqrt,
        Store => ExecOp::Store,
        LoadImm | Br | BrCond | Ret => ExecOp::Zero,
        // Refused before emission; Load is split by addressing mode at
        // the emission site.
        Load | Call | Cca => unreachable!("handled before exec_op"),
    }
}

/// Emission order: Kahn over distance-0 edges among live op nodes, the
/// ready heap keyed by `(schedule time, node id)`. Unscheduled ops sink
/// to the end of their ready window but still respect dependences.
fn schedule_order(dfg: &Dfg, schedule: Option<&ModuloSchedule>) -> Vec<OpId> {
    let n = dfg.len();
    let is_instr =
        |id: OpId| -> bool { !dfg.node(id).is_dead() && dfg.node(id).opcode().is_some() };
    let mut indeg = vec![0u32; n];
    for e in dfg.edges() {
        if e.distance == 0 && is_instr(e.src) && is_instr(e.dst) {
            indeg[e.dst.index()] += 1;
        }
    }
    let prio = |id: OpId| -> i64 { schedule.and_then(|s| s.time(id)).unwrap_or(i64::MAX) };
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
    for (i, &deg) in indeg.iter().enumerate() {
        let id = OpId::new(i);
        if is_instr(id) && deg == 0 {
            heap.push(Reverse((prio(id), i)));
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((_, i))) = heap.pop() {
        let v = OpId::new(i);
        order.push(v);
        for e in dfg.succ_edges(v) {
            if e.distance == 0 && is_instr(e.dst) {
                indeg[e.dst.index()] -= 1;
                if indeg[e.dst.index()] == 0 {
                    heap.push(Reverse((prio(e.dst), e.dst.index())));
                }
            }
        }
    }
    order
}

/// Lane plan: strongly-connected components of the *full* dependence
/// graph (all distances), topologically ordered over the component DAG.
/// A trivial component has no recurrence — its lanes are independent
/// given earlier groups — and a single-member self-recurrence sweeps in
/// lane order; only a multi-member cycle must run each lane serially.
/// Cross-component edges of any distance are acyclic by construction, so
/// "every group before me has finished all lanes" is exactly the
/// guarantee a lane read needs.
fn lane_plan(dfg: &Dfg, instr_index: &[u32]) -> Vec<LaneGroup> {
    let cond = dfg.condensation();
    let nc = cond.num_comps();
    let mut indeg = vec![0u32; nc];
    for e in dfg.edges() {
        let (Some(cs), Some(cd)) = (cond.comp_of(e.src), cond.comp_of(e.dst)) else {
            continue;
        };
        if cs != cd {
            indeg[cd] += 1;
        }
    }
    let mut heap: BinaryHeap<Reverse<usize>> =
        (0..nc).filter(|&c| indeg[c] == 0).map(Reverse).collect();
    let mut plan = Vec::new();
    let mut emitted = vec![false; nc];
    while let Some(Reverse(c)) = heap.pop() {
        if emitted[c] {
            continue;
        }
        emitted[c] = true;
        let mut members: Vec<u32> = cond.comps()[c]
            .iter()
            .filter(|&&id| instr_index[id.index()] != u32::MAX)
            .map(|&id| instr_index[id.index()])
            .collect();
        if !members.is_empty() {
            // Within a lane, members must evaluate in a d0-valid order;
            // the global instruction order is one.
            members.sort_unstable();
            // A single-member recurrence (a self-edge, e.g. an
            // accumulator) still sweeps: the sweep visits lanes in
            // ascending iteration order and writes each lane's ring row
            // before the next lane reads, so a distance-d self read
            // always finds lane−d already computed. Only a cycle
            // *through other instructions* forces lane-serial order.
            let serial = cond.is_cyclic(c) && members.len() > 1;
            plan.push(LaneGroup { members, serial });
        }
        for &id in &cond.comps()[c] {
            for e in dfg.succ_edges(id) {
                if let Some(cd) = cond.comp_of(e.dst) {
                    if cd != c {
                        indeg[cd] -= 1;
                        if indeg[cd] == 0 {
                            heap.push(Reverse(cd));
                        }
                    }
                }
            }
        }
    }
    plan
}

pub(crate) fn compile(
    dfg: &Dfg,
    schedule: Option<&ModuloSchedule>,
) -> Result<ExecutableLoop, CompileError> {
    let topo = dfg.topo_order().map_err(|_| CompileError::Cyclic)?;

    // Refuse what the interpreter refuses, at the same first offender:
    // topo order is its evaluation order, and per node the opaque check
    // precedes the arity check.
    for &v in &topo {
        let Some(op) = dfg.node(v).opcode() else {
            continue;
        };
        if matches!(op, Opcode::Call | Opcode::Cca) {
            return Err(CompileError::Opaque(v));
        }
        if reads_operands(dfg, v, op) && dfg.pred_edges(v).next().is_none() {
            return Err(CompileError::Arity(v));
        }
    }

    // Interpreter commit position per node: stores to one stream push in
    // this order within an iteration.
    let n = dfg.len();
    let mut topo_pos = vec![u32::MAX; n];
    for (pos, &v) in topo.iter().enumerate() {
        topo_pos[v.index()] = pos as u32;
    }

    let order = schedule_order(dfg, schedule);
    let max_dist = dfg.edges().iter().map(|e| e.distance).max().unwrap_or(0) as usize;

    let mut exe = ExecutableLoop {
        n_slots: n,
        max_dist,
        ops: Vec::with_capacity(order.len()),
        dest: Vec::with_capacity(order.len()),
        payload: Vec::with_capacity(order.len()),
        arg_base: Vec::with_capacity(order.len() + 1),
        arg_src: Vec::new(),
        arg_dist: Vec::new(),
        load_streams: Vec::new(),
        store_streams: Vec::new(),
        store_slot: Vec::new(),
        out_streams: Vec::new(),
        store_commit: Vec::new(),
        load_salts: Vec::new(),
        consts: Vec::new(),
        live_ins: Vec::new(),
        live_outs: Vec::new(),
        lane_plan: Vec::new(),
    };

    // instr_index[node] = instruction position, u32::MAX for pseudo nodes.
    let mut instr_index = vec![u32::MAX; n];
    // (interpreter topo position, site) per store, for the commit order.
    let mut store_sites: Vec<(u32, u32)> = Vec::new();

    for &v in &order {
        let op = dfg.node(v).opcode().expect("order holds op nodes only");
        instr_index[v.index()] = exe.ops.len() as u32;
        exe.arg_base.push(exe.arg_src.len() as u32);
        for e in dfg.pred_edges(v) {
            exe.arg_src.push(e.src.index() as u32);
            exe.arg_dist.push(e.distance);
        }
        let (eop, payload) = match op {
            Opcode::Load => {
                if let Some(s) = dfg.node(v).stream {
                    exe.load_streams.push(s);
                    (ExecOp::LoadStream, exe.load_streams.len() as u32 - 1)
                } else {
                    exe.load_salts.push(v.index() as i64 * 17);
                    (ExecOp::LoadAddr, exe.load_salts.len() as u32 - 1)
                }
            }
            Opcode::Store => {
                let site = exe.store_streams.len() as u32;
                exe.store_streams
                    .push(dfg.node(v).stream.unwrap_or(u16::MAX));
                store_sites.push((topo_pos[v.index()], site));
                (ExecOp::Store, site)
            }
            other => (exec_op(other), 0),
        };
        exe.ops.push(eop);
        exe.dest.push(v.index() as u32);
        exe.payload.push(payload);
    }
    exe.arg_base.push(exe.arg_src.len() as u32);

    // Dense output vectors: one per distinct store stream, commit order by
    // interpreter topo position.
    exe.out_streams = exe.store_streams.clone();
    exe.out_streams.sort_unstable();
    exe.out_streams.dedup();
    exe.store_slot = exe
        .store_streams
        .iter()
        .map(|s| exe.out_streams.binary_search(s).expect("dense stream") as u32)
        .collect();
    store_sites.sort_unstable();
    exe.store_commit = store_sites.into_iter().map(|(_, site)| site).collect();

    for id in dfg.const_ids() {
        if let veal_ir::dfg::NodeKind::Const(c) = dfg.node(id).kind {
            exe.consts.push((id.index() as u32, c));
        }
    }
    exe.live_ins = dfg.live_in_ids().collect();
    exe.live_outs = dfg.live_out_ids().collect();
    exe.lane_plan = lane_plan(dfg, &instr_index);
    Ok(exe)
}
