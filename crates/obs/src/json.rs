//! A minimal, zero-dependency JSON reader for the trace vocabulary.
//!
//! The sinks in this crate *write* JSON by hand (fixed field order, no
//! floats, no escapes beyond the JSON-mandatory set), and this module reads
//! that same dialect back: objects, arrays, strings, unsigned integers, and
//! booleans. It is deliberately strict — anything outside the dialect is an
//! error, which is exactly what the schema validator wants.

use std::fmt;

/// A parsed JSON value (the subset the trace format uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// An object, with fields in source order.
    Object(Vec<(String, JsonValue)>),
    /// An array.
    Array(Vec<JsonValue>),
    /// A string.
    Str(String),
    /// An unsigned integer (the trace emits no floats or negatives).
    Num(u64),
    /// A boolean.
    Bool(bool),
}

impl JsonValue {
    /// Looks up a field of an object.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why a JSON text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            msg: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, msg: &'static str) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, msg })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_keyword(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, b"false", JsonValue::Bool(false)),
        _ => Err(JsonError {
            at: *pos,
            msg: "expected a value",
        }),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &[u8],
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            msg: "unknown keyword",
        })
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "unsupported escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(JsonError {
                    at: *pos,
                    msg: "raw control character in string",
                })
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unchanged; the
                // input is a &str so boundaries are already valid.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
                        at: start,
                        msg: "invalid utf-8",
                    })?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos < bytes.len() && matches!(bytes[*pos], b'.' | b'e' | b'E' | b'-' | b'+') {
        return Err(JsonError {
            at: *pos,
            msg: "only unsigned integers are supported",
        });
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(JsonValue::Num)
        .ok_or(JsonError {
            at: start,
            msg: "number out of range",
        })
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                // The writer never emits other control characters, but be
                // total: drop to the escape the reader understands.
                out.push_str("\\n");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_trace_dialect() {
        let v = parse(r#"{"ev":"x","key":3,"ok":true,"xs":[1,2],"s":"a\"b"}"#).unwrap();
        assert_eq!(v.field("ev").unwrap().as_str(), Some("x"));
        assert_eq!(v.field("key").unwrap().as_u64(), Some(3));
        assert_eq!(v.field("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.field("xs"),
            Some(&JsonValue::Array(vec![
                JsonValue::Num(1),
                JsonValue::Num(2)
            ]))
        );
        assert_eq!(v.field("s").unwrap().as_str(), Some("a\"b"));
    }

    #[test]
    fn rejects_trailing_garbage_floats_and_negatives() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a":1.5}"#).is_err());
        assert!(parse(r#"{"a":-1}"#).is_err());
        assert!(parse("{").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn u64_extremes_round_trip() {
        let v = parse(&format!("{{\"a\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.field("a").unwrap().as_u64(), Some(u64::MAX));
    }
}
