//! Trace sinks and the cheap handle the instrumented code holds.
//!
//! The hot path carries a [`Trace`] handle. When tracing is disabled the
//! handle is a `None` — [`Trace::emit`] never runs its closure, and
//! [`Trace::timer`] never reads the clock — so instrumentation with the
//! default [`NullSink`] compiles down to a branch on an `Option`.

use crate::event::Event;
use crate::metrics::Histogram;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A consumer of trace events.
///
/// Implementations must be `Send + Sync`: the sweep engine shares one sink
/// across worker threads. Emission order across threads is unspecified;
/// byte-identical traces are only guaranteed single-threaded
/// (`VEAL_THREADS=1`).
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes any buffered output.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// The no-op sink. [`Trace::null`] never even constructs events, so this
/// type only exists for call sites that want an explicit `Arc<dyn
/// TraceSink>` that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// A bounded in-memory buffer keeping the most recent events.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// Creates a ring keeping at most `cap` events (`cap` ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// The buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Serializes events as JSON Lines to any writer.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::to_writer(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn to_writer(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, event: &Event) {
        let line = event.to_json();
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // A full disk mid-trace must not abort the run being observed;
        // the final flush() reports the failure.
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }

    fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

/// A `Write` target backed by a shared byte buffer, for capturing a
/// [`JsonlSink`]'s output in memory (tests, `vealc stats` round-trips).
#[derive(Debug, Default, Clone)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// Copies the bytes written so far.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The handle instrumented code carries.
///
/// Cloning is cheap (an `Option<Arc>`); the disabled handle is the
/// default and costs one branch per instrumentation point.
#[derive(Clone, Default)]
pub struct Trace {
    sink: Option<Arc<dyn TraceSink>>,
}

impl Trace {
    /// The disabled handle: no events are constructed, no clocks read.
    #[must_use]
    pub fn null() -> Self {
        Trace { sink: None }
    }

    /// A handle feeding `sink`.
    #[must_use]
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Trace { sink: Some(sink) }
    }

    /// Whether events will actually be consumed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event. The closure only runs when a sink is installed, so
    /// callers may allocate freely inside it.
    pub fn emit(&self, event: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.emit(&event());
        }
    }

    /// Starts a scoped wall-clock timer that records into `hist` (in
    /// nanoseconds) when dropped. With the null handle the clock is never
    /// read.
    pub fn timer(&self, hist: &'static Histogram) -> ScopedTimer {
        ScopedTimer {
            start: self.sink.is_some().then(|| (Instant::now(), hist)),
        }
    }

    /// Flushes the underlying sink, if any.
    pub fn flush(&self) -> io::Result<()> {
        match &self.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// A scoped wall-clock timer; see [`Trace::timer`].
#[must_use = "the timer records on drop; binding it to _ stops it immediately"]
pub struct ScopedTimer {
    start: Option<(Instant, &'static Histogram)>,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_jsonl;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let ring = RingSink::new(2);
        for key in 0..4 {
            ring.emit(&Event::CacheHit { key });
        }
        assert_eq!(
            ring.events(),
            vec![Event::CacheHit { key: 2 }, Event::CacheHit { key: 3 }]
        );
    }

    #[test]
    fn jsonl_round_trips_through_a_shared_buffer() {
        let buf = SharedBuf::new();
        let trace = Trace::new(Arc::new(JsonlSink::to_writer(buf.clone())));
        trace.emit(|| Event::MemoMiss { key: 7 });
        trace.emit(|| Event::PointEnd { index: 1 });
        trace.flush().unwrap();
        let text = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(
            parse_jsonl(&text).unwrap(),
            vec![Event::MemoMiss { key: 7 }, Event::PointEnd { index: 1 }]
        );
    }

    #[test]
    fn null_trace_never_constructs_events() {
        let trace = Trace::null();
        assert!(!trace.is_enabled());
        trace.emit(|| unreachable!("closure must not run with the null handle"));
        trace.flush().unwrap();
    }
}
