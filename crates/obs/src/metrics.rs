//! A process-global registry of named monotonic counters and log2
//! histograms.
//!
//! Metrics answer "how much / how long" questions that are allowed to be
//! nondeterministic (wall-clock durations, cache hit rates under parallel
//! sweeps), so they live *outside* the deterministic event stream. The
//! snapshot is still reproducibility-friendly: names are sorted and
//! histogram bins are fixed, so two snapshots of identical activity are
//! identical JSON.
//!
//! Handles are `&'static` and lock-free to touch: a counter bump is one
//! relaxed atomic add, cheap enough to stay on even when tracing is off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter (saturating).
    pub fn add(&self, n: u64) {
        // fetch_update is a CAS loop, but saturation only matters at
        // u64::MAX which no real workload reaches; a plain wrapping add
        // would be indistinguishable in practice. Keep it simple:
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `b` (1..31)
/// holds values with `b = 64 - leading_zeros(v)` clamped to [`BUCKETS`]−1,
/// i.e. values in `[2^(b-1), 2^b)`.
pub const BUCKETS: usize = 32;

/// A fixed-bin log2 histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping at u64).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// An upper bound on the `q`-quantile sample (`q` in `[0, 1]`),
    /// resolved to the log2 bucket boundary: the returned value is the
    /// inclusive upper edge (`2^b − 1`) of the first bucket whose
    /// cumulative count reaches rank `ceil(q × count)`. Returns 0 when no
    /// samples were recorded. Bucket resolution means the bound can
    /// overshoot the true quantile by at most 2×.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, n) in self.buckets().iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds
                // zeros, and the last bucket is open-ended.
                return if b == 0 {
                    0
                } else if b == BUCKETS - 1 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
            }
        }
        u64::MAX
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Returns the process-global counter named `name`, creating it on first
/// use. The handle is `'static`; cache it in a `OnceLock` at hot call
/// sites to skip the registry lock.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::default())))
}

/// Returns the process-global histogram named `name`, creating it on
/// first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
}

/// Serializes every registered metric as deterministic JSON: names
/// sorted, histogram buckets in index order, non-zero buckets only.
#[must_use]
pub fn snapshot_json() -> String {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\"counters\":{");
    for (i, (name, c)) in reg.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(name);
        out.push_str("\":");
        out.push_str(&c.get().to_string());
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in reg.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(name);
        out.push_str("\":{\"count\":");
        out.push_str(&h.count().to_string());
        out.push_str(",\"sum\":");
        out.push_str(&h.sum().to_string());
        out.push_str(",\"buckets\":{");
        let mut first = true;
        for (b, n) in h.buckets().iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            out.push('"');
            out.push_str(&b.to_string());
            out.push_str("\":");
            out.push_str(&n.to_string());
            first = false;
        }
        out.push_str("}}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(1 << 40), BUCKETS - 1);
    }

    #[test]
    fn registry_returns_stable_handles_and_valid_json() {
        let c = counter("test.registry.counter");
        c.add(41);
        c.inc();
        assert_eq!(counter("test.registry.counter").get(), 42);

        let h = histogram("test.registry.hist");
        h.record(0);
        h.record(5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[bucket_of(5)], 1);

        let snap = snapshot_json();
        assert_eq!(h.value_at_quantile(0.0), 0, "rank 1 is the zero sample");
        assert_eq!(h.value_at_quantile(1.0), (1 << bucket_of(5)) - 1);

        let v = json::parse(&snap).expect("snapshot must be valid trace-dialect JSON");
        assert_eq!(
            v.field("counters")
                .and_then(|c| c.field("test.registry.counter"))
                .and_then(json::JsonValue::as_u64),
            Some(42)
        );
        assert!(snap.contains("\"test.registry.hist\":{\"count\":2,\"sum\":5"));
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_edges() {
        let h = Histogram::default();
        assert_eq!(h.value_at_quantile(0.5), 0, "empty histogram");
        for v in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.record(v);
        }
        // Ranks 1..=9 land in bucket 2 (values in [2, 4)) → edge 3; the
        // p99/p100 rank is the 1000 sample → its bucket edge 1023.
        assert_eq!(h.value_at_quantile(0.50), 3);
        assert_eq!(h.value_at_quantile(0.90), 3);
        assert_eq!(h.value_at_quantile(0.99), 1023);
        assert_eq!(h.value_at_quantile(1.0), 1023);
        h.record(u64::MAX);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX, "open-ended top bucket");
    }
}
