//! Zero-dependency observability for the VEAL stack.
//!
//! Three layers, strictly read-only with respect to the abstract cost
//! model (observability reads the [`veal_ir::CostMeter`], never feeds it):
//!
//! 1. **Structured events** ([`event`]) — a typed, deterministic trace
//!    vocabulary covering translations (with per-phase
//!    [`veal_ir::PhaseBreakdown`] deltas), hint verdicts, quarantine,
//!    watchdog aborts, cache/memo hits and misses, and sweep points.
//! 2. **Sinks** ([`sink`]) — [`NullSink`] (the free default), [`RingSink`]
//!    (bounded in-memory), and [`JsonlSink`] (JSON Lines writer), behind
//!    the cheap [`Trace`] handle instrumented code carries.
//! 3. **Metrics** ([`metrics`]) — process-global named counters and
//!    log2-bucketed histograms (wall-clock lives here, never in events),
//!    snapshotable as sorted, deterministic JSON.
//!
//! Determinism rules: events carry only abstract, input-derived fields;
//! with one worker thread, same-seed runs serialize to byte-identical
//! JSONL. [`event::parse_jsonl`] is the schema validator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{parse_jsonl, Event, HintKind, TraceError, TranslateStatus};
pub use metrics::{counter, histogram, snapshot_json, Counter, Histogram};
pub use sink::{JsonlSink, NullSink, RingSink, ScopedTimer, SharedBuf, Trace, TraceSink};
