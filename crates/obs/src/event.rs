//! The structured trace vocabulary.
//!
//! Every observable step of the VM and the sweep engine is one typed
//! [`Event`]. Events are **deterministic**: they carry abstract costs,
//! verdicts, and identities — never wall-clock time, thread ids, or
//! addresses — so two runs over the same inputs (same seed, one worker
//! thread) serialize to byte-identical JSONL. Wall-clock profiling lives in
//! the [`crate::metrics`] registry instead.
//!
//! The JSONL encoding is hand-written with a fixed field order per
//! variant, and [`Event::parse_line`] reads exactly that dialect back,
//! strictly — unknown event names, missing fields, or mistyped fields are
//! errors, which makes the parser double as the schema validator used by
//! `vealc stats` and the CI obs-smoke job.

use crate::json::{self, JsonValue};
use std::fmt;
use veal_ir::meter::ALL_PHASES;
use veal_ir::{Phase, PhaseBreakdown};

/// How a charged translation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateStatus {
    /// The loop mapped onto the accelerator.
    Mapped,
    /// Translation aborted; the loop runs on the CPU.
    Failed,
    /// The budget watchdog abandoned the translation mid-flight.
    WatchdogAbort,
}

impl TranslateStatus {
    /// Wire name of the status.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TranslateStatus::Mapped => "mapped",
            TranslateStatus::Failed => "failed",
            TranslateStatus::WatchdogAbort => "watchdog-abort",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "mapped" => Some(TranslateStatus::Mapped),
            "failed" => Some(TranslateStatus::Failed),
            "watchdog-abort" => Some(TranslateStatus::WatchdogAbort),
            _ => None,
        }
    }
}

/// Which hint kind degraded to its dynamic path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintKind {
    /// The scheduling-priority hint.
    Priority,
    /// The CCA-subgraph hint.
    Cca,
}

impl HintKind {
    /// Wire name of the kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HintKind::Priority => "priority",
            HintKind::Cca => "cca",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "priority" => Some(HintKind::Priority),
            "cca" => Some(HintKind::Cca),
            _ => None,
        }
    }
}

/// One structured trace event.
///
/// `key` is the VM session's invocation key for the loop; `loop_hash` is
/// the loop body's content hash (stable across sessions and processes).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A code-cache miss began a (possibly memoized) translation.
    TranslateStart {
        /// Invocation key.
        key: u64,
        /// [`veal_ir::LoopBody::content_hash`] of the body.
        loop_hash: u64,
    },
    /// A translation was charged to the session (fresh or memo replay).
    TranslateEnd {
        /// Invocation key.
        key: u64,
        /// How it ended.
        status: TranslateStatus,
        /// Abstract units charged (equals `breakdown` total).
        units: u64,
        /// Hint validations performed.
        checks: u64,
        /// Whether at least one hint was rejected.
        degraded: bool,
        /// Per-phase abstract instruction counts charged.
        breakdown: PhaseBreakdown,
    },
    /// A hint failed validation and the step degraded to its dynamic path.
    HintDegrade {
        /// Invocation key.
        key: u64,
        /// Which hint kind failed.
        kind: HintKind,
        /// Human-readable validator verdict.
        reason: String,
    },
    /// Repeated hint failures quarantined the loop's hints.
    Quarantine {
        /// Invocation key.
        key: u64,
    },
    /// New hints (a different fingerprint) lifted a loop's quarantine.
    QuarantineLift {
        /// Invocation key.
        key: u64,
    },
    /// The translation budget watchdog abandoned a translation.
    WatchdogAbort {
        /// Invocation key.
        key: u64,
        /// The budget, in abstract units.
        cap: u64,
        /// Units actually charged (the phase-ordered prefix).
        paid: u64,
    },
    /// The code cache answered an invocation.
    CacheHit {
        /// Invocation key.
        key: u64,
    },
    /// A permanently rejected loop was skipped at zero cost.
    PinnedSkip {
        /// Invocation key.
        key: u64,
    },
    /// The shared translation memo answered a code-cache miss.
    MemoHit {
        /// Invocation key.
        key: u64,
    },
    /// The memo missed; a fresh translation was performed and published.
    MemoMiss {
        /// Invocation key.
        key: u64,
    },
    /// A sweep point began evaluating.
    PointStart {
        /// Index of the point in the sweep's input order.
        index: u64,
    },
    /// A sweep point finished evaluating.
    PointEnd {
        /// Index of the point in the sweep's input order.
        index: u64,
    },
    /// Warm state was restored from a snapshot.
    SnapshotRestore {
        /// Entries that entered the live stores.
        restored: u64,
        /// Sections skipped for checksum damage or unknown tags.
        salvaged: u64,
        /// Sections that decoded but failed re-validation.
        rejected: u64,
    },
    /// A warm-state checkpoint was written to disk.
    CheckpointWrite {
        /// Snapshot size in bytes.
        bytes: u64,
        /// Write attempts beyond the first (bounded retry on I/O failure).
        retries: u64,
    },
    /// The network reactor accepted a client connection.
    ConnOpen {
        /// Reactor-assigned connection slot (dense, reused after close).
        conn: u64,
    },
    /// A client connection closed (by either side, or by idle eviction).
    ConnClose {
        /// Reactor-assigned connection slot.
        conn: u64,
        /// Well-formed frames the connection delivered over its lifetime.
        frames: u64,
    },
    /// An inbound wire frame was rejected (bad checksum, unknown tag, or a
    /// payload that failed decode/verification); the connection survives.
    FrameReject {
        /// Reactor-assigned connection slot.
        conn: u64,
        /// Validator verdict, human-readable.
        reason: String,
    },
}

impl Event {
    /// The event's wire name (the `"ev"` field).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::TranslateStart { .. } => "translate_start",
            Event::TranslateEnd { .. } => "translate_end",
            Event::HintDegrade { .. } => "hint_degrade",
            Event::Quarantine { .. } => "quarantine",
            Event::QuarantineLift { .. } => "quarantine_lift",
            Event::WatchdogAbort { .. } => "watchdog_abort",
            Event::CacheHit { .. } => "cache_hit",
            Event::PinnedSkip { .. } => "pinned_skip",
            Event::MemoHit { .. } => "memo_hit",
            Event::MemoMiss { .. } => "memo_miss",
            Event::PointStart { .. } => "point_start",
            Event::PointEnd { .. } => "point_end",
            Event::SnapshotRestore { .. } => "snapshot_restore",
            Event::CheckpointWrite { .. } => "checkpoint_write",
            Event::ConnOpen { .. } => "conn_open",
            Event::ConnClose { .. } => "conn_close",
            Event::FrameReject { .. } => "frame_reject",
        }
    }

    /// Serializes the event as one JSON line (no trailing newline).
    ///
    /// Field order is fixed per variant and breakdowns list non-zero
    /// phases in [`ALL_PHASES`] order, so serialization is deterministic.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"ev\":\"");
        out.push_str(self.name());
        out.push('"');
        match self {
            Event::TranslateStart { key, loop_hash } => {
                push_num(&mut out, "key", *key);
                push_hash(&mut out, "loop_hash", *loop_hash);
            }
            Event::TranslateEnd {
                key,
                status,
                units,
                checks,
                degraded,
                breakdown,
            } => {
                push_num(&mut out, "key", *key);
                push_str(&mut out, "status", status.name());
                push_num(&mut out, "units", *units);
                push_num(&mut out, "checks", *checks);
                push_bool(&mut out, "degraded", *degraded);
                push_breakdown(&mut out, breakdown);
            }
            Event::HintDegrade { key, kind, reason } => {
                push_num(&mut out, "key", *key);
                push_str(&mut out, "kind", kind.name());
                push_str(&mut out, "reason", reason);
            }
            Event::Quarantine { key }
            | Event::QuarantineLift { key }
            | Event::CacheHit { key }
            | Event::PinnedSkip { key }
            | Event::MemoHit { key }
            | Event::MemoMiss { key } => {
                push_num(&mut out, "key", *key);
            }
            Event::WatchdogAbort { key, cap, paid } => {
                push_num(&mut out, "key", *key);
                push_num(&mut out, "cap", *cap);
                push_num(&mut out, "paid", *paid);
            }
            Event::PointStart { index } | Event::PointEnd { index } => {
                push_num(&mut out, "index", *index);
            }
            Event::SnapshotRestore {
                restored,
                salvaged,
                rejected,
            } => {
                push_num(&mut out, "restored", *restored);
                push_num(&mut out, "salvaged", *salvaged);
                push_num(&mut out, "rejected", *rejected);
            }
            Event::CheckpointWrite { bytes, retries } => {
                push_num(&mut out, "bytes", *bytes);
                push_num(&mut out, "retries", *retries);
            }
            Event::ConnOpen { conn } => {
                push_num(&mut out, "conn", *conn);
            }
            Event::ConnClose { conn, frames } => {
                push_num(&mut out, "conn", *conn);
                push_num(&mut out, "frames", *frames);
            }
            Event::FrameReject { conn, reason } => {
                push_num(&mut out, "conn", *conn);
                push_str(&mut out, "reason", reason);
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line back into an event, strictly validating the
    /// schema: the event name must be known and every required field must
    /// be present with the right type.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let ev = v
            .field("ev")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"ev\" field")?;
        let key = || -> Result<u64, String> { num_field(&v, "key") };
        match ev {
            "translate_start" => Ok(Event::TranslateStart {
                key: key()?,
                loop_hash: hash_field(&v, "loop_hash")?,
            }),
            "translate_end" => {
                let status_name = str_field(&v, "status")?;
                let status = TranslateStatus::from_name(status_name)
                    .ok_or_else(|| format!("unknown status {status_name:?}"))?;
                let breakdown = breakdown_field(&v)?;
                let units = num_field(&v, "units")?;
                if units != breakdown.total() {
                    return Err(format!(
                        "units {units} disagree with breakdown total {}",
                        breakdown.total()
                    ));
                }
                Ok(Event::TranslateEnd {
                    key: key()?,
                    status,
                    units,
                    checks: num_field(&v, "checks")?,
                    degraded: bool_field(&v, "degraded")?,
                    breakdown,
                })
            }
            "hint_degrade" => {
                let kind_name = str_field(&v, "kind")?;
                Ok(Event::HintDegrade {
                    key: key()?,
                    kind: HintKind::from_name(kind_name)
                        .ok_or_else(|| format!("unknown hint kind {kind_name:?}"))?,
                    reason: str_field(&v, "reason")?.to_string(),
                })
            }
            "quarantine" => Ok(Event::Quarantine { key: key()? }),
            "quarantine_lift" => Ok(Event::QuarantineLift { key: key()? }),
            "watchdog_abort" => Ok(Event::WatchdogAbort {
                key: key()?,
                cap: num_field(&v, "cap")?,
                paid: num_field(&v, "paid")?,
            }),
            "cache_hit" => Ok(Event::CacheHit { key: key()? }),
            "pinned_skip" => Ok(Event::PinnedSkip { key: key()? }),
            "memo_hit" => Ok(Event::MemoHit { key: key()? }),
            "memo_miss" => Ok(Event::MemoMiss { key: key()? }),
            "point_start" => Ok(Event::PointStart {
                index: num_field(&v, "index")?,
            }),
            "point_end" => Ok(Event::PointEnd {
                index: num_field(&v, "index")?,
            }),
            "snapshot_restore" => Ok(Event::SnapshotRestore {
                restored: num_field(&v, "restored")?,
                salvaged: num_field(&v, "salvaged")?,
                rejected: num_field(&v, "rejected")?,
            }),
            "checkpoint_write" => Ok(Event::CheckpointWrite {
                bytes: num_field(&v, "bytes")?,
                retries: num_field(&v, "retries")?,
            }),
            "conn_open" => Ok(Event::ConnOpen {
                conn: num_field(&v, "conn")?,
            }),
            "conn_close" => Ok(Event::ConnClose {
                conn: num_field(&v, "conn")?,
                frames: num_field(&v, "frames")?,
            }),
            "frame_reject" => Ok(Event::FrameReject {
                conn: num_field(&v, "conn")?,
                reason: str_field(&v, "reason")?.to_string(),
            }),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

fn push_num(out: &mut String, name: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_hash(out: &mut String, name: &str, value: u64) {
    // Hashes are full-width u64s; emit them as hex strings so consumers
    // that read JSON numbers as f64 cannot silently lose precision.
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":\"");
    out.push_str(&format!("{value:#018x}"));
    out.push('"');
}

fn push_str(out: &mut String, name: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    json::write_escaped(out, value);
}

fn push_bool(out: &mut String, name: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

fn push_breakdown(out: &mut String, breakdown: &PhaseBreakdown) {
    out.push_str(",\"breakdown\":{");
    let mut first = true;
    for &p in ALL_PHASES {
        let c = breakdown.get(p);
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        out.push('"');
        out.push_str(p.name());
        out.push_str("\":");
        out.push_str(&c.to_string());
        first = false;
    }
    out.push('}');
}

fn num_field(v: &JsonValue, name: &str) -> Result<u64, String> {
    v.field(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or mistyped field {name:?}"))
}

fn str_field<'a>(v: &'a JsonValue, name: &str) -> Result<&'a str, String> {
    v.field(name)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or mistyped field {name:?}"))
}

fn bool_field(v: &JsonValue, name: &str) -> Result<bool, String> {
    v.field(name)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing or mistyped field {name:?}"))
}

fn hash_field(v: &JsonValue, name: &str) -> Result<u64, String> {
    let s = str_field(v, name)?;
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("field {name:?} is not a 0x-prefixed hash"))?;
    u64::from_str_radix(hex, 16).map_err(|_| format!("field {name:?} is not a valid hash"))
}

fn breakdown_field(v: &JsonValue) -> Result<PhaseBreakdown, String> {
    let Some(JsonValue::Object(fields)) = v.field("breakdown") else {
        return Err("missing or mistyped field \"breakdown\"".into());
    };
    let mut out = PhaseBreakdown::default();
    for (name, count) in fields {
        let phase = Phase::from_name(name).ok_or_else(|| format!("unknown phase {name:?}"))?;
        let count = count
            .as_u64()
            .ok_or_else(|| format!("phase {name:?} count is not a number"))?;
        if out.get(phase) != 0 {
            return Err(format!("phase {name:?} listed twice"));
        }
        out.set(phase, count);
    }
    Ok(out)
}

/// A schema violation in a JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// Parses a whole JSONL trace, validating every line against the event
/// schema. Empty lines are rejected — a truncated write should not pass
/// validation silently.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let event = Event::parse_line(line).map_err(|msg| TraceError { line: i + 1, msg })?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::CostMeter;

    fn sample_breakdown() -> PhaseBreakdown {
        let mut m = CostMeter::new();
        m.charge(Phase::Priority, 120);
        m.charge(Phase::Scheduling, 30);
        m.charge(Phase::HintDecode, 7);
        *m.breakdown()
    }

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            Event::TranslateStart {
                key: 3,
                loop_hash: u64::MAX,
            },
            Event::TranslateEnd {
                key: 3,
                status: TranslateStatus::Mapped,
                units: 157,
                checks: 2,
                degraded: false,
                breakdown: sample_breakdown(),
            },
            Event::HintDegrade {
                key: 3,
                kind: HintKind::Priority,
                reason: "priority order has 3 entries, graph has 5 ops".into(),
            },
            Event::Quarantine { key: 3 },
            Event::QuarantineLift { key: 3 },
            Event::WatchdogAbort {
                key: 4,
                cap: 100,
                paid: 100,
            },
            Event::CacheHit { key: 3 },
            Event::PinnedSkip { key: 4 },
            Event::MemoHit { key: 3 },
            Event::MemoMiss { key: 5 },
            Event::PointStart { index: 0 },
            Event::PointEnd { index: 0 },
            Event::SnapshotRestore {
                restored: 12,
                salvaged: 1,
                rejected: 2,
            },
            Event::CheckpointWrite {
                bytes: 4096,
                retries: 1,
            },
            Event::ConnOpen { conn: 7 },
            Event::ConnClose {
                conn: 7,
                frames: 42,
            },
            Event::FrameReject {
                conn: 7,
                reason: "section 2 checksum mismatch".into(),
            },
        ];
        for e in &events {
            let line = e.to_json();
            let back = Event::parse_line(&line).unwrap_or_else(|m| panic!("{line}: {m}"));
            assert_eq!(&back, e, "{line}");
        }
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn serialization_is_deterministic() {
        let e = Event::TranslateEnd {
            key: 1,
            status: TranslateStatus::Failed,
            units: 157,
            checks: 0,
            degraded: false,
            breakdown: sample_breakdown(),
        };
        assert_eq!(e.to_json(), e.to_json());
        assert_eq!(
            e.to_json(),
            "{\"ev\":\"translate_end\",\"key\":1,\"status\":\"failed\",\"units\":157,\
             \"checks\":0,\"degraded\":false,\"breakdown\":{\"priority\":120,\
             \"scheduling\":30,\"hint-decode\":7}}"
        );
    }

    #[test]
    fn validator_rejects_schema_violations() {
        // Unknown event.
        assert!(Event::parse_line("{\"ev\":\"nope\",\"key\":1}").is_err());
        // Missing field.
        assert!(Event::parse_line("{\"ev\":\"cache_hit\"}").is_err());
        // Mistyped field.
        assert!(Event::parse_line("{\"ev\":\"cache_hit\",\"key\":\"x\"}").is_err());
        // Unknown phase name.
        assert!(Event::parse_line(
            "{\"ev\":\"translate_end\",\"key\":1,\"status\":\"mapped\",\"units\":1,\
             \"checks\":0,\"degraded\":false,\"breakdown\":{\"warp\":1}}"
        )
        .is_err());
        // Units inconsistent with the breakdown.
        assert!(Event::parse_line(
            "{\"ev\":\"translate_end\",\"key\":1,\"status\":\"mapped\",\"units\":2,\
             \"checks\":0,\"degraded\":false,\"breakdown\":{\"priority\":1}}"
        )
        .is_err());
        // Bad line number reporting.
        let err = parse_jsonl("{\"ev\":\"cache_hit\",\"key\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
        // Empty line counts as a violation, not a separator.
        assert!(parse_jsonl("{\"ev\":\"cache_hit\",\"key\":1}\n\n").is_err());
    }
}
