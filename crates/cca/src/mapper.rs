//! The greedy seed-and-grow CCA subgraph mapper (paper §4.1).
//!
//! Like the legality layer, the mapper has a reference implementation
//! (`HashSet` taken-set, clone-and-sort growth trials — the pre-sweep
//! code) and a data-oriented one (bitset taken-set, binary-search
//! membership, one [`LegalityScratch`] threaded through every trial),
//! selected by [`veal_ir::data_oriented_enabled`]. Both walk candidates in
//! the same order and charge the [`CostMeter`] at the same sites, so the
//! groups *and* the phase breakdown are identical.

use crate::legality::{
    is_legal_group, is_legal_group_in, is_legal_group_reference, LegalityScratch,
};
use crate::spec::CcaSpec;
use std::collections::HashSet;
use veal_ir::{data_oriented_enabled, with_arena, CostMeter, Dfg, OpId, Opcode, Phase};

/// One committed CCA subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcaGroup {
    /// The new CCA pseudo-node in the rewritten graph (only set by
    /// [`map_cca`]; [`identify_groups`] leaves the graph untouched).
    pub node: Option<OpId>,
    /// The original member ops, sorted by id.
    pub members: Vec<OpId>,
}

/// Identifies CCA subgraphs without mutating the graph.
///
/// This is the *static* half of "Static CCA Identification" (paper §4.2):
/// the compiler runs this offline and encodes each group via procedural
/// abstraction; the VM either maps a group onto its CCA or executes the
/// member ops individually.
///
/// The algorithm follows §4.1: seeds are examined in numerical order; each
/// seed is grown recursively along its dataflow edges, admitting the
/// lowest-numbered legal candidate each step; each operation is selected as
/// a seed at most once. Groups that end up smaller than two ops are
/// discarded (a single-op "group" gains nothing).
#[must_use]
pub fn identify_groups(dfg: &Dfg, spec: &CcaSpec, meter: &mut CostMeter) -> Vec<CcaGroup> {
    if data_oriented_enabled() {
        identify_groups_fast(dfg, spec, meter)
    } else {
        identify_groups_reference(dfg, spec, meter)
    }
}

/// The pre-sweep mapper, retained as the reference implementation.
#[must_use]
pub fn identify_groups_reference(
    dfg: &Dfg,
    spec: &CcaSpec,
    meter: &mut CostMeter,
) -> Vec<CcaGroup> {
    let cond = dfg.condensation();
    meter.charge(Phase::CcaMapping, (dfg.len() as u64) * 10);
    let mut taken: HashSet<OpId> = HashSet::new();
    let mut groups = Vec::new();

    let mut seeds: Vec<OpId> = dfg
        .schedulable_ops()
        .filter(|&id| dfg.node(id).opcode().is_some_and(|op| op.cca_supported()))
        .collect();
    seeds.sort();

    for seed in seeds {
        if taken.contains(&seed) {
            continue;
        }
        meter.charge(Phase::CcaMapping, 4);
        let mut group = vec![seed];
        if !is_legal_group_reference(dfg, spec, &group, &cond) {
            // A seed alone can be illegal only through the recurrence rule;
            // try pairing it with a same-recurrence neighbour below anyway.
            meter.charge(Phase::CcaMapping, group.len() as u64);
        }
        // Grow until no candidate can be admitted.
        loop {
            let mut candidates: Vec<OpId> = Vec::new();
            for &m in &group {
                for e in dfg.pred_edges(m).chain(dfg.succ_edges(m)) {
                    let n = if e.src == m { e.dst } else { e.src };
                    meter.charge(Phase::CcaMapping, 2);
                    if taken.contains(&n)
                        || group.contains(&n)
                        || !dfg.node(n).opcode().is_some_and(|op| op.cca_supported())
                    {
                        continue;
                    }
                    if !candidates.contains(&n) {
                        candidates.push(n);
                    }
                }
            }
            candidates.sort();
            let mut grew = false;
            for c in candidates {
                let mut trial = group.clone();
                trial.push(c);
                trial.sort();
                // A legality trial runs IO counting, row assignment, a
                // convexity BFS, and the recurrence rule — several dozen
                // instructions per member.
                meter.charge(Phase::CcaMapping, 100 + (trial.len() as u64) * 80);
                if is_legal_group_reference(dfg, spec, &trial, &cond)
                    || provisional_ok_reference(dfg, spec, &trial, &cond)
                {
                    group = trial;
                    grew = true;
                    break;
                }
            }
            if !grew {
                break;
            }
        }
        group.sort();
        // Commit only groups that are legal as a whole and large enough to
        // pay off.
        if group.len() >= 2 && is_legal_group_reference(dfg, spec, &group, &cond) {
            for &m in &group {
                taken.insert(m);
            }
            groups.push(CcaGroup {
                node: None,
                members: group,
            });
        }
    }
    groups
}

/// The data-oriented mapper: same walk, same charges, zero steady-state
/// allocation. The taken set is a `u64` bitset from the arena pool, the
/// current group stays sorted so membership is a binary search, growth
/// trials reuse one buffer (sorted insertion instead of clone-and-sort),
/// and every legality query runs through one [`LegalityScratch`].
fn identify_groups_fast(dfg: &Dfg, spec: &CcaSpec, meter: &mut CostMeter) -> Vec<CcaGroup> {
    let cond = dfg.condensation();
    meter.charge(Phase::CcaMapping, (dfg.len() as u64) * 10);
    let adj = dfg.adjacency();
    let opcs = adj.opcodes();
    let edges = dfg.edges();
    let words = dfg.len().div_ceil(64);
    let mut s = LegalityScratch::new();
    let mut taken = with_arena(veal_ir::DfgArena::take_u64);
    taken.resize(words, 0);

    let mut groups = Vec::new();
    let mut candidates: Vec<OpId> = Vec::new();
    let mut trial: Vec<OpId> = Vec::new();

    // `opcs` is NO_OP for pseudo and dead slots, so the non-NO_OP slots in
    // ascending id order are exactly the reference's sorted seed list.
    for i in 0..opcs.len() {
        let supported = Opcode::decode(opcs[i]).is_some_and(|op| op.cca_supported());
        if !supported {
            continue;
        }
        if taken[i / 64] >> (i % 64) & 1 != 0 {
            continue;
        }
        let seed = OpId::new(i);
        meter.charge(Phase::CcaMapping, 4);
        let mut group = vec![seed];
        if !is_legal_group_in(dfg, spec, &group, &cond, &mut s) {
            // A seed alone can be illegal only through the recurrence rule;
            // try pairing it with a same-recurrence neighbour below anyway.
            meter.charge(Phase::CcaMapping, group.len() as u64);
        }
        // Grow until no candidate can be admitted.
        loop {
            candidates.clear();
            for &m in &group {
                let pred = adj.pred_edge_ids(m.index());
                let succ = adj.succ_edge_ids(m.index());
                for &ei in pred.iter().chain(succ) {
                    let e = &edges[ei as usize];
                    let n = if e.src == m { e.dst } else { e.src };
                    meter.charge(Phase::CcaMapping, 2);
                    let ni = n.index();
                    if taken[ni / 64] >> (ni % 64) & 1 != 0
                        || group.binary_search(&n).is_ok()
                        || !Opcode::decode(opcs[ni]).is_some_and(|op| op.cca_supported())
                    {
                        continue;
                    }
                    if !candidates.contains(&n) {
                        candidates.push(n);
                    }
                }
            }
            candidates.sort();
            let mut grew = false;
            for &c in &candidates {
                trial.clear();
                trial.extend_from_slice(&group);
                let at = trial.binary_search(&c).unwrap_err();
                trial.insert(at, c);
                meter.charge(Phase::CcaMapping, 100 + (trial.len() as u64) * 80);
                if is_legal_group_in(dfg, spec, &trial, &cond, &mut s)
                    || provisional_ok_fast(dfg, spec, &trial, &cond, &mut s)
                {
                    std::mem::swap(&mut group, &mut trial);
                    grew = true;
                    break;
                }
            }
            if !grew {
                break;
            }
        }
        if group.len() >= 2 && is_legal_group_in(dfg, spec, &group, &cond, &mut s) {
            for &m in &group {
                taken[m.index() / 64] |= 1u64 << (m.index() % 64);
            }
            groups.push(CcaGroup {
                node: None,
                members: group,
            });
        }
    }
    with_arena(|a| a.give_u64(taken));
    groups
}

/// During growth a group may transiently violate only the recurrence rule
/// (e.g. the seed itself lies on a recurrence and its partner has not been
/// admitted yet). Such a group may keep growing; commit re-checks strictly.
fn provisional_ok_reference(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    cond: &veal_ir::Condensation,
) -> bool {
    use crate::legality::{assign_rows_reference, group_io_reference, is_convex_reference};
    let io = group_io_reference(dfg, group);
    if io.inputs > spec.inputs || io.outputs > spec.outputs {
        return false;
    }
    if assign_rows_reference(dfg, spec, group).is_none() || !is_convex_reference(cond, group) {
        return false;
    }
    // Relaxed recurrence rule: every cyclic SCC present in the group must
    // still have an admissible ungrouped neighbour that could complete it.
    let set: HashSet<OpId> = group.iter().copied().collect();
    for (ci, scc) in cond.comps().iter().enumerate() {
        if !cond.is_cyclic(ci) {
            continue;
        }
        let inside = scc.iter().filter(|m| set.contains(m)).count();
        if inside == 0 || inside as u32 >= spec.latency {
            continue;
        }
        let completable = scc.iter().any(|&m| {
            !set.contains(&m) && dfg.node(m).opcode().is_some_and(|op| op.cca_supported())
        });
        if !completable {
            return false;
        }
    }
    true
}

/// [`provisional_ok_reference`] over the scratch and the flat opcode array.
fn provisional_ok_fast(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    cond: &veal_ir::Condensation,
    s: &mut LegalityScratch,
) -> bool {
    use crate::legality::{assign_rows_fill_in, group_io_in, is_convex_in};
    let io = group_io_in(dfg, group, s);
    if io.inputs > spec.inputs || io.outputs > spec.outputs {
        return false;
    }
    if !assign_rows_fill_in(dfg, spec, group, s) || !is_convex_in(cond, group, s) {
        return false;
    }
    let opcs = dfg.adjacency().opcodes();
    // `group` is sorted, so membership is a binary search.
    for (ci, scc) in cond.comps().iter().enumerate() {
        if !cond.is_cyclic(ci) {
            continue;
        }
        let inside = scc
            .iter()
            .filter(|m| group.binary_search(m).is_ok())
            .count();
        if inside == 0 || inside as u32 >= spec.latency {
            continue;
        }
        let completable = scc.iter().any(|&m| {
            group.binary_search(&m).is_err()
                && Opcode::decode(opcs[m.index()]).is_some_and(|op| op.cca_supported())
        });
        if !completable {
            return false;
        }
    }
    true
}

/// Identifies CCA subgraphs and collapses each into a [`veal_ir::Opcode::Cca`]
/// pseudo-node, returning the committed groups with their new node ids.
///
/// # Example
///
/// See the crate-level example.
pub fn map_cca(dfg: &mut Dfg, spec: &CcaSpec, meter: &mut CostMeter) -> Vec<CcaGroup> {
    let groups = identify_groups(dfg, spec, meter);
    let mut scratch = data_oriented_enabled().then(LegalityScratch::new);
    let mut committed = Vec::new();
    for g in groups {
        meter.charge(Phase::CcaMapping, 20 + (g.members.len() as u64) * 12);
        // Groups were identified against the original graph; two groups that
        // feed each other would deadlock as atomic units, so re-validate
        // each against the evolving graph (earlier collapses are single
        // nodes now) and skip any that became illegal. Until the first
        // collapse the graph is still the one identification analyzed, so
        // its cached condensation answers directly; after that the fast
        // path asks this one question per group without rebuilding the
        // condensation (and its reach0 closure) after every collapse,
        // while the reference path is the pre-sweep rebuild. Verdicts are
        // identical across all three.
        let legal = match scratch.as_mut() {
            Some(s) if committed.is_empty() => {
                let cond = dfg.condensation();
                crate::legality::is_legal_group_in(dfg, spec, &g.members, &cond, s)
            }
            Some(s) => crate::legality::is_legal_group_current(dfg, spec, &g.members, s),
            None => {
                let cond = dfg.condensation();
                is_legal_group(dfg, spec, &g.members, &cond)
            }
        };
        if !legal {
            continue;
        }
        let node = dfg.collapse(&g.members);
        committed.push(CcaGroup {
            node: Some(node),
            members: g.members,
        });
    }
    committed
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{set_data_oriented, verify_dfg, DfgBuilder, Opcode};

    #[test]
    fn maps_simple_logic_chain() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let a = b.op(Opcode::And, &[x, x]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let o = b.op(Opcode::Xor, &[s, a]);
        b.store_stream(1, o);
        let mut dfg = b.finish();
        let mut m = CostMeter::new();
        let groups = map_cca(&mut dfg, &CcaSpec::paper(), &mut m);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![a, s, o]);
        assert!(groups[0].node.is_some());
        assert!(verify_dfg(&dfg).is_ok());
        assert!(m.breakdown().get(Phase::CcaMapping) > 0);
    }

    #[test]
    fn no_cca_ops_no_groups() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Mul, &[x, x]);
        let z = b.op(Opcode::Shl, &[y]);
        b.store_stream(1, z);
        let mut dfg = b.finish();
        let mut m = CostMeter::new();
        assert!(map_cca(&mut dfg, &CcaSpec::paper(), &mut m).is_empty());
    }

    #[test]
    fn singleton_groups_not_committed() {
        // One supported op surrounded by unsupported ops.
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let m1 = b.op(Opcode::Mul, &[x, x]);
        let a = b.op(Opcode::Add, &[m1, x]);
        let m2 = b.op(Opcode::Shl, &[a]);
        b.store_stream(1, m2);
        let mut dfg = b.finish();
        let mut m = CostMeter::new();
        assert!(map_cca(&mut dfg, &CcaSpec::paper(), &mut m).is_empty());
        // The graph is untouched.
        assert!(!dfg.node(a).is_dead());
    }

    #[test]
    fn recurrence_singleton_partner_rejected() {
        // Paper example: op 7 (on a mul recurrence) must not merge with the
        // acyclic op 10, because that lengthens the 4-7 recurrence.
        let mut b = DfgBuilder::new();
        let mpy = b.op(Opcode::Mul, &[]);
        let or = b.op(Opcode::Or, &[mpy]);
        b.loop_carried(or, mpy, 1);
        let shr = b.op(Opcode::Shr, &[]);
        let add = b.op(Opcode::Add, &[or, shr]);
        b.mark_live_out(add);
        let mut dfg = b.finish();
        let mut m = CostMeter::new();
        let groups = map_cca(&mut dfg, &CcaSpec::paper(), &mut m);
        assert!(
            groups.iter().all(|g| !g.members.contains(&or)),
            "op on mul-recurrence must stay out of CCA groups"
        );
    }

    #[test]
    fn growth_respects_input_budget() {
        // A wide fan-in tree: only 4 external inputs allowed.
        let mut b = DfgBuilder::new();
        let ins: Vec<_> = (0..8).map(|_| b.live_in()).collect();
        let l1: Vec<_> = ins
            .chunks(2)
            .map(|p| b.op(Opcode::Add, &[p[0], p[1]]))
            .collect();
        let l2a = b.op(Opcode::Or, &[l1[0], l1[1]]);
        let l2b = b.op(Opcode::Or, &[l1[2], l1[3]]);
        let top = b.op(Opcode::Xor, &[l2a, l2b]);
        b.mark_live_out(top);
        let mut dfg = b.finish();
        let mut m = CostMeter::new();
        let groups = map_cca(&mut dfg, &CcaSpec::paper(), &mut m);
        assert!(groups.iter().all(|g| g.members.len() >= 2));
        // No group may exceed 4 inputs / 2 outputs; the mapper enforced it,
        // the schedule-level invariant is that the rewritten graph is sane.
        assert!(verify_dfg(&dfg).is_ok());
    }

    #[test]
    fn identify_does_not_mutate() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let a = b.op(Opcode::And, &[x, x]);
        let o = b.op(Opcode::Xor, &[a, x]);
        b.store_stream(1, o);
        let dfg = b.finish();
        let before = dfg.clone();
        let mut m = CostMeter::new();
        let groups = identify_groups(&dfg, &CcaSpec::paper(), &mut m);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].node, None);
        assert_eq!(dfg, before);
    }

    #[test]
    fn narrow_cca_accepts_fewer_ops() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let mut cur = x;
        let mut chain = Vec::new();
        for i in 0..4 {
            let op = if i % 2 == 0 { Opcode::And } else { Opcode::Or };
            cur = b.op(op, &[cur]);
            chain.push(cur);
        }
        b.mark_live_out(cur);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let wide = identify_groups(&dfg, &CcaSpec::paper(), &mut m);
        let narrow = identify_groups(&dfg, &CcaSpec::narrow(), &mut m);
        assert_eq!(wide[0].members.len(), 4);
        assert!(narrow.is_empty() || narrow[0].members.len() <= 2);
    }

    /// Fast and reference mappers agree on groups *and* on meter charges
    /// over a random corpus.
    #[test]
    fn fast_and_reference_mappers_agree() {
        let mut rng = veal_ir::rng::Rng64::new(0x5EED);
        let ops = [
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Add,
            Opcode::Sub,
            Opcode::Shl,
            Opcode::Mul,
        ];
        for _ in 0..40 {
            let mut b = DfgBuilder::new();
            let mut vals = vec![b.live_in()];
            for _ in 0..rng.gen_range(4, 20) {
                let op = ops[rng.gen_range(0, ops.len())];
                let a = vals[rng.gen_range(0, vals.len())];
                let c = vals[rng.gen_range(0, vals.len())];
                vals.push(b.op(op, &[a, c]));
            }
            if rng.gen_bool(0.5) {
                let src = *vals.last().unwrap();
                let dst = vals[1];
                b.loop_carried(src, dst, 1);
            }
            let last = *vals.last().unwrap();
            b.mark_live_out(last);
            let dfg = b.finish();
            let spec = CcaSpec::paper();

            let mut m_fast = CostMeter::new();
            let fast = identify_groups(&dfg, &spec, &mut m_fast);
            let prev = set_data_oriented(false);
            let mut m_ref = CostMeter::new();
            let reference = identify_groups(&dfg, &spec, &mut m_ref);
            set_data_oriented(prev);

            assert_eq!(fast, reference);
            assert_eq!(m_fast.breakdown(), m_ref.breakdown());
        }
    }
}
