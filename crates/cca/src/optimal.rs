//! An exhaustive CCA mapper for small graphs.
//!
//! The paper notes that optimal CCA utilization is NP-complete \[13\] and
//! therefore uses a greedy heuristic. This module provides the reference
//! point: on graphs with few CCA-supported ops it enumerates every legal
//! partition into groups and maximizes the number of *covered* ops — the
//! quantity the greedy mapper approximates. The ablation bench
//! (`veal-bench --bin ablation`) and the property tests use it to bound
//! the greedy mapper's loss.

use crate::legality::{is_legal_group_in, is_legal_group_reference, LegalityScratch};
use crate::mapper::CcaGroup;
use crate::spec::CcaSpec;
use veal_ir::{data_oriented_enabled, CostMeter, Dfg, OpId, Phase};

/// Upper bound on CCA-supported candidate ops before [`optimal_groups`]
/// refuses to run (the search is exponential).
pub const MAX_CANDIDATES: usize = 14;

/// Exhaustively finds the grouping that covers the most ops with legal CCA
/// groups (ties broken toward fewer groups). Returns `None` when the graph
/// has more than [`MAX_CANDIDATES`] candidate ops.
///
/// Groups are returned like [`crate::identify_groups`]'s: member lists
/// over the unmodified graph.
///
/// Greedy bound (pinned by the `greedy_bound` corpus test): the greedy
/// mapper never covers more ops than this optimum, attains at least two
/// thirds of it in aggregate over a random corpus (~71% measured), but
/// admits no per-graph multiplicative bound — seed-and-grow walks dataflow
/// edges, so it can come up empty on graphs whose only legal groupings
/// combine disconnected ops.
#[must_use]
pub fn optimal_groups(dfg: &Dfg, spec: &CcaSpec, meter: &mut CostMeter) -> Option<Vec<CcaGroup>> {
    let candidates: Vec<OpId> = dfg
        .schedulable_ops()
        .filter(|&id| dfg.node(id).opcode().is_some_and(|op| op.cca_supported()))
        .collect();
    if candidates.len() > MAX_CANDIDATES {
        return None;
    }
    let cond = dfg.condensation();

    // Enumerate all legal groups (subsets of candidates, size >= 2).
    let n = candidates.len();
    let mut legal: Vec<(u32, Vec<OpId>)> = Vec::new();
    // One member buffer reused across all 2^n masks: the common case
    // (illegal subset) allocates nothing, and the charge is read off the
    // mask's popcount (identical to the old per-member count) before any
    // materialization happens.
    let mut members: Vec<OpId> = Vec::with_capacity(n);
    if data_oriented_enabled() {
        // Word-parallel recurrence prefilter: project each cyclic SCC onto
        // candidate-index bit positions. `recurrences_ok` rejects any group
        // holding more than zero but fewer than `latency` ops of a cyclic
        // SCC, so a subset mask failing that popcount test is illegal no
        // matter what the other checks say — skip it with two ALU ops
        // instead of a full legality run. (The converse is not prunable:
        // convexity is not monotone, so only this rule is applied.)
        let mut scc_masks: Vec<u32> = Vec::new();
        for (ci, scc) in cond.comps().iter().enumerate() {
            if !cond.is_cyclic(ci) {
                continue;
            }
            let mut m = 0u32;
            for (i, c) in candidates.iter().enumerate() {
                if scc.binary_search(c).is_ok() {
                    m |= 1 << i;
                }
            }
            if m != 0 {
                scc_masks.push(m);
            }
        }
        let mut s = LegalityScratch::new();
        for mask in 1u32..(1 << n) {
            if mask.count_ones() < 2 {
                continue;
            }
            meter.charge(Phase::CcaMapping, u64::from(mask.count_ones()) * 4);
            let doomed = scc_masks.iter().any(|&sm| {
                let inside = (mask & sm).count_ones();
                inside > 0 && inside < spec.latency
            });
            if doomed {
                continue;
            }
            members.clear();
            members.extend(
                (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| candidates[i]),
            );
            if is_legal_group_in(dfg, spec, &members, &cond, &mut s) {
                legal.push((mask, members.clone()));
            }
        }
    } else {
        for mask in 1u32..(1 << n) {
            if mask.count_ones() < 2 {
                continue;
            }
            meter.charge(Phase::CcaMapping, u64::from(mask.count_ones()) * 4);
            members.clear();
            members.extend(
                (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| candidates[i]),
            );
            if is_legal_group_reference(dfg, spec, &members, &cond) {
                legal.push((mask, members.clone()));
            }
        }
    }

    // Branch-and-bound over disjoint unions of legal groups, maximizing
    // covered ops.
    fn search(
        legal: &[(u32, Vec<OpId>)],
        start: usize,
        used: u32,
        covered: u32,
        best: &mut (u32, Vec<usize>),
        chosen: &mut Vec<usize>,
    ) {
        if covered.count_ones() > best.0.count_ones()
            || (covered.count_ones() == best.0.count_ones() && chosen.len() < best.1.len())
        {
            *best = (covered, chosen.clone());
        }
        for (i, (mask, _)) in legal.iter().enumerate().skip(start) {
            if mask & used != 0 {
                continue;
            }
            chosen.push(i);
            search(legal, i + 1, used | mask, covered | mask, best, chosen);
            chosen.pop();
        }
    }
    let mut best = (0u32, Vec::new());
    let mut chosen = Vec::new();
    search(&legal, 0, 0, 0, &mut best, &mut chosen);

    Some(
        best.1
            .into_iter()
            .map(|i| CcaGroup {
                node: None,
                members: legal[i].1.clone(),
            })
            .collect(),
    )
}

/// Ops covered by a set of groups.
#[must_use]
pub fn coverage(groups: &[CcaGroup]) -> usize {
    groups.iter().map(|g| g.members.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify_groups;
    use veal_ir::{DfgBuilder, Opcode};

    #[test]
    fn optimal_matches_greedy_on_simple_chain() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let a = b.op(Opcode::And, &[x, x]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let o = b.op(Opcode::Xor, &[s, a]);
        b.mark_live_out(o);
        let dfg = b.finish();
        let spec = CcaSpec::paper();
        let greedy = identify_groups(&dfg, &spec, &mut CostMeter::new());
        let optimal = optimal_groups(&dfg, &spec, &mut CostMeter::new()).unwrap();
        assert_eq!(coverage(&greedy), coverage(&optimal));
    }

    #[test]
    fn optimal_never_below_greedy() {
        // Random-ish small graphs: the exhaustive answer is a true upper
        // bound for the greedy one.
        for seed in 0..12u64 {
            let mut b = DfgBuilder::new();
            let mut vals = vec![b.live_in()];
            for i in 0..8 {
                let ops = [
                    Opcode::And,
                    Opcode::Or,
                    Opcode::Xor,
                    Opcode::Add,
                    Opcode::Shl,
                ];
                let op = ops[((seed + i) % 5) as usize];
                let a = vals[(seed as usize + i as usize) % vals.len()];
                let c = vals[(seed as usize * 3 + i as usize) % vals.len()];
                vals.push(b.op(op, &[a, c]));
            }
            let last = *vals.last().unwrap();
            b.mark_live_out(last);
            let dfg = b.finish();
            let spec = CcaSpec::paper();
            let greedy = identify_groups(&dfg, &spec, &mut CostMeter::new());
            let optimal = optimal_groups(&dfg, &spec, &mut CostMeter::new()).unwrap();
            assert!(
                coverage(&optimal) >= coverage(&greedy),
                "seed {seed}: optimal {} < greedy {}",
                coverage(&optimal),
                coverage(&greedy)
            );
        }
    }

    #[test]
    fn refuses_large_graphs() {
        let mut b = DfgBuilder::new();
        let mut prev = b.op(Opcode::And, &[]);
        for _ in 0..20 {
            prev = b.op(Opcode::Or, &[prev]);
        }
        let dfg = b.finish();
        assert!(optimal_groups(&dfg, &CcaSpec::paper(), &mut CostMeter::new()).is_none());
    }

    /// The prefiltered fast enumeration returns the same optimum (and the
    /// same meter charges) as the reference enumeration.
    #[test]
    fn prefilter_preserves_optimum_and_charges() {
        use veal_ir::set_data_oriented;
        let mut rng = veal_ir::rng::Rng64::new(0x0917);
        let ops = [
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Add,
            Opcode::Shl,
        ];
        for _ in 0..12 {
            let mut b = DfgBuilder::new();
            let mut vals = vec![b.live_in()];
            for _ in 0..rng.gen_range(4, 10) {
                let op = ops[rng.gen_range(0, ops.len())];
                let a = vals[rng.gen_range(0, vals.len())];
                let c = vals[rng.gen_range(0, vals.len())];
                vals.push(b.op(op, &[a, c]));
            }
            if rng.gen_bool(0.6) {
                let src = *vals.last().unwrap();
                let dst = vals[1];
                b.loop_carried(src, dst, 1);
            }
            let last = *vals.last().unwrap();
            b.mark_live_out(last);
            let dfg = b.finish();
            let spec = CcaSpec::paper();

            let mut m_fast = CostMeter::new();
            let fast = optimal_groups(&dfg, &spec, &mut m_fast);
            let prev = set_data_oriented(false);
            let mut m_ref = CostMeter::new();
            let reference = optimal_groups(&dfg, &spec, &mut m_ref);
            set_data_oriented(prev);

            assert_eq!(fast, reference);
            assert_eq!(m_fast.breakdown(), m_ref.breakdown());
        }
    }

    #[test]
    fn optimal_groups_are_disjoint_and_legal() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let a = b.op(Opcode::And, &[x, x]);
        let c = b.op(Opcode::Or, &[a, x]);
        let d = b.op(Opcode::Shl, &[c]); // splits the region
        let e = b.op(Opcode::Xor, &[d, a]);
        let f = b.op(Opcode::Add, &[e, d]);
        b.mark_live_out(f);
        let dfg = b.finish();
        let spec = CcaSpec::paper();
        let groups = optimal_groups(&dfg, &spec, &mut CostMeter::new()).unwrap();
        let cond = dfg.condensation();
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            assert!(crate::is_legal_group(&dfg, &spec, &g.members, &cond));
            for &m in &g.members {
                assert!(seen.insert(m), "{m} in two groups");
            }
        }
    }
}
