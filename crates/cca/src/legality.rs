//! Legality checks for candidate CCA subgraphs.
//!
//! Every set-membership question here is asked thousands of times per
//! loop by the seed-and-grow mapper and millions of times by the
//! exhaustive mapper, so groups are represented as packed `u64` bitmasks
//! over node slots and convexity reads the graph's cached distance-0
//! reachability closure ([`Condensation`]) instead of re-running a BFS
//! per query.
//!
//! Two implementations coexist, selected by
//! [`veal_ir::data_oriented_enabled`]:
//!
//! * the **reference** path (`*_reference`) allocates its masks and
//!   per-member tables fresh on every query and resolves member indices
//!   by linear scan — the pre-sweep behavior, retained as the executable
//!   specification and as the old arm of `bench_translate`;
//! * the **fast** path (`*_in`) threads a [`LegalityScratch`] of
//!   arena-backed buffers through every query and reads the graph through
//!   its CSR [`veal_ir::Adjacency`], so a legality trial in the mapper's
//!   inner loop allocates nothing.
//!
//! Both produce identical verdicts (pinned by the equivalence corpus in
//! `crates/ir/tests/soa_equivalence.rs` and the cca property tests).

use crate::spec::CcaSpec;
use std::collections::VecDeque;
use veal_ir::{data_oriented_enabled, with_arena, Condensation, Dfg, OpId, Opcode};

/// Packed membership mask over node slots (`words` = `⌈len/64⌉`).
fn mask_of(group: &[OpId], words: usize) -> Vec<u64> {
    let mut m = vec![0u64; words];
    for &g in group {
        m[g.index() / 64] |= 1u64 << (g.index() % 64);
    }
    m
}

#[inline]
fn bit(mask: &[u64], i: usize) -> bool {
    mask[i / 64] >> (i % 64) & 1 != 0
}

#[inline]
fn set_bit(mask: &mut [u64], i: usize) {
    mask[i / 64] |= 1u64 << (i % 64);
}

fn count_ones(mask: &[u64]) -> usize {
    mask.iter().map(|w| w.count_ones() as usize).sum()
}

/// Reusable buffers for the fast legality kernels.
///
/// One scratch serves any number of queries against graphs of any size —
/// each kernel resizes what it touches. The buffers come from the shared
/// [`veal_ir::DfgArena`] pool and return to it on drop, so constructing a
/// scratch in steady state allocates nothing either.
#[derive(Debug)]
pub struct LegalityScratch {
    /// Member mask over node slots.
    set: Vec<u64>,
    /// Producers mask / convexity out-reach / BFS visited.
    wa: Vec<u64>,
    /// Outputs mask.
    wb: Vec<u64>,
    /// Node slot -> index within the current group (stale outside the
    /// current group's slots; always guarded by `set`).
    pos: Vec<u32>,
    /// Per-member intra-group in-degree.
    indeg: Vec<u32>,
    /// Topological work queue over member indices.
    queue: Vec<u32>,
    /// Per-member assigned row (`u32::MAX` = unplaced).
    row_of: Vec<u32>,
    /// Per-row occupancy.
    row_load: Vec<u32>,
    /// DFS work stack of node slots.
    work: Vec<u32>,
}

impl LegalityScratch {
    /// Checks buffers out of the arena pool.
    #[must_use]
    pub fn new() -> Self {
        with_arena(|a| LegalityScratch {
            set: a.take_u64(),
            wa: a.take_u64(),
            wb: a.take_u64(),
            pos: a.take_u32(),
            indeg: a.take_u32(),
            queue: a.take_u32(),
            row_of: a.take_u32(),
            row_load: a.take_u32(),
            work: a.take_u32(),
        })
    }

    /// Rebuilds the member mask and position table for `group` over a
    /// graph of `n` slots.
    fn load_group(&mut self, group: &[OpId], n: usize) {
        let words = n.div_ceil(64);
        self.set.clear();
        self.set.resize(words, 0);
        self.pos.resize(n.max(self.pos.len()), 0);
        for (i, &g) in group.iter().enumerate() {
            self.set[g.index() / 64] |= 1u64 << (g.index() % 64);
            self.pos[g.index()] = i as u32;
        }
    }
}

impl Default for LegalityScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for LegalityScratch {
    fn drop(&mut self) {
        with_arena(|a| {
            a.give_u64(std::mem::take(&mut self.set));
            a.give_u64(std::mem::take(&mut self.wa));
            a.give_u64(std::mem::take(&mut self.wb));
            a.give_u32(std::mem::take(&mut self.pos));
            a.give_u32(std::mem::take(&mut self.indeg));
            a.give_u32(std::mem::take(&mut self.queue));
            a.give_u32(std::mem::take(&mut self.row_of));
            a.give_u32(std::mem::take(&mut self.row_load));
            a.give_u32(std::mem::take(&mut self.work));
        });
    }
}

/// The row each member of a legal group occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowAssignment {
    /// `(member, row)` pairs.
    pub rows: Vec<(OpId, usize)>,
}

/// External interface requirements of a candidate group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupIo {
    /// Distinct external value producers feeding the group.
    pub inputs: usize,
    /// Distinct members whose value leaves the group (external consumers,
    /// live-outs, or loop-carried feedback).
    pub outputs: usize,
}

/// Counts the external inputs and outputs a group would need.
#[must_use]
pub fn group_io(dfg: &Dfg, group: &[OpId]) -> GroupIo {
    if data_oriented_enabled() {
        group_io_in(dfg, group, &mut LegalityScratch::new())
    } else {
        group_io_reference(dfg, group)
    }
}

/// Allocation-per-call [`group_io`], retained as the reference.
#[must_use]
pub fn group_io_reference(dfg: &Dfg, group: &[OpId]) -> GroupIo {
    let words = dfg.len().div_ceil(64);
    let set = mask_of(group, words);
    let mut producers = vec![0u64; words];
    let mut outputs = vec![0u64; words];
    for &m in group {
        for e in dfg.pred_edges(m) {
            // A loop-carried edge from inside the group still needs a
            // register round-trip, i.e. an input port.
            if !bit(&set, e.src.index()) || e.distance > 0 {
                set_bit(&mut producers, e.src.index());
            }
        }
        for e in dfg.succ_edges(m) {
            if !bit(&set, e.dst.index()) || e.distance > 0 {
                set_bit(&mut outputs, m.index());
            }
        }
        if dfg.node(m).live_out {
            set_bit(&mut outputs, m.index());
        }
    }
    GroupIo {
        inputs: count_ones(&producers),
        outputs: count_ones(&outputs),
    }
}

/// [`group_io`] over the CSR adjacency and a caller-owned scratch.
#[must_use]
pub fn group_io_in(dfg: &Dfg, group: &[OpId], s: &mut LegalityScratch) -> GroupIo {
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    let words = adj.len().div_ceil(64);
    s.load_group(group, adj.len());
    s.wa.clear();
    s.wa.resize(words, 0);
    s.wb.clear();
    s.wb.resize(words, 0);
    for &m in group {
        for &ei in adj.pred_edge_ids(m.index()) {
            let e = &edges[ei as usize];
            if !bit(&s.set, e.src.index()) || e.distance > 0 {
                set_bit(&mut s.wa, e.src.index());
            }
        }
        for &ei in adj.succ_edge_ids(m.index()) {
            let e = &edges[ei as usize];
            if !bit(&s.set, e.dst.index()) || e.distance > 0 {
                set_bit(&mut s.wb, m.index());
            }
        }
        if dfg.node(m).live_out {
            set_bit(&mut s.wb, m.index());
        }
    }
    GroupIo {
        inputs: count_ones(&s.wa),
        outputs: count_ones(&s.wb),
    }
}

/// Assigns each member to a CCA row, or `None` if the group is too deep or
/// too wide.
///
/// Members are processed in intra-group topological order; each lands on the
/// lowest row that is (a) below all its in-group producers and (b) capable
/// of its op kind (arithmetic ops need an arithmetic row), subject to
/// per-row capacity.
#[must_use]
pub fn assign_rows(dfg: &Dfg, spec: &CcaSpec, group: &[OpId]) -> Option<RowAssignment> {
    if data_oriented_enabled() {
        assign_rows_in(dfg, spec, group, &mut LegalityScratch::new())
    } else {
        assign_rows_reference(dfg, spec, group)
    }
}

/// Allocation-per-call [`assign_rows`] with linear-scan member lookup,
/// retained as the reference.
#[must_use]
pub fn assign_rows_reference(dfg: &Dfg, spec: &CcaSpec, group: &[OpId]) -> Option<RowAssignment> {
    let words = dfg.len().div_ceil(64);
    let set = mask_of(group, words);
    if group.len() > spec.max_ops() {
        return None;
    }
    // Topological order within the group over distance-0 edges.
    let mut indeg: Vec<usize> = group
        .iter()
        .map(|&m| {
            dfg.pred_edges(m)
                .filter(|e| e.distance == 0 && bit(&set, e.src.index()))
                .count()
        })
        .collect();
    let index_of = |id: OpId| group.iter().position(|&g| g == id).expect("member");
    let mut queue: VecDeque<usize> = (0..group.len()).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(group.len());
    while let Some(i) = queue.pop_front() {
        order.push(group[i]);
        for e in dfg.succ_edges(group[i]) {
            if e.distance == 0 && bit(&set, e.dst.index()) {
                let j = index_of(e.dst);
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
    }
    if order.len() != group.len() {
        return None; // distance-0 cycle inside the group
    }

    let mut row_of: Vec<Option<usize>> = vec![None; group.len()];
    let mut row_load = vec![0usize; spec.depth()];
    for &m in &order {
        let min_row = dfg
            .pred_edges(m)
            .filter(|e| e.distance == 0 && bit(&set, e.src.index()))
            .map(|e| row_of[index_of(e.src)].expect("producer placed") + 1)
            .max()
            .unwrap_or(0);
        let needs_arith = dfg
            .node(m)
            .opcode()
            .expect("member is an op")
            .cca_arithmetic();
        let mut placed = false;
        for (r, load) in row_load.iter_mut().enumerate().skip(min_row) {
            if needs_arith && !spec.row_supports_arith(r) {
                continue;
            }
            if *load >= spec.row_caps[r] {
                continue;
            }
            row_of[index_of(m)] = Some(r);
            *load += 1;
            placed = true;
            break;
        }
        if !placed {
            return None;
        }
    }
    Some(RowAssignment {
        rows: group
            .iter()
            .map(|&m| (m, row_of[index_of(m)].expect("placed")))
            .collect(),
    })
}

/// [`assign_rows`] over the CSR adjacency with O(1) member lookup through
/// the scratch position table.
#[must_use]
pub fn assign_rows_in(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    s: &mut LegalityScratch,
) -> Option<RowAssignment> {
    if !assign_rows_fill_in(dfg, spec, group, s) {
        return None;
    }
    Some(RowAssignment {
        rows: group
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, s.row_of[i] as usize))
            .collect(),
    })
}

/// Core placement behind [`assign_rows_in`]: fills `s.row_of` and reports
/// feasibility without materializing a [`RowAssignment`] — the legality
/// predicates only ask whether the group fits.
#[must_use]
pub(crate) fn assign_rows_fill_in(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    s: &mut LegalityScratch,
) -> bool {
    if group.len() > spec.max_ops() {
        return false;
    }
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    let opcs = adj.opcodes();
    s.load_group(group, adj.len());

    // Topological order within the group over distance-0 edges; the queue
    // buffer doubles as the order (FIFO head never outruns the tail).
    s.indeg.clear();
    s.queue.clear();
    for &m in group {
        let d = adj
            .pred_edge_ids(m.index())
            .iter()
            .filter(|&&ei| {
                let e = &edges[ei as usize];
                e.distance == 0 && bit(&s.set, e.src.index())
            })
            .count();
        s.indeg.push(d as u32);
    }
    for i in 0..group.len() {
        if s.indeg[i] == 0 {
            s.queue.push(i as u32);
        }
    }
    let mut head = 0usize;
    while head < s.queue.len() {
        let i = s.queue[head] as usize;
        head += 1;
        for &ei in adj.succ_edge_ids(group[i].index()) {
            let e = &edges[ei as usize];
            if e.distance == 0 && bit(&s.set, e.dst.index()) {
                let j = s.pos[e.dst.index()] as usize;
                s.indeg[j] -= 1;
                if s.indeg[j] == 0 {
                    s.queue.push(j as u32);
                }
            }
        }
    }
    if s.queue.len() != group.len() {
        return false; // distance-0 cycle inside the group
    }

    const UNPLACED: u32 = u32::MAX;
    s.row_of.clear();
    s.row_of.resize(group.len(), UNPLACED);
    s.row_load.clear();
    s.row_load.resize(spec.depth(), 0);
    for qi in 0..s.queue.len() {
        let i = s.queue[qi] as usize;
        let m = group[i];
        let mut min_row = 0usize;
        for &ei in adj.pred_edge_ids(m.index()) {
            let e = &edges[ei as usize];
            if e.distance == 0 && bit(&s.set, e.src.index()) {
                let r = s.row_of[s.pos[e.src.index()] as usize] as usize + 1;
                min_row = min_row.max(r);
            }
        }
        let needs_arith = Opcode::decode(opcs[m.index()])
            .expect("member is an op")
            .cca_arithmetic();
        let mut placed = false;
        for r in min_row..spec.depth() {
            if needs_arith && !spec.row_supports_arith(r) {
                continue;
            }
            if s.row_load[r] as usize >= spec.row_caps[r] {
                continue;
            }
            s.row_of[i] = r as u32;
            s.row_load[r] += 1;
            placed = true;
            break;
        }
        if !placed {
            return false;
        }
    }
    true
}

/// Whether `group` is convex: no distance-0 path leaves the group and
/// re-enters it. A non-convex group cannot execute atomically because an
/// external op would need a group output before the group finishes.
///
/// Reads the cached distance-0 reachability closure: the group is
/// non-convex exactly when some *external* node both is reachable from a
/// member and reaches a member (split any witnessing path at the last
/// member before the external node and the first member after it — the
/// external segments are the escape and the re-entry).
#[must_use]
pub fn is_convex(cond: &Condensation, group: &[OpId]) -> bool {
    if data_oriented_enabled() {
        is_convex_in(cond, group, &mut LegalityScratch::new())
    } else {
        is_convex_reference(cond, group)
    }
}

/// Allocation-per-call [`is_convex`], retained as the reference.
#[must_use]
pub fn is_convex_reference(cond: &Condensation, group: &[OpId]) -> bool {
    let words = cond.reach0().words_per_row();
    if words == 0 {
        return true;
    }
    let member = mask_of(group, words);
    // Everything reachable from the group (reflexivity contributes only
    // member bits, masked off below).
    let mut out = vec![0u64; words];
    for &m in group {
        for (o, &r) in out.iter_mut().zip(cond.reach0_row(m)) {
            *o |= r;
        }
    }
    for (o, &m) in out.iter_mut().zip(&member) {
        *o &= !m;
    }
    for (w, &word) in out.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let x = w * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            if cond.reach0().row_intersects(x, &member) {
                return false;
            }
        }
    }
    true
}

/// [`is_convex`] over a caller-owned scratch.
#[must_use]
pub fn is_convex_in(cond: &Condensation, group: &[OpId], s: &mut LegalityScratch) -> bool {
    let words = cond.reach0().words_per_row();
    if words == 0 {
        return true;
    }
    s.set.clear();
    s.set.resize(words, 0);
    for &g in group {
        set_bit(&mut s.set, g.index());
    }
    s.wa.clear();
    s.wa.resize(words, 0);
    for &m in group {
        for (o, &r) in s.wa.iter_mut().zip(cond.reach0_row(m)) {
            *o |= r;
        }
    }
    for (o, &m) in s.wa.iter_mut().zip(&s.set) {
        *o &= !m;
    }
    for w in 0..words {
        let mut word = s.wa[w];
        while word != 0 {
            let x = w * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            if cond.reach0().row_intersects(x, &s.set) {
                return false;
            }
        }
    }
    true
}

/// Whether collapsing `group` avoids lengthening any recurrence cycle.
///
/// A group's ops execute in [`CcaSpec::latency`] cycles total. If the group
/// contains exactly one op of some recurrence, that recurrence's path now
/// pays the full CCA latency instead of one cycle — the paper's op-7/op-10
/// rejection. Two or more *connected* ops of the same recurrence break
/// even or win.
///
/// `cond` must be the graph's cached condensation
/// ([`Dfg::condensation`]); only cyclic components matter.
#[must_use]
pub fn recurrences_ok(dfg: &Dfg, spec: &CcaSpec, group: &[OpId], cond: &Condensation) -> bool {
    if data_oriented_enabled() {
        recurrences_ok_in(dfg, spec, group, cond, &mut LegalityScratch::new())
    } else {
        recurrences_ok_reference(dfg, spec, group, cond)
    }
}

/// Allocation-per-call [`recurrences_ok`], retained as the reference.
#[must_use]
pub fn recurrences_ok_reference(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    cond: &Condensation,
) -> bool {
    let words = dfg.len().div_ceil(64);
    let set = mask_of(group, words);
    for (ci, scc) in cond.comps().iter().enumerate() {
        if !cond.is_cyclic(ci) {
            continue;
        }
        let inside: Vec<OpId> = scc
            .iter()
            .copied()
            .filter(|m| bit(&set, m.index()))
            .collect();
        if inside.is_empty() {
            continue;
        }
        // The members on this recurrence must amortize the CCA latency.
        if (inside.len() as u32) < spec.latency {
            return false;
        }
        // And they must be contiguous (weakly connected via distance-0 edges
        // within the group ∩ SCC) so the cycle passes through the CCA once.
        if !weakly_connected_reference(dfg, &inside) {
            return false;
        }
    }
    true
}

/// [`recurrences_ok`] over a caller-owned scratch.
#[must_use]
pub fn recurrences_ok_in(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    cond: &Condensation,
    s: &mut LegalityScratch,
) -> bool {
    recurrences_ok_parts(dfg, spec, group, cond.comps(), cond.cyclic_flags(), s)
}

/// The recurrence rule against an explicit SCC partition, for callers that
/// computed components without a full [`Condensation`] (see
/// [`is_legal_group_current`]).
fn recurrences_ok_parts(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    comps: &[Vec<OpId>],
    cyclic: &[bool],
    s: &mut LegalityScratch,
) -> bool {
    let adj = dfg.adjacency();
    s.load_group(group, adj.len());
    for (ci, scc) in comps.iter().enumerate() {
        if !cyclic[ci] {
            continue;
        }
        // group ∩ scc, collected into the work buffer.
        s.work.clear();
        for &m in scc {
            if bit(&s.set, m.index()) {
                s.work.push(m.index() as u32);
            }
        }
        if s.work.is_empty() {
            continue;
        }
        if (s.work.len() as u32) < spec.latency {
            return false;
        }
        if !weakly_connected_in(dfg, s) {
            return false;
        }
    }
    true
}

fn weakly_connected_reference(dfg: &Dfg, nodes: &[OpId]) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    let words = dfg.len().div_ceil(64);
    let set = mask_of(nodes, words);
    let mut visited = vec![0u64; words];
    let mut work = vec![nodes[0]];
    set_bit(&mut visited, nodes[0].index());
    while let Some(x) = work.pop() {
        for e in dfg.succ_edges(x) {
            let d = e.dst.index();
            if e.distance == 0 && bit(&set, d) && !bit(&visited, d) {
                set_bit(&mut visited, d);
                work.push(e.dst);
            }
        }
        for e in dfg.pred_edges(x) {
            let s = e.src.index();
            if e.distance == 0 && bit(&set, s) && !bit(&visited, s) {
                set_bit(&mut visited, s);
                work.push(e.src);
            }
        }
    }
    count_ones(&visited) == nodes.len()
}

/// Whether the node slots in `s.work` are weakly connected via distance-0
/// edges among themselves. Consumes `s.work` as the membership list and
/// DFS stack; uses `s.wa`/`s.wb` as the member and visited masks.
fn weakly_connected_in(dfg: &Dfg, s: &mut LegalityScratch) -> bool {
    let n_nodes = s.work.len();
    if n_nodes <= 1 {
        return true;
    }
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    let words = adj.len().div_ceil(64);
    s.wa.clear();
    s.wa.resize(words, 0);
    for &v in &s.work {
        set_bit(&mut s.wa, v as usize);
    }
    s.wb.clear();
    s.wb.resize(words, 0);
    let start = s.work[0];
    s.work.clear();
    s.work.push(start);
    set_bit(&mut s.wb, start as usize);
    let mut reached = 1usize;
    while let Some(x) = s.work.pop() {
        for &ei in adj.succ_edge_ids(x as usize) {
            let e = &edges[ei as usize];
            let d = e.dst.index();
            if e.distance == 0 && bit(&s.wa, d) && !bit(&s.wb, d) {
                set_bit(&mut s.wb, d);
                reached += 1;
                s.work.push(d as u32);
            }
        }
        for &ei in adj.pred_edge_ids(x as usize) {
            let e = &edges[ei as usize];
            let src = e.src.index();
            if e.distance == 0 && bit(&s.wa, src) && !bit(&s.wb, src) {
                set_bit(&mut s.wb, src);
                reached += 1;
                s.work.push(src as u32);
            }
        }
    }
    reached == n_nodes
}

/// [`is_convex`] by direct search, without the reachability closure: BFS
/// forward over distance-0 edges from the members' *external* successors,
/// staying on external nodes; the group is non-convex exactly when the
/// search re-enters a member. (Split any closure witness `u ∈ G ⇝ x ∉ G ⇝
/// v ∈ G` at the last member before `x` and the first member after it —
/// the segments between are external-only, so this BFS finds them.)
///
/// For the thousands of trials the identify phase runs per graph the
/// cached closure amortizes and wins; for a single query against a
/// transient graph this O(V + E) walk wins.
#[must_use]
pub fn is_convex_bfs(dfg: &Dfg, group: &[OpId], s: &mut LegalityScratch) -> bool {
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    let words = adj.len().div_ceil(64);
    s.load_group(group, adj.len());
    s.wa.clear();
    s.wa.resize(words, 0);
    s.work.clear();
    for &m in group {
        for &ei in adj.succ_edge_ids(m.index()) {
            let e = &edges[ei as usize];
            let d = e.dst.index();
            if e.distance == 0 && !bit(&s.set, d) && !adj.is_dead(d) && !bit(&s.wa, d) {
                set_bit(&mut s.wa, d);
                s.work.push(d as u32);
            }
        }
    }
    while let Some(x) = s.work.pop() {
        for &ei in adj.succ_edge_ids(x as usize) {
            let e = &edges[ei as usize];
            if e.distance != 0 {
                continue;
            }
            let d = e.dst.index();
            if adj.is_dead(d) {
                continue;
            }
            if bit(&s.set, d) {
                return false; // escaped path re-enters the group
            }
            if !bit(&s.wa, d) {
                set_bit(&mut s.wa, d);
                s.work.push(d as u32);
            }
        }
    }
    true
}

/// Full legality check for a candidate group: every member CCA-supported,
/// row-assignable, within the IO budget, convex, and recurrence-safe.
#[must_use]
pub fn is_legal_group(dfg: &Dfg, spec: &CcaSpec, group: &[OpId], cond: &Condensation) -> bool {
    if data_oriented_enabled() {
        is_legal_group_in(dfg, spec, group, cond, &mut LegalityScratch::new())
    } else {
        is_legal_group_reference(dfg, spec, group, cond)
    }
}

/// Allocation-per-call [`is_legal_group`], retained as the reference.
#[must_use]
pub fn is_legal_group_reference(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    cond: &Condensation,
) -> bool {
    if group.is_empty() {
        return false;
    }
    for &m in group {
        let ok = dfg
            .node(m)
            .opcode()
            .is_some_and(|op| op.cca_supported() && !dfg.node(m).is_dead());
        if !ok {
            return false;
        }
    }
    let io = group_io_reference(dfg, group);
    if io.inputs > spec.inputs || io.outputs > spec.outputs {
        return false;
    }
    if assign_rows_reference(dfg, spec, group).is_none() {
        return false;
    }
    if !is_convex_reference(cond, group) {
        return false;
    }
    recurrences_ok_reference(dfg, spec, group, cond)
}

/// [`is_legal_group`] over a caller-owned scratch: the mapper's inner loop
/// runs this thousands of times per graph without allocating.
#[must_use]
pub fn is_legal_group_in(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    cond: &Condensation,
    s: &mut LegalityScratch,
) -> bool {
    if group.is_empty() {
        return false;
    }
    let opcs = dfg.adjacency().opcodes();
    for &m in group {
        // `NO_OP` covers pseudo nodes and tombstones in one byte probe.
        let ok = Opcode::decode(opcs[m.index()]).is_some_and(|op| op.cca_supported());
        if !ok {
            return false;
        }
    }
    let io = group_io_in(dfg, group, s);
    if io.inputs > spec.inputs || io.outputs > spec.outputs {
        return false;
    }
    if !assign_rows_fill_in(dfg, spec, group, s) {
        return false;
    }
    if !is_convex_in(cond, group, s) {
        return false;
    }
    recurrences_ok_in(dfg, spec, group, cond, s)
}

/// [`is_legal_group`] against a transient graph, with no cached
/// [`Condensation`] available: convexity runs as [`is_convex_bfs`] and the
/// recurrence rule against the graph's cached SCC membership
/// ([`veal_ir::Dfg::scc_view`]). Verdicts are identical to
/// [`is_legal_group`] on the same graph — the mapper's commit loop uses
/// this to re-validate each group against the evolving graph, where it
/// asks exactly one legality question per collapse and rebuilding the
/// closure would dwarf the query.
#[must_use]
pub fn is_legal_group_current(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    s: &mut LegalityScratch,
) -> bool {
    if group.is_empty() {
        return false;
    }
    let opcs = dfg.adjacency().opcodes();
    for &m in group {
        let ok = Opcode::decode(opcs[m.index()]).is_some_and(|op| op.cca_supported());
        if !ok {
            return false;
        }
    }
    let io = group_io_in(dfg, group, s);
    if io.inputs > spec.inputs || io.outputs > spec.outputs {
        return false;
    }
    if !assign_rows_fill_in(dfg, spec, group, s) {
        return false;
    }
    if !is_convex_bfs(dfg, group, s) {
        return false;
    }
    let scc_view = dfg.scc_view();
    recurrences_ok_membership(dfg, spec, group, &scc_view.comp_of, &scc_view.cyclic, s)
}

/// The recurrence rule against an SCC membership map (see
/// [`veal_ir::scc_membership`]) instead of materialized component lists.
/// Each recurrence intersecting the group is checked once: its group
/// members (ascending id, since `group` is sorted) must number at least
/// the CCA latency and be weakly connected — the same predicate as
/// [`recurrences_ok`], just without touching recurrences the group does
/// not meet.
fn recurrences_ok_membership(
    dfg: &Dfg,
    spec: &CcaSpec,
    group: &[OpId],
    comp_of: &[u32],
    cyclic: &[u64],
    s: &mut LegalityScratch,
) -> bool {
    for (i, &m) in group.iter().enumerate() {
        let c = comp_of[m.index()] as usize;
        if cyclic[c / 64] >> (c % 64) & 1 == 0 {
            continue;
        }
        if group[..i].iter().any(|&p| comp_of[p.index()] as usize == c) {
            continue; // this recurrence already checked
        }
        s.work.clear();
        for &g in group {
            if comp_of[g.index()] as usize == c {
                s.work.push(g.index() as u32);
            }
        }
        if (s.work.len() as u32) < spec.latency {
            return false;
        }
        if !weakly_connected_in(dfg, s) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{set_data_oriented, DfgBuilder, Opcode};

    #[test]
    fn io_counts_distinct_producers() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let y = b.live_in();
        let a = b.op(Opcode::And, &[x, y]);
        let c = b.op(Opcode::Xor, &[a, x]); // x reused: still one producer
        b.mark_live_out(c);
        let dfg = b.finish();
        let io = group_io(&dfg, &[a, c]);
        assert_eq!(io.inputs, 2);
        assert_eq!(io.outputs, 1);
    }

    #[test]
    fn loop_carried_feedback_counts_as_io() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::Add, &[]);
        let c = b.op(Opcode::Sub, &[a]);
        b.loop_carried(c, a, 1);
        let dfg = b.finish();
        let io = group_io(&dfg, &[a, c]);
        // The distance-1 edge c->a needs a register round trip: one input
        // (from c's previous value) and one output (c's value).
        assert_eq!(io.inputs, 1);
        assert_eq!(io.outputs, 1);
    }

    #[test]
    fn row_assignment_respects_depth() {
        let spec = CcaSpec::paper();
        let mut b = DfgBuilder::new();
        let mut prev = b.op(Opcode::And, &[]);
        let mut group = vec![prev];
        for _ in 0..5 {
            prev = b.op(Opcode::Or, &[prev]);
            group.push(prev);
        }
        let dfg = b.finish();
        // A 6-deep logic chain cannot fit 4 rows.
        assert!(assign_rows(&dfg, &spec, &group).is_none());
        // But a 4-deep chain can.
        assert!(assign_rows(&dfg, &spec, &group[..4]).is_some());
    }

    #[test]
    fn arithmetic_lands_on_arith_rows() {
        let spec = CcaSpec::paper();
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::And, &[]);
        let s = b.op(Opcode::Add, &[a]); // arith, min row 1 -> bumped to 2
        let dfg = b.finish();
        let rows = assign_rows(&dfg, &spec, &[a, s]).expect("fits");
        let row_of = |id| {
            rows.rows
                .iter()
                .find(|(m, _)| *m == id)
                .map(|&(_, r)| r)
                .unwrap()
        };
        assert_eq!(row_of(a), 0);
        assert_eq!(row_of(s), 2);
    }

    #[test]
    fn arith_chain_deeper_than_arith_rows_fails() {
        let spec = CcaSpec::paper();
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::Add, &[]);
        let c = b.op(Opcode::Sub, &[a]);
        let d = b.op(Opcode::Add, &[c]); // needs a third arith row: none
        let dfg = b.finish();
        assert!(assign_rows(&dfg, &spec, &[a, c, d]).is_none());
    }

    #[test]
    fn non_convex_group_detected() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::And, &[]);
        let x = b.op(Opcode::Shl, &[a]); // external (unsupported)
        let c = b.op(Opcode::Xor, &[x]);
        let dfg = b.finish();
        // Path a -> x -> c leaves {a, c} through x and re-enters.
        let cond = dfg.condensation();
        assert!(!is_convex(&cond, &[a, c]));
        assert!(is_convex(&cond, &[a]));
    }

    #[test]
    fn singleton_on_recurrence_rejected() {
        // The paper's op-7/op-10 case: merging an op that sits alone on a
        // recurrence into a 2-cycle CCA lengthens the cycle.
        let mut b = DfgBuilder::new();
        let m = b.op(Opcode::Mul, &[]);
        let o = b.op(Opcode::Or, &[m]);
        b.loop_carried(o, m, 1);
        let acyclic = b.op(Opcode::Add, &[o]);
        let dfg = b.finish();
        let cond = dfg.condensation();
        assert!(!recurrences_ok(
            &dfg,
            &CcaSpec::paper(),
            &[o, acyclic],
            &cond
        ));
    }

    #[test]
    fn two_connected_recurrence_ops_accepted() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::And, &[]);
        let c = b.op(Opcode::Xor, &[a]);
        b.loop_carried(c, a, 1);
        let dfg = b.finish();
        let cond = dfg.condensation();
        assert!(recurrences_ok(&dfg, &CcaSpec::paper(), &[a, c], &cond));
    }

    #[test]
    fn legal_group_end_to_end() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let a = b.op(Opcode::And, &[x, x]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let o = b.op(Opcode::Xor, &[s, a]);
        b.mark_live_out(o);
        let dfg = b.finish();
        let cond = dfg.condensation();
        assert!(is_legal_group(&dfg, &CcaSpec::paper(), &[a, s, o], &cond));
        // A group including the live-in pseudo node is not legal.
        assert!(!is_legal_group(&dfg, &CcaSpec::paper(), &[x, a], &cond));
    }

    #[test]
    fn too_many_inputs_rejected() {
        let mut b = DfgBuilder::new();
        let ins: Vec<_> = (0..5).map(|_| b.live_in()).collect();
        let a = b.op(Opcode::And, &[ins[0], ins[1]]);
        let c = b.op(Opcode::Or, &[ins[2], ins[3]]);
        let d = b.op(Opcode::Xor, &[a, c]);
        let e = b.op(Opcode::Add, &[d, ins[4]]);
        let dfg = b.finish();
        let cond = dfg.condensation();
        // 5 distinct external producers > 4 CCA inputs.
        assert!(!is_legal_group(
            &dfg,
            &CcaSpec::paper(),
            &[a, c, d, e],
            &cond
        ));
    }

    /// Fast and reference paths agree on a mixed bag of random groups.
    #[test]
    fn fast_and_reference_paths_agree() {
        let mut rng = veal_ir::rng::Rng64::new(0xCCA);
        for _ in 0..60 {
            let mut b = DfgBuilder::new();
            let mut vals = vec![b.live_in()];
            let ops = [
                Opcode::And,
                Opcode::Or,
                Opcode::Xor,
                Opcode::Add,
                Opcode::Sub,
                Opcode::Shl,
                Opcode::Mul,
            ];
            for _ in 0..rng.gen_range(4, 14) {
                let op = ops[rng.gen_range(0, ops.len())];
                let a = vals[rng.gen_range(0, vals.len())];
                let c = vals[rng.gen_range(0, vals.len())];
                vals.push(b.op(op, &[a, c]));
            }
            if vals.len() > 2 && rng.gen_bool(0.5) {
                let src = vals[vals.len() - 1];
                let dst = vals[1];
                b.loop_carried(src, dst, 1);
            }
            let last = *vals.last().unwrap();
            b.mark_live_out(last);
            let dfg = b.finish();
            let cond = dfg.condensation();
            let spec = CcaSpec::paper();
            let mut s = LegalityScratch::new();
            for _ in 0..8 {
                let mut group: Vec<OpId> =
                    vals.iter().copied().filter(|_| rng.gen_bool(0.4)).collect();
                group.sort();
                group.dedup();
                let fast = is_legal_group_in(&dfg, &spec, &group, &cond, &mut s);
                let prev = set_data_oriented(false);
                let slow = is_legal_group(&dfg, &spec, &group, &cond);
                set_data_oriented(prev);
                assert_eq!(fast, slow, "verdict mismatch on group {group:?}");
                assert_eq!(
                    group_io_in(&dfg, &group, &mut s),
                    group_io_reference(&dfg, &group)
                );
                // `assign_rows` is only defined over op members (both
                // implementations unwrap the opcode).
                if group.iter().all(|&m| dfg.node(m).opcode().is_some()) {
                    assert_eq!(
                        assign_rows_in(&dfg, &spec, &group, &mut s),
                        assign_rows_reference(&dfg, &spec, &group)
                    );
                }
            }
        }
    }
}
