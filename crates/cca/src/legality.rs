//! Legality checks for candidate CCA subgraphs.
//!
//! Every set-membership question here is asked thousands of times per
//! loop by the seed-and-grow mapper and millions of times by the
//! exhaustive mapper, so groups are represented as packed `u64` bitmasks
//! over node slots and convexity reads the graph's cached distance-0
//! reachability closure ([`Condensation`]) instead of re-running a BFS
//! per query.

use crate::spec::CcaSpec;
use std::collections::VecDeque;
use veal_ir::{Condensation, Dfg, OpId};

/// Packed membership mask over node slots (`words` = `⌈len/64⌉`).
fn mask_of(group: &[OpId], words: usize) -> Vec<u64> {
    let mut m = vec![0u64; words];
    for &g in group {
        m[g.index() / 64] |= 1u64 << (g.index() % 64);
    }
    m
}

#[inline]
fn bit(mask: &[u64], i: usize) -> bool {
    mask[i / 64] >> (i % 64) & 1 != 0
}

#[inline]
fn set_bit(mask: &mut [u64], i: usize) {
    mask[i / 64] |= 1u64 << (i % 64);
}

fn count_ones(mask: &[u64]) -> usize {
    mask.iter().map(|w| w.count_ones() as usize).sum()
}

/// The row each member of a legal group occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowAssignment {
    /// `(member, row)` pairs.
    pub rows: Vec<(OpId, usize)>,
}

/// External interface requirements of a candidate group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupIo {
    /// Distinct external value producers feeding the group.
    pub inputs: usize,
    /// Distinct members whose value leaves the group (external consumers,
    /// live-outs, or loop-carried feedback).
    pub outputs: usize,
}

/// Counts the external inputs and outputs a group would need.
#[must_use]
pub fn group_io(dfg: &Dfg, group: &[OpId]) -> GroupIo {
    let words = dfg.len().div_ceil(64);
    let set = mask_of(group, words);
    let mut producers = vec![0u64; words];
    let mut outputs = vec![0u64; words];
    for &m in group {
        for e in dfg.pred_edges(m) {
            // A loop-carried edge from inside the group still needs a
            // register round-trip, i.e. an input port.
            if !bit(&set, e.src.index()) || e.distance > 0 {
                set_bit(&mut producers, e.src.index());
            }
        }
        for e in dfg.succ_edges(m) {
            if !bit(&set, e.dst.index()) || e.distance > 0 {
                set_bit(&mut outputs, m.index());
            }
        }
        if dfg.node(m).live_out {
            set_bit(&mut outputs, m.index());
        }
    }
    GroupIo {
        inputs: count_ones(&producers),
        outputs: count_ones(&outputs),
    }
}

/// Assigns each member to a CCA row, or `None` if the group is too deep or
/// too wide.
///
/// Members are processed in intra-group topological order; each lands on the
/// lowest row that is (a) below all its in-group producers and (b) capable
/// of its op kind (arithmetic ops need an arithmetic row), subject to
/// per-row capacity.
#[must_use]
pub fn assign_rows(dfg: &Dfg, spec: &CcaSpec, group: &[OpId]) -> Option<RowAssignment> {
    let words = dfg.len().div_ceil(64);
    let set = mask_of(group, words);
    if group.len() > spec.max_ops() {
        return None;
    }
    // Topological order within the group over distance-0 edges.
    let mut indeg: Vec<usize> = group
        .iter()
        .map(|&m| {
            dfg.pred_edges(m)
                .filter(|e| e.distance == 0 && bit(&set, e.src.index()))
                .count()
        })
        .collect();
    let index_of = |id: OpId| group.iter().position(|&g| g == id).expect("member");
    let mut queue: VecDeque<usize> = (0..group.len()).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(group.len());
    while let Some(i) = queue.pop_front() {
        order.push(group[i]);
        for e in dfg.succ_edges(group[i]) {
            if e.distance == 0 && bit(&set, e.dst.index()) {
                let j = index_of(e.dst);
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
    }
    if order.len() != group.len() {
        return None; // distance-0 cycle inside the group
    }

    let mut row_of: Vec<Option<usize>> = vec![None; group.len()];
    let mut row_load = vec![0usize; spec.depth()];
    for &m in &order {
        let min_row = dfg
            .pred_edges(m)
            .filter(|e| e.distance == 0 && bit(&set, e.src.index()))
            .map(|e| row_of[index_of(e.src)].expect("producer placed") + 1)
            .max()
            .unwrap_or(0);
        let needs_arith = dfg
            .node(m)
            .opcode()
            .expect("member is an op")
            .cca_arithmetic();
        let mut placed = false;
        for (r, load) in row_load.iter_mut().enumerate().skip(min_row) {
            if needs_arith && !spec.row_supports_arith(r) {
                continue;
            }
            if *load >= spec.row_caps[r] {
                continue;
            }
            row_of[index_of(m)] = Some(r);
            *load += 1;
            placed = true;
            break;
        }
        if !placed {
            return None;
        }
    }
    Some(RowAssignment {
        rows: group
            .iter()
            .map(|&m| (m, row_of[index_of(m)].expect("placed")))
            .collect(),
    })
}

/// Whether `group` is convex: no distance-0 path leaves the group and
/// re-enters it. A non-convex group cannot execute atomically because an
/// external op would need a group output before the group finishes.
///
/// Reads the cached distance-0 reachability closure: the group is
/// non-convex exactly when some *external* node both is reachable from a
/// member and reaches a member (split any witnessing path at the last
/// member before the external node and the first member after it — the
/// external segments are the escape and the re-entry).
#[must_use]
pub fn is_convex(cond: &Condensation, group: &[OpId]) -> bool {
    let words = cond.reach0().words_per_row();
    if words == 0 {
        return true;
    }
    let member = mask_of(group, words);
    // Everything reachable from the group (reflexivity contributes only
    // member bits, masked off below).
    let mut out = vec![0u64; words];
    for &m in group {
        for (o, &r) in out.iter_mut().zip(cond.reach0_row(m)) {
            *o |= r;
        }
    }
    for (o, &m) in out.iter_mut().zip(&member) {
        *o &= !m;
    }
    for (w, &word) in out.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let x = w * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            if cond.reach0().row_intersects(x, &member) {
                return false;
            }
        }
    }
    true
}

/// Whether collapsing `group` avoids lengthening any recurrence cycle.
///
/// A group's ops execute in [`CcaSpec::latency`] cycles total. If the group
/// contains exactly one op of some recurrence, that recurrence's path now
/// pays the full CCA latency instead of one cycle — the paper's op-7/op-10
/// rejection. Two or more *connected* ops of the same recurrence break
/// even or win.
///
/// `cond` must be the graph's cached condensation
/// ([`Dfg::condensation`]); only cyclic components matter.
#[must_use]
pub fn recurrences_ok(dfg: &Dfg, spec: &CcaSpec, group: &[OpId], cond: &Condensation) -> bool {
    let words = dfg.len().div_ceil(64);
    let set = mask_of(group, words);
    for (ci, scc) in cond.comps().iter().enumerate() {
        if !cond.is_cyclic(ci) {
            continue;
        }
        let inside: Vec<OpId> = scc
            .iter()
            .copied()
            .filter(|m| bit(&set, m.index()))
            .collect();
        if inside.is_empty() {
            continue;
        }
        // The members on this recurrence must amortize the CCA latency.
        if (inside.len() as u32) < spec.latency {
            return false;
        }
        // And they must be contiguous (weakly connected via distance-0 edges
        // within the group ∩ SCC) so the cycle passes through the CCA once.
        if !weakly_connected(dfg, &inside) {
            return false;
        }
    }
    true
}

fn weakly_connected(dfg: &Dfg, nodes: &[OpId]) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    let words = dfg.len().div_ceil(64);
    let set = mask_of(nodes, words);
    let mut visited = vec![0u64; words];
    let mut work = vec![nodes[0]];
    set_bit(&mut visited, nodes[0].index());
    while let Some(x) = work.pop() {
        for e in dfg.succ_edges(x) {
            let d = e.dst.index();
            if e.distance == 0 && bit(&set, d) && !bit(&visited, d) {
                set_bit(&mut visited, d);
                work.push(e.dst);
            }
        }
        for e in dfg.pred_edges(x) {
            let s = e.src.index();
            if e.distance == 0 && bit(&set, s) && !bit(&visited, s) {
                set_bit(&mut visited, s);
                work.push(e.src);
            }
        }
    }
    count_ones(&visited) == nodes.len()
}

/// Full legality check for a candidate group: every member CCA-supported,
/// row-assignable, within the IO budget, convex, and recurrence-safe.
#[must_use]
pub fn is_legal_group(dfg: &Dfg, spec: &CcaSpec, group: &[OpId], cond: &Condensation) -> bool {
    if group.is_empty() {
        return false;
    }
    for &m in group {
        let ok = dfg
            .node(m)
            .opcode()
            .is_some_and(|op| op.cca_supported() && !dfg.node(m).is_dead());
        if !ok {
            return false;
        }
    }
    let io = group_io(dfg, group);
    if io.inputs > spec.inputs || io.outputs > spec.outputs {
        return false;
    }
    if assign_rows(dfg, spec, group).is_none() {
        return false;
    }
    if !is_convex(cond, group) {
        return false;
    }
    recurrences_ok(dfg, spec, group, cond)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{DfgBuilder, Opcode};

    #[test]
    fn io_counts_distinct_producers() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let y = b.live_in();
        let a = b.op(Opcode::And, &[x, y]);
        let c = b.op(Opcode::Xor, &[a, x]); // x reused: still one producer
        b.mark_live_out(c);
        let dfg = b.finish();
        let io = group_io(&dfg, &[a, c]);
        assert_eq!(io.inputs, 2);
        assert_eq!(io.outputs, 1);
    }

    #[test]
    fn loop_carried_feedback_counts_as_io() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::Add, &[]);
        let c = b.op(Opcode::Sub, &[a]);
        b.loop_carried(c, a, 1);
        let dfg = b.finish();
        let io = group_io(&dfg, &[a, c]);
        // The distance-1 edge c->a needs a register round trip: one input
        // (from c's previous value) and one output (c's value).
        assert_eq!(io.inputs, 1);
        assert_eq!(io.outputs, 1);
    }

    #[test]
    fn row_assignment_respects_depth() {
        let spec = CcaSpec::paper();
        let mut b = DfgBuilder::new();
        let mut prev = b.op(Opcode::And, &[]);
        let mut group = vec![prev];
        for _ in 0..5 {
            prev = b.op(Opcode::Or, &[prev]);
            group.push(prev);
        }
        let dfg = b.finish();
        // A 6-deep logic chain cannot fit 4 rows.
        assert!(assign_rows(&dfg, &spec, &group).is_none());
        // But a 4-deep chain can.
        assert!(assign_rows(&dfg, &spec, &group[..4]).is_some());
    }

    #[test]
    fn arithmetic_lands_on_arith_rows() {
        let spec = CcaSpec::paper();
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::And, &[]);
        let s = b.op(Opcode::Add, &[a]); // arith, min row 1 -> bumped to 2
        let dfg = b.finish();
        let rows = assign_rows(&dfg, &spec, &[a, s]).expect("fits");
        let row_of = |id| {
            rows.rows
                .iter()
                .find(|(m, _)| *m == id)
                .map(|&(_, r)| r)
                .unwrap()
        };
        assert_eq!(row_of(a), 0);
        assert_eq!(row_of(s), 2);
    }

    #[test]
    fn arith_chain_deeper_than_arith_rows_fails() {
        let spec = CcaSpec::paper();
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::Add, &[]);
        let c = b.op(Opcode::Sub, &[a]);
        let d = b.op(Opcode::Add, &[c]); // needs a third arith row: none
        let dfg = b.finish();
        assert!(assign_rows(&dfg, &spec, &[a, c, d]).is_none());
    }

    #[test]
    fn non_convex_group_detected() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::And, &[]);
        let x = b.op(Opcode::Shl, &[a]); // external (unsupported)
        let c = b.op(Opcode::Xor, &[x]);
        let dfg = b.finish();
        // Path a -> x -> c leaves {a, c} through x and re-enters.
        let cond = dfg.condensation();
        assert!(!is_convex(&cond, &[a, c]));
        assert!(is_convex(&cond, &[a]));
    }

    #[test]
    fn singleton_on_recurrence_rejected() {
        // The paper's op-7/op-10 case: merging an op that sits alone on a
        // recurrence into a 2-cycle CCA lengthens the cycle.
        let mut b = DfgBuilder::new();
        let m = b.op(Opcode::Mul, &[]);
        let o = b.op(Opcode::Or, &[m]);
        b.loop_carried(o, m, 1);
        let acyclic = b.op(Opcode::Add, &[o]);
        let dfg = b.finish();
        let cond = dfg.condensation();
        assert!(!recurrences_ok(
            &dfg,
            &CcaSpec::paper(),
            &[o, acyclic],
            &cond
        ));
    }

    #[test]
    fn two_connected_recurrence_ops_accepted() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::And, &[]);
        let c = b.op(Opcode::Xor, &[a]);
        b.loop_carried(c, a, 1);
        let dfg = b.finish();
        let cond = dfg.condensation();
        assert!(recurrences_ok(&dfg, &CcaSpec::paper(), &[a, c], &cond));
    }

    #[test]
    fn legal_group_end_to_end() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let a = b.op(Opcode::And, &[x, x]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let o = b.op(Opcode::Xor, &[s, a]);
        b.mark_live_out(o);
        let dfg = b.finish();
        let cond = dfg.condensation();
        assert!(is_legal_group(&dfg, &CcaSpec::paper(), &[a, s, o], &cond));
        // A group including the live-in pseudo node is not legal.
        assert!(!is_legal_group(&dfg, &CcaSpec::paper(), &[x, a], &cond));
    }

    #[test]
    fn too_many_inputs_rejected() {
        let mut b = DfgBuilder::new();
        let ins: Vec<_> = (0..5).map(|_| b.live_in()).collect();
        let a = b.op(Opcode::And, &[ins[0], ins[1]]);
        let c = b.op(Opcode::Or, &[ins[2], ins[3]]);
        let d = b.op(Opcode::Xor, &[a, c]);
        let e = b.op(Opcode::Add, &[d, ins[4]]);
        let dfg = b.finish();
        let cond = dfg.condensation();
        // 5 distinct external producers > 4 CCA inputs.
        assert!(!is_legal_group(
            &dfg,
            &CcaSpec::paper(),
            &[a, c, d, e],
            &cond
        ));
    }
}
