//! CCA hardware parameters.

use std::fmt;

/// Parameters of a CCA instance.
///
/// The default [`CcaSpec::paper`] matches the paper's §3.1 description:
/// 4 inputs, 2 outputs, 15 ops across 4 rows (rows 0 and 2 execute simple
/// arithmetic *and* logic; rows 1 and 3 execute only logic), 2-cycle
/// latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcaSpec {
    /// Number of external input operands.
    pub inputs: usize,
    /// Number of external result outputs.
    pub outputs: usize,
    /// Capacity of each row, top to bottom.
    pub row_caps: Vec<usize>,
    /// Whether each row can execute arithmetic (otherwise logic only).
    pub arith_rows: Vec<bool>,
    /// Latency of one CCA invocation in cycles.
    pub latency: u32,
}

impl CcaSpec {
    /// The paper's CCA: 4 in, 2 out, 15 ops in 4 rows, 2-cycle latency.
    ///
    /// # Example
    ///
    /// ```
    /// use veal_cca::CcaSpec;
    /// let spec = CcaSpec::paper();
    /// assert_eq!(spec.max_ops(), 15);
    /// assert_eq!(spec.depth(), 4);
    /// ```
    #[must_use]
    pub fn paper() -> Self {
        CcaSpec {
            inputs: 4,
            outputs: 2,
            row_caps: vec![6, 4, 3, 2],
            arith_rows: vec![true, false, true, false],
            latency: 2,
        }
    }

    /// A narrower CCA (2 rows, 8 ops) used for forward-compatibility tests:
    /// statically identified subgraphs that don't fit simply execute as
    /// individual ops (paper §4.2, "Static CCA Identification").
    #[must_use]
    pub fn narrow() -> Self {
        CcaSpec {
            inputs: 3,
            outputs: 1,
            row_caps: vec![5, 3],
            arith_rows: vec![true, false],
            latency: 1,
        }
    }

    /// Maximum number of ops a single invocation can contain.
    #[must_use]
    pub fn max_ops(&self) -> usize {
        self.row_caps.iter().sum()
    }

    /// Number of rows.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.row_caps.len()
    }

    /// Whether row `r` supports arithmetic ops.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row_supports_arith(&self, r: usize) -> bool {
        self.arith_rows[r]
    }

    /// Stable fingerprint over the full CCA shape (inputs, outputs, row
    /// capacities, per-row arithmetic capability, latency). Used to key
    /// memoized translation results in the sweep engine.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = veal_ir::rng::Fnv64::new();
        h.write_u64(self.inputs as u64);
        h.write_u64(self.outputs as u64);
        h.write_u64(self.row_caps.len() as u64);
        for (&cap, &arith) in self.row_caps.iter().zip(&self.arith_rows) {
            h.write_u64(cap as u64);
            h.write_u8(u8::from(arith));
        }
        h.write_u64(u64::from(self.latency));
        h.finish()
    }
}

impl Default for CcaSpec {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for CcaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CCA[{} in, {} out, {} ops / {} rows, {} cy]",
            self.inputs,
            self.outputs,
            self.max_ops(),
            self.depth(),
            self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_section_3_1() {
        let s = CcaSpec::paper();
        assert_eq!(s.inputs, 4);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.max_ops(), 15);
        assert_eq!(s.depth(), 4);
        assert_eq!(s.latency, 2);
        assert!(s.row_supports_arith(0));
        assert!(!s.row_supports_arith(1));
        assert!(s.row_supports_arith(2));
        assert!(!s.row_supports_arith(3));
    }

    #[test]
    fn narrow_spec_is_smaller() {
        let n = CcaSpec::narrow();
        assert!(n.max_ops() < CcaSpec::paper().max_ops());
        assert!(n.depth() < CcaSpec::paper().depth());
    }

    #[test]
    fn display_mentions_shape() {
        assert!(CcaSpec::paper().to_string().contains("4 in"));
    }

    #[test]
    fn fingerprint_distinguishes_shapes() {
        assert_eq!(
            CcaSpec::paper().fingerprint(),
            CcaSpec::paper().fingerprint()
        );
        assert_ne!(
            CcaSpec::paper().fingerprint(),
            CcaSpec::narrow().fingerprint()
        );
        let mut slower = CcaSpec::paper();
        slower.latency += 1;
        assert_ne!(CcaSpec::paper().fingerprint(), slower.fingerprint());
    }
}
