//! The combinational compute accelerator (CCA) and its subgraph mapper.
//!
//! The paper's CCA (§3.1, after Clark et al. \[5\]) is a combinational
//! structure with **4 inputs, 2 outputs**, that executes **up to 15
//! RISC ops in 4 rows within 2 clock cycles**; rows 1 and 3 execute simple
//! arithmetic (add, subtract, comparison) and bitwise logic, rows 2 and 4
//! execute only bitwise logic. Shifts, multiplies, floating point, and
//! memory ops are not supported.
//!
//! Optimal CCA utilization is NP-complete, so VEAL uses the paper's greedy
//! seed-and-grow heuristic (§4.1): seeds are examined in numerical order,
//! each seed is recursively grown along its dataflow edges, and growth that
//! would lengthen a recurrence cycle is rejected (the paper's op-7/op-10
//! example).
//!
//! # Example
//!
//! ```
//! use veal_cca::{map_cca, CcaSpec};
//! use veal_ir::{CostMeter, DfgBuilder, Opcode};
//!
//! let mut b = DfgBuilder::new();
//! let x = b.load_stream(0);
//! let a = b.op(Opcode::And, &[x, x]);
//! let s = b.op(Opcode::Sub, &[a, x]);
//! let o = b.op(Opcode::Xor, &[s, a]);
//! b.store_stream(1, o);
//! let mut dfg = b.finish();
//!
//! let mut meter = CostMeter::new();
//! let groups = map_cca(&mut dfg, &CcaSpec::paper(), &mut meter);
//! assert_eq!(groups.len(), 1);
//! assert_eq!(groups[0].members.len(), 3);
//! ```

pub mod legality;
pub mod mapper;
pub mod optimal;
pub mod spec;

pub use legality::{
    group_io, is_legal_group, is_legal_group_current, is_legal_group_in, is_legal_group_reference,
    GroupIo, LegalityScratch, RowAssignment,
};
pub use mapper::{identify_groups, map_cca, CcaGroup};
pub use optimal::{coverage, optimal_groups};
pub use spec::CcaSpec;
