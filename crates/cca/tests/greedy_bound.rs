//! Seeded-corpus bound on the greedy CCA mapper's coverage loss.
//!
//! The paper uses the greedy seed-and-grow heuristic because optimal CCA
//! utilization is NP-complete; [`veal_cca::optimal_groups`] provides the
//! exhaustive reference on small graphs. This corpus pins the bound
//! documented on `optimal_groups`: greedy coverage never exceeds optimal,
//! it reaches at least two thirds of optimal in aggregate, and the graphs
//! where it finds *nothing* despite an existing legal grouping (possible,
//! because seed-and-grow only walks dataflow edges and cannot see legal
//! groupings of disconnected ops) stay rare.

use veal_ir::rng::Rng64;
use veal_ir::{CostMeter, Dfg, DfgBuilder, OpId, Opcode};

const CASES: u64 = 200;

/// A random mostly-CCA-supported dataflow graph, small enough for the
/// exhaustive mapper (≤ 12 candidate ops), with occasional unsupported
/// ops, fan-out, and a loop-carried edge thrown in.
fn corpus_dfg(case: u64) -> Dfg {
    let mut rng = Rng64::new(case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xCCA);
    let supported = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Min,
        Opcode::Max,
    ];
    let unsupported = [Opcode::Mul, Opcode::Shl];
    let mut b = DfgBuilder::new();
    let n = rng.gen_range(4, 13);
    let mut ids: Vec<OpId> = Vec::new();
    for i in 0..n {
        let op = if rng.gen_bool(0.85) {
            supported[rng.gen_range(0, supported.len())]
        } else {
            unsupported[rng.gen_range(0, unsupported.len())]
        };
        let mut inputs: Vec<OpId> = Vec::new();
        if i > 0 {
            for _ in 0..rng.gen_range(0, 3) {
                inputs.push(ids[rng.gen_range(0, ids.len())]);
            }
        }
        ids.push(b.op(op, &inputs));
    }
    if rng.gen_bool(0.3) {
        let src = ids[rng.gen_range(0, ids.len())];
        let dst = ids[rng.gen_range(0, ids.len())];
        b.loop_carried(src, dst, 1);
    }
    b.finish()
}

#[test]
fn greedy_coverage_within_documented_bound_of_optimal() {
    let spec = veal_cca::CcaSpec::paper();
    let mut compared = 0u32;
    let mut empty_handed = 0u32;
    let mut greedy_total = 0usize;
    let mut optimal_total = 0usize;
    for case in 0..CASES {
        let dfg = corpus_dfg(case);
        let Some(opt) = veal_cca::optimal_groups(&dfg, &spec, &mut CostMeter::new()) else {
            continue; // too many candidates for the exhaustive mapper
        };
        let greedy = veal_cca::identify_groups(&dfg, &spec, &mut CostMeter::new());
        let g = veal_cca::coverage(&greedy);
        let o = veal_cca::coverage(&opt);
        assert!(
            g <= o,
            "case {case}: greedy covered {g} ops but the optimum is {o}"
        );
        if o > 0 && g == 0 {
            empty_handed += 1;
        }
        compared += 1;
        greedy_total += g;
        optimal_total += o;
    }
    assert!(compared > 150, "corpus degenerated: {compared} cases");
    // The documented aggregate bound: greedy keeps at least two thirds of
    // the optimal coverage over the corpus (measured: ~71%).
    assert!(
        greedy_total * 3 >= optimal_total * 2,
        "greedy coverage {greedy_total}/{optimal_total} fell below 2/3 on aggregate"
    );
    // Total misses (legal grouping exists, greedy finds none) stay rare:
    // they require legal groupings of ops with no connecting dataflow.
    assert!(
        empty_handed * 10 <= compared,
        "greedy found nothing on {empty_handed}/{compared} graphs with coverage available"
    );
}
