//! # VEAL — Virtualized Execution Accelerator for Loops
//!
//! A full reproduction of Clark, Hormati & Mahlke, *"VEAL: Virtualized
//! Execution Accelerator for Loops"*, ISCA 2008.
//!
//! VEAL decouples a processor's instruction set from its loop
//! accelerators: loops are shipped in the baseline ISA and a co-designed
//! virtual machine maps them onto whatever accelerator is present, using
//! modulo scheduling. The expensive translation phases (scheduling
//! priority, CCA subgraph identification) can be computed statically and
//! carried in the binary without breaking compatibility.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`ir`] | baseline ISA, CFG/DFG, loop analysis, cost meter |
//! | [`opt`] | static transforms: inline, if-convert, re-roll, fission |
//! | [`cca`] | the combinational compute accelerator and its mapper |
//! | [`accel`] | loop-accelerator machine descriptions and area model |
//! | [`sched`] | Swing/height modulo scheduling, register assignment |
//! | [`exec`] | LoopVM: the native host execution backend (scalar + lane-vectorized) |
//! | [`vm`] | binary format, hints, code cache, dynamic translator |
//! | [`sim`] | CPU/LA timing models and the speedup engine |
//! | [`workloads`] | the 27-application benchmark suite |
//! | [`obs`] | structured tracing, metrics registry, phase profiling |
//! | [`serve`] | multi-tenant translation service: sharded memo, single-flight, admission control |
//!
//! # Quickstart
//!
//! Translate one loop and run a whole application:
//!
//! ```
//! use veal::{System, TranslationPolicy};
//!
//! let system = System::paper(TranslationPolicy::static_hints());
//! let app = veal::workloads::application("rawcaudio").expect("known app");
//! let run = system.run(&app);
//! assert!(run.speedup() > 1.0);
//! ```

pub use veal_accel as accel;
pub use veal_cca as cca;
pub use veal_exec as exec;
pub use veal_ir as ir;
pub use veal_obs as obs;
pub use veal_opt as opt;
pub use veal_sched as sched;
pub use veal_serve as serve;
pub use veal_sim as sim;
pub use veal_vm as vm;
pub use veal_workloads as workloads;

pub mod paper_example;
pub mod system;

pub use paper_example::{figure5_loop, Figure5Ids};
pub use system::System;

// The names a user reaches for first, re-exported flat.
pub use veal_accel::{AcceleratorConfig, AcceleratorFamily, AxisRange, LatencyModel};
pub use veal_cca::CcaSpec;
pub use veal_exec::{ExecutableLoop, DEFAULT_LANES};
pub use veal_ir::{
    classify_loop, CostMeter, Dfg, DfgBuilder, LoopBody, LoopClass, LoopProfile, OpId, Opcode,
    Phase,
};
pub use veal_obs::{parse_jsonl, Event, JsonlSink, NullSink, RingSink, Trace, TraceSink};
pub use veal_opt::{legalize, RawLoop, TransformLimits};
pub use veal_sched::{modulo_schedule, ScheduleOptions, ScheduledLoop};
pub use veal_serve::{
    CheckpointPolicy, ClientOutcome, LoadSpec, NetConfig, NetReport, NetServer, ServeConfig,
    ServeReport, TranslationService, WireClient,
};
pub use veal_sim::{run_application, AccelSetup, AppRun, CpuModel, SweepContext};
pub use veal_vm::{
    check_degradation, check_restore, compute_hints, decode_module, decode_translated_loop,
    encode_module, encode_translated_loop, encode_warm_state, exposed_translator, fold_vm_stats,
    inspect_snapshot, restore_warm_state, save_atomic, section_ranges, snapshot_section_ranges,
    BinaryModule, DecodeError, DegradeReason, EncodeError, EncodedLoop, FaultVerdict, HintError,
    HintFuzzer, HintVerdict, RestoreReport, SnapshotFuzzer, SnapshotInfo, StaticHints,
    TranslationPolicy, Translator, VmSession, VmStats,
};
