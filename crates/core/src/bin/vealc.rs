//! `vealc` — a command-line front end for the VEAL translator.
//!
//! ```text
//! vealc translate <loop.vasm> [--policy dynamic|height|static] [--no-cca]
//! vealc pack <loop.vasm>... -o <module.veal>     # encode, with hints
//! vealc dump <module.veal>                       # disassemble a module
//! vealc run <module.veal> [--lanes W] [--trips N] [--policy ...]
//!                                                # execute on the LoopVM backend
//! vealc suite [--policy ...]                     # run the benchmark suite
//! vealc stats <trace.jsonl>                      # summarize a --trace-out file
//! vealc serve [--requests N] [--tenants T] [--threads K] [--trace-out F]
//! vealc serve --listen <addr> [--threads K] [--trace-out F] [--checkpoint F] [--idle-ms MS]
//! vealc client <addr> [--requests N] [--tenants T] [--shutdown]
//! vealc snapshot save <out.vsnp> [--requests N] [--tenants T]
//! vealc snapshot inspect <file.vsnp>
//! vealc snapshot restore <file.vsnp> [--requests N] [--tenants T]
//! ```
//!
//! Loop files use the textual assembly format of `veal::ir::asm` (see the
//! module docs; `vealc translate --example` prints one).

use std::io::Read as _;
use std::process::ExitCode;
use veal::ir::asm::{parse_asm, to_asm};
use veal::sched::render_mrt;
use veal::{compute_hints, AcceleratorConfig, CcaSpec, StaticHints, System, TranslationPolicy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: vealc <translate|pack|dump|run|suite|stats|serve|snapshot> ...");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "translate" => translate(rest),
        "pack" => pack(rest),
        "dump" => dump(rest),
        "run" => run(rest),
        "suite" => suite(rest),
        "stats" => stats(rest),
        "serve" => serve(rest),
        "client" => client(rest),
        "snapshot" => snapshot(rest),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vealc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn policy_from(rest: &[String]) -> Result<TranslationPolicy, String> {
    match rest
        .iter()
        .position(|a| a == "--policy")
        .map(|i| rest.get(i + 1).map(String::as_str))
    {
        None => Ok(TranslationPolicy::static_hints()),
        Some(Some("dynamic")) => Ok(TranslationPolicy::fully_dynamic()),
        Some(Some("height")) => Ok(TranslationPolicy::fully_dynamic_height()),
        Some(Some("static")) => Ok(TranslationPolicy::static_hints()),
        Some(other) => Err(format!(
            "--policy expects dynamic|height|static, got {other:?}"
        )),
    }
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

const EXAMPLE: &str =
    "; dot_product\n%0 = ld.s0\n%1 = ld.s1\n%2 = fmul %0, %1\n%3 = fadd %2, %3@1\nout %3\n";

fn translate(rest: &[String]) -> Result<(), String> {
    if rest.iter().any(|a| a == "--example") {
        print!("{EXAMPLE}");
        return Ok(());
    }
    // The first positional argument that is neither a flag nor a flag's
    // value is the input path.
    let mut path: Option<&String> = None;
    let mut skip_next = false;
    for a in rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--policy" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        path = Some(a);
        break;
    }
    let path = path.ok_or("translate needs a .vasm file (or `-` for stdin)")?;
    let body = parse_asm(&read_input(path)?).map_err(|e| e.to_string())?;
    let policy = policy_from(rest)?;
    let no_cca = rest.iter().any(|a| a == "--no-cca");

    let mut config = AcceleratorConfig::paper_design();
    let cca = if no_cca {
        config.cca_units = 0;
        None
    } else {
        Some(CcaSpec::paper())
    };
    let hints = if policy.static_cca || policy.static_priority {
        compute_hints(&body, &config, cca.as_ref())
    } else {
        StaticHints::none()
    };
    let mut setup = veal::AccelSetup::paper(policy);
    setup.config = config.clone();
    setup.cca = cca;
    let system = System::new(veal::CpuModel::arm11(), setup);

    println!("; input");
    print!("{}", to_asm(&body));
    let out = system.translate_loop(&body, &hints);
    let cost = out.cost();
    match out.result {
        Ok(t) => {
            println!(
                "\n; mapped: II={} SC={} streams={}+{} cca_groups={}",
                t.scheduled.schedule.ii,
                t.scheduled.schedule.stage_count(),
                t.streams.loads,
                t.streams.stores,
                t.cca_groups,
            );
            println!("; registers: {}", t.scheduled.registers.pressure);
            println!("; translation cost: {cost} abstract instructions\n");
            // Rebuild the accelerator view to label the grid.
            let sep = veal::ir::streams::separate(&body.dfg, &mut veal::CostMeter::new())
                .map_err(|e| e.to_string())?;
            let mut dfg = sep.dfg;
            if let Some(spec) = &system.setup().cca {
                veal::cca::map_cca(&mut dfg, spec, &mut veal::CostMeter::new());
            }
            print!("{}", render_mrt(&dfg, &t.scheduled.schedule, &config));
            Ok(())
        }
        Err(e) => {
            println!("\n; not mapped ({e}); the loop runs on the CPU");
            println!("; translation cost: {cost} abstract instructions");
            Ok(())
        }
    }
}

fn pack(rest: &[String]) -> Result<(), String> {
    let out_pos = rest
        .iter()
        .position(|a| a == "-o")
        .ok_or("pack needs `-o <module.veal>`")?;
    let out_path = rest.get(out_pos + 1).ok_or("pack needs a path after -o")?;
    let inputs: Vec<&String> = rest[..out_pos]
        .iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    if inputs.is_empty() {
        return Err("pack needs at least one .vasm input".into());
    }
    let config = AcceleratorConfig::paper_design();
    let with_hints = !rest.iter().any(|a| a == "--no-hints");
    let mut module = veal::BinaryModule::default();
    for path in inputs {
        let body = parse_asm(&read_input(path)?).map_err(|e| format!("{path}: {e}"))?;
        let hints = if with_hints {
            compute_hints(&body, &config, Some(&CcaSpec::paper()))
        } else {
            StaticHints::none()
        };
        module.loops.push(veal::EncodedLoop {
            body,
            priority_hint: hints.priority,
            cca_hint: hints.cca_groups,
            // Hinted binaries declare the family their hints were tuned
            // for, so a family-keyed VM knows the payload matches its memo.
            family_hint: with_hints.then(|| veal::AcceleratorFamily::point(&config).fingerprint()),
        });
    }
    let bytes = veal::encode_module(&module);
    std::fs::write(out_path, &bytes).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "packed {} loop(s) into {out_path} ({} bytes{})",
        module.loops.len(),
        bytes.len(),
        if with_hints { ", hinted" } else { "" }
    );
    Ok(())
}

fn dump(rest: &[String]) -> Result<(), String> {
    let path = rest.first().ok_or("dump needs a .veal module")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let module = veal::decode_module(&bytes).map_err(|e| e.to_string())?;
    print!("{}", veal::vm::disassemble(&module));
    Ok(())
}

/// `vealc run <module.veal>` — executes every loop of a packed module on
/// the LoopVM host backend (`veal::exec`) over the golden fixture
/// inputs, differentially against the reference interpreter: for each
/// loop the interpreter, scalar LoopVM, and lane-mode checksums must
/// agree, or the command fails. The command-line face of the measured
/// (as opposed to analytic) execution path.
fn run(rest: &[String]) -> Result<(), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("run needs a .veal module")?;
    let num_flag = |name: &str| -> Result<Option<u64>, String> {
        match rest.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => rest
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .map(Some)
                .ok_or_else(|| format!("{name} expects a number")),
        }
    };
    let trips = num_flag("--trips")?.unwrap_or(veal::workloads::FIXTURE_ITERATIONS);
    let lanes = usize::try_from(num_flag("--lanes")?.unwrap_or(veal::DEFAULT_LANES as u64))
        .map_err(|_| "--lanes out of range")?
        .max(1);
    let policy = policy_from(rest)?;

    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let module = veal::decode_module(&bytes).map_err(|e| e.to_string())?;
    let translator = veal::vm::Translator::new(
        AcceleratorConfig::paper_design(),
        Some(CcaSpec::paper()),
        policy,
    );

    let mut disagreements = 0usize;
    for (i, l) in module.loops.iter().enumerate() {
        let hints = StaticHints {
            priority: l.priority_hint.clone(),
            cca_groups: l.cca_hint.clone(),
        };
        let mapped = translator.translate(&l.body, &hints).result.is_ok();
        let exe = match translator.compile_executable(&l.body, &hints) {
            Ok(exe) => exe,
            Err(e) => {
                println!("loop {i} ({}): not executable ({e})", l.body.name);
                continue;
            }
        };
        let inputs = veal::workloads::fixture_inputs(&l.body);
        let interp = veal::ir::interp::interpret(&l.body.dfg, trips, &inputs)
            .map_err(|e| format!("loop {i}: interp: {e} (but LoopVM compiled it)"))?;
        let want = veal::workloads::fold_checksum(&interp);
        let scalar = veal::workloads::fold_checksum(&exe.run(trips, &inputs));
        let lane = veal::workloads::fold_checksum(&exe.run_lanes(trips, &inputs, lanes));
        let agree = scalar == want && lane == want;
        disagreements += usize::from(!agree);
        println!(
            "loop {i} ({}): {} instrs, {} trips, {} — interp {want:#018x} loopvm {scalar:#018x} lanes(W={lanes}) {lane:#018x} [{}]",
            l.body.name,
            exe.instruction_count(),
            trips,
            if mapped { "mapped" } else { "cpu" },
            if agree { "agree" } else { "DISAGREE" },
        );
    }
    if disagreements > 0 {
        return Err(format!(
            "{disagreements} loop(s) diverged from the reference interpreter"
        ));
    }
    println!("checksums_identical: true");
    Ok(())
}

fn suite(rest: &[String]) -> Result<(), String> {
    let policy = policy_from(rest)?;
    let system = System::paper(policy);
    let runs = system.run_suite(&veal::workloads::media_fp_suite());
    print!("{}", veal::sim::report::speedup_table(&runs));
    Ok(())
}

/// Serves a seeded multi-tenant request stream through the in-process
/// translation service (`veal::serve`) and prints the run's counters —
/// the command-line face of the serving subsystem, and a quick way to
/// watch the shared memo absorb cross-tenant duplication.
fn serve(rest: &[String]) -> Result<(), String> {
    if rest.iter().any(|a| a == "--listen") {
        return serve_listen(rest);
    }
    let flag = |name: &str| -> Result<Option<usize>, String> {
        match rest.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => rest
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .map(Some)
                .ok_or_else(|| format!("{name} expects a number")),
        }
    };
    let spec = veal::LoadSpec {
        requests: flag("--requests")?.unwrap_or(256),
        tenants: flag("--tenants")?.unwrap_or(4).max(1),
        ..veal::LoadSpec::default()
    };
    let mut config = veal::ServeConfig::paper();
    if let Some(threads) = flag("--threads")? {
        config.threads = threads.max(1);
    }

    let trace = match rest.iter().position(|a| a == "--trace-out") {
        None => veal::Trace::null(),
        Some(i) => {
            let path = rest.get(i + 1).ok_or("--trace-out expects a path")?;
            let sink = veal::JsonlSink::create(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            veal::Trace::new(std::sync::Arc::new(sink))
        }
    };

    let stream = veal::serve::generate(&spec, &config.config, config.cca.as_ref());
    let threads = config.threads;
    let service = veal::TranslationService::new(config).with_trace(trace.clone());
    let report = service.run(&stream);
    let s = &report.stats;
    println!(
        "served {} of {} request(s) across {} tenant(s) on {} thread(s) ({} shed)",
        s.completed,
        s.offered,
        report.tenants.len(),
        threads,
        s.shed
    );
    println!(
        "memo: {} hits / {} misses, {} entries; {} computed, {} coalesced, {} duplicate(s)",
        s.memo.hits,
        s.memo.misses,
        s.memo.entries,
        s.computes,
        s.coalesced,
        s.duplicate_translations
    );
    for t in &report.tenants {
        println!(
            "  tenant {}: {} request(s), {} translation(s), cache {} hit / {} miss",
            t.tenant,
            t.outcomes.len(),
            t.stats.translations,
            t.cache.hits,
            t.cache.misses
        );
    }
    trace.flush().map_err(|e| format!("trace: {e}"))?;
    Ok(())
}

/// `vealc serve --listen <addr>` — the service behind the TCP front door
/// (`veal::serve::net`). Runs until a client sends the shutdown frame;
/// with `--checkpoint`, the drain writes a final warm-state snapshot
/// before the farewell goes out.
fn serve_listen(rest: &[String]) -> Result<(), String> {
    let str_flag = |name: &str| -> Result<Option<&String>, String> {
        match rest.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => rest
                .get(i + 1)
                .map(Some)
                .ok_or_else(|| format!("{name} expects a value")),
        }
    };
    let num_flag = |name: &str| -> Result<Option<u64>, String> {
        match str_flag(name)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} expects a number")),
        }
    };

    let addr = str_flag("--listen")?.ok_or("--listen expects an address")?;
    let mut config = veal::ServeConfig::paper();
    if let Some(threads) = num_flag("--threads")? {
        config.threads = usize::try_from(threads).unwrap_or(1).max(1);
    }
    let trace = match str_flag("--trace-out")? {
        None => veal::Trace::null(),
        Some(path) => {
            let sink = veal::JsonlSink::create(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            veal::Trace::new(std::sync::Arc::new(sink))
        }
    };
    let mut service = veal::TranslationService::new(config).with_trace(trace.clone());
    if let Some(path) = str_flag("--checkpoint")? {
        service = service.with_checkpoints(veal::CheckpointPolicy::new(path));
    }
    let mut net = veal::NetConfig {
        addr: addr.clone(),
        ..veal::NetConfig::default()
    };
    if let Some(ms) = num_flag("--idle-ms")? {
        net.idle_timeout = std::time::Duration::from_millis(ms);
    }
    let server = veal::NetServer::bind(service, net).map_err(|e| format!("{addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {bound}");
    let report = server.run();
    println!(
        "served {} of {} request(s) over {} connection(s) ({} shed)",
        report.stats.completed, report.stats.offered, report.accepted, report.stats.shed
    );
    println!(
        "frames: {} processed, {} rejected, {} response(s); {} idle-evicted, {} fatal close(s)",
        report.frames,
        report.decode_rejects,
        report.responses,
        report.idle_evicted,
        report.fatal_closes
    );
    for t in &report.tenants {
        println!(
            "  tenant {}: {} translation(s), cache {} hit / {} miss",
            t.tenant, t.stats.translations, t.cache.hits, t.cache.misses
        );
    }
    trace.flush().map_err(|e| format!("trace: {e}"))?;
    Ok(())
}

/// `vealc client <addr>` — drives the seeded load-generator stream at a
/// listening server, one connection per tenant, and reports what came
/// back. `--shutdown` asks the server to drain and exit afterwards.
fn client(rest: &[String]) -> Result<(), String> {
    let addr = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("client needs a server address")?;
    let flag = |name: &str| -> Result<Option<usize>, String> {
        match rest.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => rest
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .map(Some)
                .ok_or_else(|| format!("{name} expects a number")),
        }
    };
    let spec = veal::LoadSpec {
        requests: flag("--requests")?.unwrap_or(64),
        tenants: flag("--tenants")?.unwrap_or(2).max(1),
        ..veal::LoadSpec::default()
    };
    let config = veal::ServeConfig::paper();
    let stream = veal::serve::generate(&spec, &config.config, config.cca.as_ref());

    let mut clients: Vec<Option<veal::WireClient>> = (0..spec.tenants).map(|_| None).collect();
    let (mut ok, mut translated, mut errors) = (0u64, 0u64, 0u64);
    let mut cycles = 0u64;
    for req in &stream {
        let slot = &mut clients[req.tenant];
        if slot.is_none() {
            let tenant = u32::try_from(req.tenant).map_err(|_| "tenant index overflow")?;
            *slot = Some(
                veal::WireClient::connect(addr, tenant, None, config.config.clone())
                    .map_err(|e| format!("{addr}: {e}"))?,
            );
        }
        let c = slot.as_mut().expect("connected above");
        let outcome = c
            .request(req.key, &req.body, &req.hints)
            .map_err(|e| format!("request: {e}"))?;
        match outcome.error {
            None => {
                ok += 1;
                cycles += outcome.translation_cycles;
                if outcome.translated.is_some() {
                    translated += 1;
                }
            }
            Some(_) => errors += 1,
        }
    }
    println!(
        "{} request(s) over {} connection(s): {} ok ({} mapped), {} refused, {} cycle(s)",
        stream.len(),
        clients.iter().flatten().count(),
        ok,
        translated,
        errors,
        cycles
    );
    if rest.iter().any(|a| a == "--shutdown") {
        let c = clients
            .into_iter()
            .flatten()
            .next()
            .ok_or("no connection to send shutdown on")?;
        c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        println!("server acknowledged shutdown");
    }
    Ok(())
}

/// `vealc snapshot save|inspect|restore` — the command-line face of the
/// warm-state persistence layer (`veal::vm::snapshot`). `save` warms a
/// service over the seeded load-generator stream and writes its memo to
/// disk atomically; `inspect` decodes a snapshot without restoring it;
/// `restore` revives a fresh service from (untrusted) snapshot bytes,
/// reports per-entry salvage, and re-serves the same stream to show the
/// warm-start effect. This is the CI smoke path: restore must report
/// `computes=0`, `duplicate_translations=0`, and `bit-identical: yes`.
fn snapshot(rest: &[String]) -> Result<(), String> {
    let sub = rest.first().ok_or("snapshot needs save|inspect|restore")?;
    let rest = &rest[1..];
    match sub.as_str() {
        "save" => snapshot_save(rest),
        "inspect" => snapshot_inspect(rest),
        "restore" => snapshot_restore(rest),
        other => Err(format!("unknown snapshot subcommand `{other}`")),
    }
}

/// The first argument that is neither a flag nor a flag's value.
fn snapshot_path(rest: &[String]) -> Result<&String, String> {
    let mut skip_next = false;
    for a in rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--requests" || a == "--tenants" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        return Ok(a);
    }
    Err("snapshot needs a .vsnp path".into())
}

/// The same seeded stream `save` and `restore` both serve, so a restored
/// service's warm behaviour is directly comparable to the saved one's.
fn snapshot_stream(
    rest: &[String],
) -> Result<(veal::ServeConfig, Vec<veal::serve::Request>), String> {
    let flag = |name: &str| -> Result<Option<usize>, String> {
        match rest.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => rest
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .map(Some)
                .ok_or_else(|| format!("{name} expects a number")),
        }
    };
    let spec = veal::LoadSpec {
        requests: flag("--requests")?.unwrap_or(128),
        tenants: flag("--tenants")?.unwrap_or(4).max(1),
        ..veal::LoadSpec::default()
    };
    let config = veal::ServeConfig::paper();
    let stream = veal::serve::generate(&spec, &config.config, config.cca.as_ref());
    Ok((config, stream))
}

fn snapshot_save(rest: &[String]) -> Result<(), String> {
    let path = snapshot_path(rest)?;
    let (config, stream) = snapshot_stream(rest)?;
    let service = veal::TranslationService::new(config);
    let report = service.run(&stream);
    let bytes = service
        .save_snapshot()
        .map_err(|e| format!("snapshot encode: {e}"))?;
    veal::save_atomic(std::path::Path::new(path), &bytes).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "warmed over {} request(s) ({} computed); wrote {} bytes to {path}",
        report.stats.completed,
        report.stats.computes,
        bytes.len()
    );
    Ok(())
}

fn snapshot_inspect(rest: &[String]) -> Result<(), String> {
    let path = snapshot_path(rest)?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let info = veal::inspect_snapshot(&bytes).map_err(|e| e.to_string())?;
    println!("{path}: {} bytes", info.total_bytes);
    match &info.meta {
        Some(m) => {
            println!(
                "  translator fp {:#018x}, family fp {}",
                m.translator_fp,
                match m.family_fp {
                    Some(fp) => format!("{fp:#018x}"),
                    None => "none".into(),
                }
            );
            println!(
                "  declared: {} point(s), {} famil(ies), {} cache entr(ies)",
                m.points, m.families, m.cache_entries
            );
        }
        None => println!("  no meta section"),
    }
    println!(
        "  present: {} point(s), {} famil(ies), {} cache entr(ies)",
        info.points, info.families, info.cache_entries
    );
    println!(
        "  damage: {} unknown section(s), {} bad checksum(s), torn: {}",
        info.unknown,
        info.bad_sections,
        if info.torn { "yes" } else { "no" }
    );
    Ok(())
}

fn snapshot_restore(rest: &[String]) -> Result<(), String> {
    let path = snapshot_path(rest)?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let (config, stream) = snapshot_stream(rest)?;
    let service = veal::TranslationService::new(config);
    let report = service.restore_snapshot(&bytes);
    println!(
        "restored {} entr(ies) from {path}: {} point(s), {} famil(ies), {} cached; \
         {} salvaged, {} rejected{}",
        report.restored(),
        report.points,
        report.families,
        report.cache_entries,
        report.salvaged,
        report.rejected,
        if report.torn { " (torn stream)" } else { "" }
    );
    let identical = service.save_snapshot().as_deref() == Ok(bytes.as_slice());
    let run = service.run(&stream);
    println!(
        "served {} request(s): computes={} duplicate_translations={}",
        run.stats.completed, run.stats.computes, run.stats.duplicate_translations
    );
    println!("bit-identical: {}", if identical { "yes" } else { "no" });
    Ok(())
}

/// Summarizes a `--trace-out` JSONL file: strict validation of every line,
/// event counts by type, and the folded [`veal::VmStats`] view of the
/// translation events. A malformed or truncated trace is an error — this
/// doubles as the CI trace validator.
fn stats(rest: &[String]) -> Result<(), String> {
    let path = rest.first().ok_or("stats needs a .jsonl trace file")?;
    let text = read_input(path)?;
    let events = veal::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: {} events, all lines valid", events.len());

    let mut counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for e in &events {
        *counts.entry(e.name()).or_insert(0) += 1;
    }
    for (name, n) in &counts {
        println!("  {name:<16} {n:>8}");
    }

    let folded = veal::fold_vm_stats(&events);
    if folded.translations == 0 {
        println!("no translation events in this trace");
        return Ok(());
    }
    println!(
        "translations: {} ({} failed, {} watchdog-aborted, {} degraded)",
        folded.translations, folded.failures, folded.watchdog_aborts, folded.degraded_translations
    );
    println!(
        "hints: {} validated, {} priority / {} cca rejected, {} loops quarantined",
        folded.hint_validations,
        folded.priority_degradations,
        folded.cca_degradations,
        folded.quarantined_loops
    );
    println!(
        "abstract instructions: {} total, {:.1} avg/translation",
        folded.translation_units,
        folded.avg_cost()
    );
    for &p in veal::ir::meter::ALL_PHASES {
        let c = folded.breakdown.get(p);
        if c == 0 {
            continue;
        }
        println!(
            "  {:<12} {:>12}  ({:>5.1}%)",
            p.name(),
            c,
            100.0 * folded.breakdown.fraction(p)
        );
    }
    Ok(())
}
