//! The worked example of paper Figure 5.
//!
//! "Scheduling an example loop body. Assume multiplies take 3 cycles, the
//! CCA takes 2 cycles, and all other ops take 1 cycle." The loop has 15
//! ops; the CCA mapper collapses ops 5-6-8 into a new op 16; the two
//! recurrences (3→5→6→8→9→3, i.e. 3-16-9 after collapse, and 4→7→4) are
//! both 4 cycles long; ResMII is ⌈5/2⌉ = 3; the loop schedules at II 4
//! with op 10 landing in the second stage.

use veal_ir::{DfgBuilder, LoopBody, OpId, Opcode};

/// The op ids of the Figure 5 loop, using the paper's numbering
/// (`op1`..`op15`; ids here are the paper number minus one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure5Ids {
    /// Op 1: load-address increment.
    pub addr_in: OpId,
    /// Op 2: the load.
    pub ld: OpId,
    /// Op 3: shift left (on recurrence A).
    pub shl: OpId,
    /// Op 4: multiply (on recurrence B).
    pub mpy: OpId,
    /// Op 5: and (CCA seed).
    pub and: OpId,
    /// Op 6: subtract (CCA member).
    pub sub: OpId,
    /// Op 7: or (on recurrence B; must *not* join a CCA group).
    pub or: OpId,
    /// Op 8: xor (CCA member).
    pub xor: OpId,
    /// Op 9: shift right (on recurrence A).
    pub shr: OpId,
    /// Op 10: the acyclic add scheduled in stage 1.
    pub add10: OpId,
    /// Op 11: store-address increment.
    pub addr_out: OpId,
    /// Op 12: the store.
    pub str_: OpId,
    /// Op 13: induction increment.
    pub ind: OpId,
    /// Op 14: loop-bound compare.
    pub cmp: OpId,
    /// Op 15: back branch.
    pub br: OpId,
}

/// Builds the Figure 5 loop body with the paper's op numbering (ids 0..=14
/// correspond to the paper's ops 1..=15; supporting constants and live-ins
/// get higher ids).
///
/// # Example
///
/// ```
/// let (body, ids) = veal::figure5_loop();
/// assert_eq!(body.dfg.recurrences().len(), 5); // 2 compute + 2 address + induction
/// assert_eq!(ids.and.index() + 1, 5); // the paper's op 5
/// ```
#[must_use]
pub fn figure5_loop() -> (LoopBody, Figure5Ids) {
    let mut b = DfgBuilder::new();
    // Ops 1..=15 in paper order (ids 0..=14). Inputs that come from
    // constants/live-ins are wired after all 15 ops exist so the numbering
    // matches the paper exactly.
    let addr_in = b.op(Opcode::Add, &[]); // 1
    let ld = b.op(Opcode::Load, &[addr_in]); // 2
    let shl = b.op(Opcode::Shl, &[ld]); // 3
    let mpy = b.op(Opcode::Mul, &[ld]); // 4
    let and = b.op(Opcode::And, &[shl]); // 5
    let sub = b.op(Opcode::Sub, &[and]); // 6
    let or = b.op(Opcode::Or, &[mpy]); // 7
    let xor = b.op(Opcode::Xor, &[sub]); // 8
    let shr = b.op(Opcode::Shr, &[xor]); // 9
    let add10 = b.op(Opcode::Add, &[or, shr]); // 10
    let addr_out = b.op(Opcode::Add, &[]); // 11
    let str_ = b.op(Opcode::Store, &[add10, addr_out]); // 12
    let ind = b.op(Opcode::Add, &[]); // 13
    let cmp = b.op(Opcode::CmpLt, &[ind]); // 14
    let br = b.op(Opcode::BrCond, &[cmp]); // 15

    // Loop-carried recurrences: 9 -> 3 and 7 -> 4 (both 4 cycles long).
    b.loop_carried(shr, shl, 1);
    b.loop_carried(or, mpy, 1);
    // Address generators and induction.
    let four = b.constant(4);
    let one = b.constant(1);
    let n = b.live_in();
    b.loop_carried(addr_in, addr_in, 1);
    b.loop_carried(addr_out, addr_out, 1);
    b.loop_carried(ind, ind, 1);
    // Wire the constant step/bound inputs.
    let mut dfg = b.finish();
    dfg.add_edge(four, addr_in, 0, veal_ir::EdgeKind::Data);
    dfg.add_edge(four, addr_out, 0, veal_ir::EdgeKind::Data);
    dfg.add_edge(one, ind, 0, veal_ir::EdgeKind::Data);
    dfg.add_edge(n, cmp, 0, veal_ir::EdgeKind::Data);

    (
        LoopBody::new("figure5", dfg),
        Figure5Ids {
            addr_in,
            ld,
            shl,
            mpy,
            and,
            sub,
            or,
            xor,
            shr,
            add10,
            addr_out,
            str_,
            ind,
            cmp,
            br,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_accel::AcceleratorConfig;
    use veal_cca::{map_cca, CcaSpec};
    use veal_ir::streams::separate;
    use veal_ir::{verify_dfg, CostMeter};
    use veal_sched::{rec_mii, res_mii};

    #[test]
    fn figure5_loop_is_well_formed() {
        let (body, _) = figure5_loop();
        assert_eq!(verify_dfg(&body.dfg), Ok(()));
        assert_eq!(body.len(), 15);
    }

    #[test]
    fn separation_finds_one_load_one_store_stream() {
        let (body, ids) = figure5_loop();
        let sep = separate(&body.dfg, &mut CostMeter::new()).expect("separates");
        assert_eq!(sep.summary().loads, 1);
        assert_eq!(sep.summary().stores, 1);
        // Ops 13/14/15 are the control slice; 1 and 11 are the address
        // generators.
        assert_eq!(sep.control_ops, vec![ids.br, ids.cmp, ids.ind]);
        assert_eq!(sep.addr_ops, vec![ids.addr_in, ids.addr_out]);
    }

    #[test]
    fn cca_mapper_collapses_5_6_8_and_leaves_7_10() {
        let (body, ids) = figure5_loop();
        let sep = separate(&body.dfg, &mut CostMeter::new()).unwrap();
        let mut dfg = sep.dfg;
        let groups = map_cca(&mut dfg, &CcaSpec::paper(), &mut CostMeter::new());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![ids.and, ids.sub, ids.xor]);
        assert!(!dfg.node(ids.or).is_dead(), "op 7 stays out of the CCA");
        assert!(!dfg.node(ids.add10).is_dead(), "op 10 stays out of the CCA");
    }

    #[test]
    fn mii_matches_paper() {
        let (body, _) = figure5_loop();
        let sep = separate(&body.dfg, &mut CostMeter::new()).unwrap();
        let summary = sep.summary();
        let mut dfg = sep.dfg;
        map_cca(&mut dfg, &CcaSpec::paper(), &mut CostMeter::new());
        let la = AcceleratorConfig::paper_design();
        let mut m = CostMeter::new();
        // "since there are 5 integer instructions in the loop and 2 integer
        // units, II must be at least 3"
        assert_eq!(res_mii(&dfg, &la, summary, &mut m), 3);
        // "Because the longest recurrence is 4 cycles long, the II must be
        // at least 4"
        assert_eq!(rec_mii(&dfg, &la.latencies, &mut m), 4);
    }
}
