//! The top-level system facade.

use veal_sim::{run_application, AccelSetup, AppRun, CpuModel};
use veal_vm::{StaticHints, TranslationOutcome, TranslationPolicy, Translator};
use veal_workloads::Application;

/// A complete VEAL system: a baseline CPU plus an (optionally virtualized)
/// loop accelerator.
///
/// # Example
///
/// ```
/// use veal::{System, TranslationPolicy};
/// let sys = System::paper(TranslationPolicy::fully_dynamic());
/// let app = veal::workloads::application("cjpeg").unwrap();
/// let run = sys.run(&app);
/// println!("{}: {:.2}x", run.name, run.speedup());
/// ```
#[derive(Debug, Clone)]
pub struct System {
    cpu: CpuModel,
    setup: AccelSetup,
}

impl System {
    /// The paper's evaluation system: ARM 11-class CPU + the §3.2 design
    /// point, with the given translation policy.
    #[must_use]
    pub fn paper(policy: TranslationPolicy) -> Self {
        System {
            cpu: CpuModel::arm11(),
            setup: AccelSetup::paper(policy),
        }
    }

    /// The zero-translation-cost upper bound (statically compiled binary).
    #[must_use]
    pub fn native() -> Self {
        System {
            cpu: CpuModel::arm11(),
            setup: AccelSetup::native(),
        }
    }

    /// A custom system.
    #[must_use]
    pub fn new(cpu: CpuModel, setup: AccelSetup) -> Self {
        System { cpu, setup }
    }

    /// The baseline CPU.
    #[must_use]
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// The accelerator/VM setup.
    #[must_use]
    pub fn setup(&self) -> &AccelSetup {
        &self.setup
    }

    /// Runs one application end to end (transform → VM translate → time).
    #[must_use]
    pub fn run(&self, app: &Application) -> AppRun {
        run_application(app, &self.cpu, &self.setup)
    }

    /// Runs a set of applications and returns the per-app results.
    #[must_use]
    pub fn run_suite(&self, apps: &[Application]) -> Vec<AppRun> {
        apps.iter().map(|a| self.run(a)).collect()
    }

    /// Mean speedup over a set of applications.
    #[must_use]
    pub fn mean_speedup(&self, apps: &[Application]) -> f64 {
        if apps.is_empty() {
            return 1.0;
        }
        self.run_suite(apps)
            .iter()
            .map(AppRun::speedup)
            .sum::<f64>()
            / apps.len() as f64
    }

    /// Translates a single loop body through this system's VM (one-shot,
    /// no cache), returning the outcome and metered cost.
    #[must_use]
    pub fn translate_loop(
        &self,
        body: &veal_ir::LoopBody,
        hints: &StaticHints,
    ) -> TranslationOutcome {
        let t = Translator::new(
            self.setup.config.clone(),
            self.setup.cca.clone(),
            self.setup.policy,
        );
        t.translate(body, hints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_workloads::application;

    #[test]
    fn paper_system_accelerates_media_apps() {
        let sys = System::paper(TranslationPolicy::static_hints());
        let app = application("rawcaudio").unwrap();
        assert!(sys.run(&app).speedup() > 1.5);
    }

    #[test]
    fn native_bound_dominates_policies() {
        let app = application("mpeg2dec").unwrap();
        let native = System::native().run(&app).speedup();
        for policy in [
            TranslationPolicy::fully_dynamic(),
            TranslationPolicy::static_hints(),
        ] {
            let s = System::paper(policy).run(&app).speedup();
            assert!(s <= native + 1e-9, "{policy:?} {s} vs native {native}");
        }
    }

    #[test]
    fn mean_speedup_over_subset() {
        let apps: Vec<_> = ["rawcaudio", "cjpeg"]
            .iter()
            .filter_map(|n| application(n))
            .collect();
        let m = System::native().mean_speedup(&apps);
        assert!(m > 1.0);
    }

    #[test]
    fn translate_loop_exposes_meter() {
        let sys = System::paper(TranslationPolicy::fully_dynamic());
        let (body, _) = crate::figure5_loop();
        let out = sys.translate_loop(&body, &StaticHints::none());
        assert!(out.result.is_ok());
        assert!(out.cost() > 0);
    }

    #[test]
    fn figure5_schedules_at_ii_4_with_op10_in_stage_1() {
        // The headline assertions of the paper's worked example. The
        // fully dynamic policy runs CCA identification itself; a
        // static-hints policy with a hint-less binary would leave the CCA
        // idle and settle at II 5.
        let sys = System::paper(TranslationPolicy::fully_dynamic());
        let (body, ids) = crate::figure5_loop();
        let out = sys.translate_loop(&body, &StaticHints::none());
        let t = out.result.expect("figure 5 loop maps");
        assert_eq!(t.scheduled.schedule.ii, 4);
        assert_eq!(t.cca_groups, 1);
        assert!(
            t.scheduled.schedule.stage(ids.add10).unwrap() >= 1,
            "op 10 runs in a later stage"
        );
    }
}
