//! Property tests for the IR crate: random well-formed graphs round-trip
//! the assembly format, SCC/topo invariants hold, and the verifier accepts
//! exactly what the generator produces.
//!
//! Randomness comes from the in-repo deterministic [`Rng64`] (seed-swept
//! loops), so failures reproduce by seed with no external test framework.

use veal_ir::asm::{parse_asm, to_asm};
use veal_ir::dfg::{Dfg, EdgeKind, NodeKind};
use veal_ir::rng::Rng64;
use veal_ir::{verify_dfg, LoopBody, OpId, Opcode};

/// Ops safe for random placement (value-producing, non-control).
const SAFE_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Min,
    Opcode::Max,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Mul,
    Opcode::FAdd,
    Opcode::FMul,
];

#[derive(Debug, Clone)]
struct GraphPlan {
    ops: Vec<usize>,                 // opcode index per node
    edges: Vec<(usize, usize, u32)>, // (src, dst, distance), src < dst when d = 0
    live_outs: Vec<usize>,
    loads: usize,
}

/// Draws a random plan; the same seed always yields the same plan.
fn arb_plan(rng: &mut Rng64) -> GraphPlan {
    let n = rng.gen_range(2, 24);
    let loads = rng.gen_range(1, 4);
    let ops = (0..n).map(|_| rng.gen_range(0, SAFE_OPS.len())).collect();
    let n_edges = rng.gen_range(0, (n * 2).max(1));
    let edges = (0..n_edges)
        .filter_map(|_| {
            let a = rng.gen_range(0, n);
            let b = rng.gen_range(0, n);
            let d = rng.gen_range(0, 3) as u32;
            // Distance-0 edges must go forward (acyclic); loop-carried
            // edges may go anywhere.
            if d == 0 {
                (a < b).then_some((a, b, 0))
            } else {
                Some((a, b, d))
            }
        })
        .collect();
    let live_outs = (0..rng.gen_range(0, 3))
        .map(|_| rng.gen_range(0, n))
        .collect();
    GraphPlan {
        ops,
        edges,
        live_outs,
        loads,
    }
}

fn build(plan: &GraphPlan) -> LoopBody {
    let mut dfg = Dfg::new();
    let mut loads = Vec::new();
    for i in 0..plan.loads {
        let id = dfg.add_node(NodeKind::Op(Opcode::Load));
        dfg.node_mut(id).stream = Some(i as u16);
        loads.push(id);
    }
    let nodes: Vec<OpId> = plan
        .ops
        .iter()
        .map(|&op| dfg.add_node(NodeKind::Op(SAFE_OPS[op])))
        .collect();
    // Every op reads some load so nothing dangles weirdly.
    for (i, &n) in nodes.iter().enumerate() {
        dfg.add_edge(loads[i % loads.len()], n, 0, EdgeKind::Data);
    }
    for &(a, b, d) in &plan.edges {
        dfg.add_edge(nodes[a], nodes[b], d, EdgeKind::Data);
    }
    for &lo in &plan.live_outs {
        dfg.node_mut(nodes[lo]).live_out = true;
    }
    LoopBody::new("prop", dfg)
}

const CASES: u64 = 128;

fn for_each_plan(mut check: impl FnMut(u64, &GraphPlan)) {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9) + 17);
        let plan = arb_plan(&mut rng);
        check(seed, &plan);
    }
}

#[test]
fn generated_graphs_verify() {
    for_each_plan(|seed, plan| {
        let body = build(plan);
        assert_eq!(verify_dfg(&body.dfg), Ok(()), "seed {seed}");
    });
}

#[test]
fn asm_round_trips_arbitrary_graphs() {
    for_each_plan(|seed, plan| {
        let body = build(plan);
        let text = to_asm(&body);
        let back = parse_asm(&text).expect("parses its own output");
        assert_eq!(back.dfg.len(), body.dfg.len(), "seed {seed}");
        let mut a = body.dfg.edges().to_vec();
        let mut b = back.dfg.edges().to_vec();
        a.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        b.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(
            back.dfg.live_out_ids().collect::<Vec<_>>(),
            body.dfg.live_out_ids().collect::<Vec<_>>(),
            "seed {seed}"
        );
    });
}

#[test]
fn sccs_partition_live_nodes() {
    for_each_plan(|seed, plan| {
        let body = build(plan);
        let sccs = body.dfg.sccs();
        let total: usize = sccs.iter().map(Vec::len).sum();
        assert_eq!(total, body.dfg.live_ids().count(), "seed {seed}");
        let mut seen = std::collections::HashSet::new();
        for scc in &sccs {
            for &v in scc {
                assert!(seen.insert(v), "seed {seed}: {v} in two SCCs");
            }
        }
    });
}

#[test]
fn topo_order_respects_distance0_edges() {
    for_each_plan(|seed, plan| {
        let body = build(plan);
        let order = body
            .dfg
            .topo_order()
            .expect("distance-0 acyclic by construction");
        let pos: std::collections::HashMap<OpId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in body.dfg.edges() {
            if e.distance == 0 {
                assert!(pos[&e.src] < pos[&e.dst], "seed {seed}");
            }
        }
    });
}

#[test]
fn collapse_preserves_verification() {
    // Collapsing any legal CCA group keeps the graph well formed.
    for_each_plan(|seed, plan| {
        let body = build(plan);
        let spec = veal_cca::CcaSpec::paper();
        let mut dfg = body.dfg.clone();
        let groups = veal_cca::map_cca(&mut dfg, &spec, &mut veal_ir::CostMeter::new());
        assert_eq!(verify_dfg(&dfg), Ok(()), "seed {seed}");
        // Members really are tombstoned and referenced by their group node.
        for g in &groups {
            for &m in &g.members {
                assert!(dfg.node(m).is_dead(), "seed {seed}");
            }
            let node = g.node.expect("map_cca sets node");
            assert_eq!(&dfg.node(node).cca_members, &g.members, "seed {seed}");
        }
        // The collapsed graph still has an intact distance-0 topology.
        assert!(dfg.topo_order().is_ok(), "seed {seed}");
    });
}

#[test]
fn content_hash_stable_and_content_sensitive() {
    for_each_plan(|seed, plan| {
        let a = build(plan);
        let b = build(plan);
        assert_eq!(a.dfg.content_hash(), b.dfg.content_hash(), "seed {seed}");
    });
    // Any structural change moves the hash.
    let mut rng = Rng64::new(3);
    let plan = arb_plan(&mut rng);
    let base = build(&plan);
    let mut edited = base.dfg.clone();
    let first = edited.schedulable_ops().next().unwrap();
    edited.node_mut(first).live_out = !edited.node(first).live_out;
    assert_ne!(base.dfg.content_hash(), edited.content_hash());
}
