//! Property tests for the IR crate: random well-formed graphs round-trip
//! the assembly format, SCC/topo invariants hold, and the verifier accepts
//! exactly what the generator produces.

use proptest::prelude::*;
use veal_ir::asm::{parse_asm, to_asm};
use veal_ir::dfg::{Dfg, EdgeKind, NodeKind};
use veal_ir::{verify_dfg, LoopBody, Opcode, OpId};

/// Ops safe for random placement (value-producing, non-control).
const SAFE_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Min,
    Opcode::Max,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Mul,
    Opcode::FAdd,
    Opcode::FMul,
];

#[derive(Debug, Clone)]
struct GraphPlan {
    ops: Vec<usize>,                 // opcode index per node
    edges: Vec<(usize, usize, u32)>, // (src_rank, dst, distance) src_rank < dst for d = 0
    live_outs: Vec<usize>,
    loads: usize,
}

fn arb_plan() -> impl Strategy<Value = GraphPlan> {
    (2usize..24, 1usize..4).prop_flat_map(|(n, loads)| {
        (
            proptest::collection::vec(0usize..SAFE_OPS.len(), n),
            proptest::collection::vec((0usize..n, 0usize..n, 0u32..3), 0..n * 2),
            proptest::collection::vec(0usize..n, 0..3),
        )
            .prop_map(move |(ops, raw_edges, live_outs)| {
                let edges = raw_edges
                    .into_iter()
                    .filter_map(|(a, b, d)| {
                        // Distance-0 edges must go forward (acyclic);
                        // loop-carried edges may go anywhere.
                        if d == 0 {
                            (a < b).then_some((a, b, 0))
                        } else {
                            Some((a, b, d))
                        }
                    })
                    .collect();
                GraphPlan {
                    ops,
                    edges,
                    live_outs,
                    loads,
                }
            })
    })
}

fn build(plan: &GraphPlan) -> LoopBody {
    let mut dfg = Dfg::new();
    let mut loads = Vec::new();
    for i in 0..plan.loads {
        let id = dfg.add_node(NodeKind::Op(Opcode::Load));
        dfg.node_mut(id).stream = Some(i as u16);
        loads.push(id);
    }
    let base = plan.loads;
    let nodes: Vec<OpId> = plan
        .ops
        .iter()
        .map(|&op| dfg.add_node(NodeKind::Op(SAFE_OPS[op])))
        .collect();
    // Every op reads some load so nothing dangles weirdly.
    for (i, &n) in nodes.iter().enumerate() {
        dfg.add_edge(loads[i % loads.len()], n, 0, EdgeKind::Data);
    }
    for &(a, b, d) in &plan.edges {
        dfg.add_edge(nodes[a], nodes[b], d, EdgeKind::Data);
    }
    for &lo in &plan.live_outs {
        dfg.node_mut(nodes[lo]).live_out = true;
    }
    let _ = base;
    LoopBody::new("prop", dfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_graphs_verify(plan in arb_plan()) {
        let body = build(&plan);
        prop_assert_eq!(verify_dfg(&body.dfg), Ok(()));
    }

    #[test]
    fn asm_round_trips_arbitrary_graphs(plan in arb_plan()) {
        let body = build(&plan);
        let text = to_asm(&body);
        let back = parse_asm(&text).expect("parses its own output");
        prop_assert_eq!(back.dfg.len(), body.dfg.len());
        let mut a = body.dfg.edges().to_vec();
        let mut b = back.dfg.edges().to_vec();
        a.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        b.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        prop_assert_eq!(a, b);
        prop_assert_eq!(
            back.dfg.live_out_ids().collect::<Vec<_>>(),
            body.dfg.live_out_ids().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sccs_partition_live_nodes(plan in arb_plan()) {
        let body = build(&plan);
        let sccs = body.dfg.sccs();
        let total: usize = sccs.iter().map(Vec::len).sum();
        prop_assert_eq!(total, body.dfg.live_ids().count());
        let mut seen = std::collections::HashSet::new();
        for scc in &sccs {
            for &v in scc {
                prop_assert!(seen.insert(v), "{} in two SCCs", v);
            }
        }
    }

    #[test]
    fn topo_order_respects_distance0_edges(plan in arb_plan()) {
        let body = build(&plan);
        let order = body.dfg.topo_order().expect("distance-0 acyclic by construction");
        let pos: std::collections::HashMap<OpId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in body.dfg.edges() {
            if e.distance == 0 {
                prop_assert!(pos[&e.src] < pos[&e.dst]);
            }
        }
    }

    #[test]
    fn collapse_preserves_verification(plan in arb_plan()) {
        // Collapsing any legal CCA group keeps the graph well formed.
        let body = build(&plan);
        let spec = veal_cca::CcaSpec::paper();
        let mut dfg = body.dfg.clone();
        let groups = veal_cca::map_cca(&mut dfg, &spec, &mut veal_ir::CostMeter::new());
        prop_assert_eq!(verify_dfg(&dfg), Ok(()));
        // Members really are tombstoned and referenced by their group node.
        for g in &groups {
            for &m in &g.members {
                prop_assert!(dfg.node(m).is_dead());
            }
            let node = g.node.expect("map_cca sets node");
            prop_assert_eq!(&dfg.node(node).cca_members, &g.members);
        }
        // The collapsed graph still has an intact distance-0 topology.
        prop_assert!(dfg.topo_order().is_ok());
    }
}
