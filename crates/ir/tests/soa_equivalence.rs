//! SoA-vs-reference equivalence corpus for the data-oriented DFG layout.
//!
//! The arena-backed CSR [`Dfg`] must be observationally identical to the
//! straightforward push-built [`RefDfg`] — not just "same answers" but the
//! same *iteration order* everywhere, because downstream kernels (swing
//! priority, the greedy CCA mapper) are order-sensitive and the whole
//! data-oriented sweep is gated on bit-identity with the old arm.
//!
//! Each seed draws one random well-formed loop body from the in-repo
//! deterministic [`Rng64`]; failures reproduce by seed with no external
//! test framework. The corpus checks, per graph:
//!
//! - successor/predecessor edge iteration order (exact edge sequences),
//! - SCC partition and fast-vs-reference [`Condensation`] equality,
//! - the memoized [`Dfg::scc_view`] membership against `sccs()`,
//! - content hash against the reference fold,
//! - verifier verdicts under both arms of the data-oriented toggle,
//! - stream separation outputs *and* per-phase meter charges under both
//!   arms.

use veal_ir::dfg::NodeKind;
use veal_ir::rng::Rng64;
use veal_ir::streams::separate;
use veal_ir::{
    set_data_oriented, verify_dfg, Condensation, CostMeter, Dfg, EdgeKind, OpId, Opcode, RefDfg,
};

/// Ops safe for random placement (value-producing, non-control).
const SAFE_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Min,
    Opcode::Max,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Mul,
    Opcode::FAdd,
    Opcode::FMul,
];

/// Draws one random loop DFG. Distance-0 edges always run forward so the
/// iteration body stays acyclic; loop-carried edges go anywhere, which is
/// what makes the SCC checks interesting.
fn arb_dfg(rng: &mut Rng64) -> Dfg {
    let n = rng.gen_range(2, 40);
    let n_loads = rng.gen_range(1, 5);
    let mut dfg = Dfg::new();
    let mut loads = Vec::new();
    for i in 0..n_loads {
        let id = dfg.add_node(NodeKind::Op(Opcode::Load));
        dfg.node_mut(id).stream = Some(i as u16);
        loads.push(id);
    }
    let nodes: Vec<OpId> = (0..n)
        .map(|_| dfg.add_node(NodeKind::Op(SAFE_OPS[rng.gen_range(0, SAFE_OPS.len())])))
        .collect();
    for (i, &v) in nodes.iter().enumerate() {
        dfg.add_edge(loads[i % loads.len()], v, 0, EdgeKind::Data);
    }
    for _ in 0..rng.gen_range(0, n * 2) {
        let a = rng.gen_range(0, n);
        let b = rng.gen_range(0, n);
        let d = rng.gen_range(0, 3) as u32;
        if d == 0 {
            if a < b {
                dfg.add_edge(nodes[a], nodes[b], 0, EdgeKind::Data);
            }
        } else {
            dfg.add_edge(nodes[a], nodes[b], d, EdgeKind::Data);
        }
    }
    for _ in 0..rng.gen_range(1, 4) {
        let v = nodes[rng.gen_range(0, n)];
        dfg.node_mut(v).live_out = true;
    }
    // Occasionally tombstone a node so the dead-slot paths (compaction in
    // the CSR build, `u32::MAX` components) get exercised too.
    if rng.gen_bool(0.3) {
        let v = nodes[rng.gen_range(0, n)];
        if !dfg.node(v).live_out {
            dfg.remove_nodes(&[v]);
        }
    }
    dfg
}

const CASES: u64 = 256;

fn for_each_graph(mut check: impl FnMut(u64, &Dfg)) {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9) ^ 0xD1B5_4A32);
        let dfg = arb_dfg(&mut rng);
        check(seed, &dfg);
    }
}

#[test]
fn succ_and_pred_iteration_order_matches_reference() {
    for_each_graph(|seed, dfg| {
        let r = RefDfg::from_dfg(dfg);
        assert_eq!(dfg.len(), r.len(), "seed {seed}");
        for v in dfg.live_ids() {
            let succ_soa: Vec<_> = dfg.succ_edges(v).cloned().collect();
            let succ_ref: Vec<_> = r.succ_edges(v).cloned().collect();
            assert_eq!(succ_soa, succ_ref, "seed {seed}: succ order of {v}");
            let pred_soa: Vec<_> = dfg.pred_edges(v).cloned().collect();
            let pred_ref: Vec<_> = r.pred_edges(v).cloned().collect();
            assert_eq!(pred_soa, pred_ref, "seed {seed}: pred order of {v}");
        }
    });
}

#[test]
fn scc_condensation_matches_reference() {
    for_each_graph(|seed, dfg| {
        let r = RefDfg::from_dfg(dfg);
        assert_eq!(dfg.sccs(), r.sccs(), "seed {seed}: SCC partition");
        assert_eq!(
            Condensation::build_fast(dfg),
            Condensation::build_reference(dfg),
            "seed {seed}: condensation"
        );
    });
}

#[test]
fn scc_view_membership_agrees_with_sccs() {
    for_each_graph(|seed, dfg| {
        let view = dfg.scc_view();
        let sccs = dfg.sccs();
        for (c, scc) in sccs.iter().enumerate() {
            for &v in scc {
                assert_eq!(
                    view.comp_of[v.index()] as usize,
                    c,
                    "seed {seed}: {v} component"
                );
            }
            let has_self_loop = scc
                .iter()
                .any(|&v| dfg.succ_edges(v).any(|e| e.dst == v && e.distance > 0));
            let cyclic = scc.len() > 1 || has_self_loop;
            assert_eq!(
                view.is_cyclic(c as u32),
                cyclic,
                "seed {seed}: component {c} cyclicity"
            );
        }
        // Dead slots carry the sentinel, never a component id.
        for i in 0..dfg.len() {
            let dead = dfg.node(OpId::new(i)).is_dead();
            assert_eq!(view.comp_of[i] == u32::MAX, dead, "seed {seed}: slot {i}");
        }
    });
}

#[test]
fn content_hash_matches_reference() {
    for_each_graph(|seed, dfg| {
        let r = RefDfg::from_dfg(dfg);
        assert_eq!(dfg.content_hash(), r.content_hash(), "seed {seed}");
    });
}

#[test]
fn verify_verdict_matches_reference_under_both_arms() {
    for_each_graph(|seed, dfg| {
        let r = RefDfg::from_dfg(dfg);
        let want = r.verify();
        for arm in [false, true] {
            set_data_oriented(arm);
            assert_eq!(verify_dfg(dfg), want, "seed {seed}: arm {arm}");
        }
        set_data_oriented(true);
    });
}

#[test]
fn separation_outputs_and_charges_match_across_arms() {
    for_each_graph(|seed, dfg| {
        set_data_oriented(false);
        let mut m_old = CostMeter::new();
        let old = separate(dfg, &mut m_old);
        set_data_oriented(true);
        let mut m_new = CostMeter::new();
        let new = separate(dfg, &mut m_new);
        match (&old, &new) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.dfg.content_hash(),
                    b.dfg.content_hash(),
                    "seed {seed}: separated graph"
                );
                assert_eq!(a.streams, b.streams, "seed {seed}: streams");
                assert_eq!(a.control_ops, b.control_ops, "seed {seed}: control ops");
                assert_eq!(a.addr_ops, b.addr_ops, "seed {seed}: addr ops");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "seed {seed}: separation error"),
            _ => panic!("seed {seed}: arms disagree on separability"),
        }
        assert_eq!(
            m_old.breakdown(),
            m_new.breakdown(),
            "seed {seed}: separation charges"
        );
    });
}

#[test]
fn topo_order_matches_reference() {
    for_each_graph(|seed, dfg| {
        let r = RefDfg::from_dfg(dfg);
        assert_eq!(dfg.topo_order(), r.topo_order(), "seed {seed}");
    });
}
