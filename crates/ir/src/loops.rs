//! Loop bodies and their execution profiles.

use crate::dfg::Dfg;
use std::fmt;

/// One innermost loop: its full dataflow graph (compute, memory, address,
/// and control ops, as encoded in the application binary) plus a name for
/// reporting.
///
/// The *full* graph is what the baseline processor executes and what the
/// VM's translator receives; [`crate::streams::separate`] derives the
/// accelerator's compute view from it.
#[derive(Debug, Clone)]
pub struct LoopBody {
    /// Reporting name (e.g. `"fir.inner"`).
    pub name: String,
    /// The full loop-body dataflow graph.
    pub dfg: Dfg,
}

impl LoopBody {
    /// Creates a loop body.
    #[must_use]
    pub fn new(name: impl Into<String>, dfg: Dfg) -> Self {
        LoopBody {
            name: name.into(),
            dfg,
        }
    }

    /// Number of schedulable operations in the full body.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dfg.schedulable_ops().count()
    }

    /// Whether the body has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable content fingerprint: the graph's [`Dfg::content_hash`] mixed
    /// with the loop name. Two loops with identical bodies but different
    /// names fingerprint differently (per-part translation is keyed on
    /// this, and parts keep distinct reporting identities).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::rng::Fnv64::new();
        h.write_str(&self.name);
        h.write_u64(self.dfg.content_hash());
        h.finish()
    }
}

impl fmt::Display for LoopBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop {} ({} ops)", self.name, self.len())
    }
}

/// The dynamic execution profile of one loop within an application: how
/// often it is invoked and how many iterations each invocation runs.
///
/// The product `invocations × trip_count × body size` determines how much
/// of the application's time the loop accounts for — and therefore how well
/// a one-time translation cost amortizes (paper Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopProfile {
    /// Number of times the loop is entered over the whole run.
    pub invocations: u64,
    /// Average iterations per invocation.
    pub trip_count: u64,
}

impl LoopProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero (a loop that never runs has no
    /// profile).
    #[must_use]
    pub fn new(invocations: u64, trip_count: u64) -> Self {
        assert!(invocations > 0, "invocations must be positive");
        assert!(trip_count > 0, "trip count must be positive");
        LoopProfile {
            invocations,
            trip_count,
        }
    }

    /// Total iterations across the run.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.invocations * self.trip_count
    }
}

impl fmt::Display for LoopProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} invocations × {} iterations",
            self.invocations, self.trip_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::opcode::Opcode;

    #[test]
    fn loop_body_len_counts_schedulable_ops() {
        let mut b = DfgBuilder::new();
        let li = b.live_in(); // not schedulable
        let x = b.op(Opcode::Add, &[li, li]);
        let _ = x;
        let body = LoopBody::new("t", b.finish());
        assert_eq!(body.len(), 1);
        assert!(!body.is_empty());
        assert_eq!(body.to_string(), "loop t (1 ops)");
    }

    #[test]
    fn profile_total_iterations() {
        let p = LoopProfile::new(10, 256);
        assert_eq!(p.total_iterations(), 2560);
    }

    #[test]
    #[should_panic(expected = "trip count")]
    fn zero_trip_count_rejected() {
        let _ = LoopProfile::new(1, 0);
    }
}
