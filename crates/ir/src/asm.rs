//! A textual assembly format for loop bodies.
//!
//! The paper's Figure 9 shows loops as numbered pseudo-assembly listings;
//! this module provides that surface syntax for the DFG representation —
//! a printer ([`to_asm`]) and a parser ([`parse_asm`]) that round-trip.
//!
//! Syntax, one node per line:
//!
//! ```text
//! ; dot product
//! %0 = ld.s0                ; streaming load from stream 0
//! %1 = ld.s1
//! %2 = mpy %0, %1
//! %3 = add %2, %3@1         ; @1 = value from one iteration back
//! %4 = str.s2 %3            ; streaming store to stream 2
//! %5 = livein
//! %6 = const 42
//! out %3                    ; live-out marker
//! ```
//!
//! Node ids must be `%0..%n` in order; `@d` suffixes mark loop-carried
//! operands; `!` before an operand marks a memory-ordering edge.

use crate::dfg::{Dfg, EdgeKind, NodeKind};
use crate::loops::LoopBody;
use crate::opcode::{Opcode, ALL_OPCODES};
use crate::types::OpId;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced by [`parse_asm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Node ids must appear densely in order (`%0`, `%1`, …).
    BadNodeId {
        /// 1-based line number.
        line: usize,
    },
    /// An operand references a node that does not exist (yet or at all).
    UnknownOperand {
        /// 1-based line number.
        line: usize,
        /// The referenced id.
        id: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { line, reason } => write!(f, "line {line}: {reason}"),
            AsmError::BadNodeId { line } => {
                write!(f, "line {line}: node ids must be dense and in order")
            }
            AsmError::UnknownOperand { line, id } => {
                write!(f, "line {line}: operand %{id} not defined")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// Renders a loop body in the textual assembly format.
///
/// # Example
///
/// ```
/// use veal_ir::asm::{parse_asm, to_asm};
/// use veal_ir::{DfgBuilder, LoopBody, Opcode};
///
/// # fn main() -> Result<(), veal_ir::asm::AsmError> {
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// let y = b.op(Opcode::Add, &[x, x]);
/// b.store_stream(1, y);
/// let body = LoopBody::new("double", b.finish());
/// let text = to_asm(&body);
/// let back = parse_asm(&text)?;
/// assert_eq!(back.dfg.edges(), body.dfg.edges());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_asm(body: &LoopBody) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; {}", body.name);
    let dfg = &body.dfg;
    for i in 0..dfg.len() {
        let id = OpId::new(i);
        let node = dfg.node(id);
        if node.is_dead() {
            let _ = writeln!(out, "%{i} = dead");
            continue;
        }
        match &node.kind {
            NodeKind::LiveIn => {
                let _ = writeln!(out, "%{i} = livein");
            }
            NodeKind::Const(v) => {
                let _ = writeln!(out, "%{i} = const {v}");
            }
            NodeKind::Op(op) => {
                let _ = write!(out, "%{i} = {}", op.mnemonic());
                if let Some(s) = node.stream {
                    let _ = write!(out, ".s{s}");
                }
                if !node.cca_members.is_empty() {
                    let members: Vec<String> = node
                        .cca_members
                        .iter()
                        .map(|m| m.index().to_string())
                        .collect();
                    let _ = write!(out, " {{{}}}", members.join(" "));
                }
                let mut first = true;
                for e in dfg.pred_edges(id) {
                    if first {
                        let _ = write!(out, " ");
                        first = false;
                    } else {
                        let _ = write!(out, ", ");
                    }
                    if e.kind == EdgeKind::Mem {
                        let _ = write!(out, "!");
                    }
                    let _ = write!(out, "%{}", e.src.index());
                    if e.distance > 0 {
                        let _ = write!(out, "@{}", e.distance);
                    }
                }
                let _ = writeln!(out);
            }
        }
    }
    for id in dfg.live_out_ids() {
        let _ = writeln!(out, "out %{}", id.index());
    }
    out
}

fn mnemonic_to_opcode(m: &str) -> Option<Opcode> {
    ALL_OPCODES.iter().copied().find(|op| op.mnemonic() == m)
}

/// Parses the textual assembly format back into a loop body.
///
/// The loop's name is taken from a leading `; name` comment when present.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first offending line.
pub fn parse_asm(text: &str) -> Result<LoopBody, AsmError> {
    let mut dfg = Dfg::new();
    let mut name = String::from("loop");
    let mut saw_name = false;
    // Edges are wired after all nodes exist so forward references
    // (loop-carried uses of later defs) parse naturally.
    let mut pending_edges: Vec<(usize, usize, u32, EdgeKind, usize)> = Vec::new();
    let mut live_outs: Vec<(usize, usize)> = Vec::new();
    let mut next_id = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            if !saw_name {
                if let Some(rest) = raw.trim().strip_prefix(';') {
                    let n = rest.trim();
                    if !n.is_empty() {
                        name = n.to_owned();
                        saw_name = true;
                    }
                }
            }
            continue;
        }
        if let Some(rest) = code.strip_prefix("out ") {
            let id = parse_ref(rest.trim(), line)?.0;
            live_outs.push((line, id));
            continue;
        }
        // "%N = <rhs>"
        let (lhs, rhs) = code.split_once('=').ok_or_else(|| AsmError::Syntax {
            line,
            reason: "expected `%N = ...` or `out %N`".to_owned(),
        })?;
        let lhs = lhs.trim();
        let id: usize = lhs
            .strip_prefix('%')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AsmError::Syntax {
                line,
                reason: format!("bad node id `{lhs}`"),
            })?;
        if id != next_id {
            return Err(AsmError::BadNodeId { line });
        }
        next_id += 1;

        let rhs = rhs.trim();
        let (head, operands) = match rhs.split_once(' ') {
            Some((h, o)) => (h.trim(), o.trim()),
            None => (rhs, ""),
        };
        if head == "livein" {
            dfg.add_node(NodeKind::LiveIn);
            continue;
        }
        if head == "dead" {
            // Placeholder slot for a tombstoned node.
            let nid = dfg.add_node(NodeKind::LiveIn);
            dfg.remove_nodes(&[nid]);
            continue;
        }
        if head == "const" {
            let v: i64 = operands.parse().map_err(|_| AsmError::Syntax {
                line,
                reason: format!("bad constant `{operands}`"),
            })?;
            dfg.add_node(NodeKind::Const(v));
            continue;
        }
        // Opcode with optional ".sN" stream suffix.
        let (mnemonic, stream) = match head.split_once(".s") {
            Some((m, s)) => {
                let stream: u16 = s.parse().map_err(|_| AsmError::Syntax {
                    line,
                    reason: format!("bad stream suffix `.s{s}`"),
                })?;
                (m, Some(stream))
            }
            None => (head, None),
        };
        let op = mnemonic_to_opcode(mnemonic).ok_or_else(|| AsmError::Syntax {
            line,
            reason: format!("unknown opcode `{mnemonic}`"),
        })?;
        let nid = dfg.add_node(NodeKind::Op(op));
        dfg.node_mut(nid).stream = stream;
        // Optional CCA member group: `cca {5 6 8} %in0, %in1`.
        let operands = if let Some(start) = operands.find('{') {
            let end = operands.find('}').ok_or_else(|| AsmError::Syntax {
                line,
                reason: "unterminated `{` member group".to_owned(),
            })?;
            let members: Result<Vec<OpId>, _> = operands[start + 1..end]
                .split_whitespace()
                .map(|m| m.parse::<usize>().map(OpId::new))
                .collect();
            dfg.node_mut(nid).cca_members = members.map_err(|_| AsmError::Syntax {
                line,
                reason: "bad member id in `{}` group".to_owned(),
            })?;
            format!("{}{}", &operands[..start], &operands[end + 1..])
                .trim()
                .to_owned()
        } else {
            operands.to_owned()
        };
        let operands = operands.as_str();
        if !operands.is_empty() {
            for piece in operands.split(',') {
                let piece = piece.trim();
                let (mem, piece) = match piece.strip_prefix('!') {
                    Some(rest) => (true, rest),
                    None => (false, piece),
                };
                let (src, dist) = parse_ref(piece, line)?;
                pending_edges.push((
                    src,
                    id,
                    dist,
                    if mem { EdgeKind::Mem } else { EdgeKind::Data },
                    line,
                ));
            }
        }
    }

    for (src, dst, dist, kind, line) in pending_edges {
        if src >= dfg.len() || dst >= dfg.len() {
            return Err(AsmError::UnknownOperand {
                line,
                id: src.max(dst),
            });
        }
        dfg.add_edge(OpId::new(src), OpId::new(dst), dist, kind);
    }
    for (line, id) in live_outs {
        if id >= dfg.len() {
            return Err(AsmError::UnknownOperand { line, id });
        }
        dfg.node_mut(OpId::new(id)).live_out = true;
    }
    Ok(LoopBody::new(name, dfg))
}

/// Parses `%N` or `%N@d`, returning `(id, distance)`.
fn parse_ref(s: &str, line: usize) -> Result<(usize, u32), AsmError> {
    let body = s.strip_prefix('%').ok_or_else(|| AsmError::Syntax {
        line,
        reason: format!("expected operand `%N`, found `{s}`"),
    })?;
    let (ids, dist) = match body.split_once('@') {
        Some((i, d)) => {
            let dist: u32 = d.parse().map_err(|_| AsmError::Syntax {
                line,
                reason: format!("bad distance `@{d}`"),
            })?;
            (i, dist)
        }
        None => (body, 0),
    };
    let id: usize = ids.parse().map_err(|_| AsmError::Syntax {
        line,
        reason: format!("bad operand id `%{ids}`"),
    })?;
    Ok((id, dist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::verify::verify_dfg;

    fn round_trip(body: &LoopBody) -> LoopBody {
        parse_asm(&to_asm(body)).expect("parses")
    }

    #[test]
    fn round_trips_loop_with_everything() {
        let mut b = DfgBuilder::new();
        let k = b.constant(-7);
        let li = b.live_in();
        let x = b.load_stream(0);
        let m = b.op(Opcode::Mul, &[x, k]);
        let s = b.op(Opcode::Add, &[m, li]);
        b.loop_carried(s, s, 2);
        b.mark_live_out(s);
        let st = b.store_stream(1, s);
        b.mem_dep(st, x, 1);
        let body = LoopBody::new("everything", b.finish());
        let back = round_trip(&body);
        assert_eq!(back.name, "everything");
        assert_eq!(back.dfg.len(), body.dfg.len());
        let mut a_edges = body.dfg.edges().to_vec();
        let mut b_edges = back.dfg.edges().to_vec();
        a_edges.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        b_edges.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        assert_eq!(a_edges, b_edges);
        assert_eq!(
            back.dfg.live_out_ids().collect::<Vec<_>>(),
            body.dfg.live_out_ids().collect::<Vec<_>>()
        );
        assert!(verify_dfg(&back.dfg).is_ok());
    }

    #[test]
    fn parses_handwritten_dot_product() {
        let text = "\
; dot
%0 = ld.s0
%1 = ld.s1
%2 = mpy %0, %1
%3 = add %2, %3@1
out %3
";
        let body = parse_asm(text).expect("parses");
        assert_eq!(body.name, "dot");
        assert_eq!(body.len(), 4);
        assert_eq!(body.dfg.recurrences().len(), 1);
        assert_eq!(body.dfg.live_out_ids().count(), 1);
    }

    #[test]
    fn figure5_round_trips() {
        // The canonical example must survive the text format.
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let shl = b.op(Opcode::Shl, &[x]);
        let and = b.op(Opcode::And, &[shl]);
        let shr = b.op(Opcode::Shr, &[and]);
        b.loop_carried(shr, shl, 1);
        b.store_stream(1, shr);
        let body = LoopBody::new("figure5ish", b.finish());
        let back = round_trip(&body);
        assert_eq!(back.dfg.recurrences().len(), body.dfg.recurrences().len());
    }

    #[test]
    fn rejects_bad_opcode() {
        let err = parse_asm("%0 = frobnicate %0").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_out_of_order_ids() {
        let err = parse_asm("%1 = add").unwrap_err();
        assert_eq!(err, AsmError::BadNodeId { line: 1 });
    }

    #[test]
    fn rejects_unknown_operand() {
        let err = parse_asm("%0 = add %9").unwrap_err();
        assert!(
            matches!(err, AsmError::UnknownOperand { id: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n; name here\n\n%0 = livein ; trailing comment\n%1 = abs %0\n";
        let body = parse_asm(text).expect("parses");
        assert_eq!(body.name, "name here");
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn mem_edges_round_trip() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let st = b.store_stream(1, x);
        b.mem_dep(st, x, 1);
        let body = LoopBody::new("mem", b.finish());
        let back = round_trip(&body);
        assert!(back
            .dfg
            .edges()
            .iter()
            .any(|e| e.kind == EdgeKind::Mem && e.distance == 1));
    }

    #[test]
    fn dead_slots_round_trip_by_position() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::And, &[]);
        let y = b.op(Opcode::Xor, &[x]);
        let z = b.op(Opcode::Shl, &[y]);
        b.mark_live_out(z);
        let mut dfg = b.finish();
        dfg.collapse(&[x, y]);
        let body = LoopBody::new("collapsed", dfg);
        let back = round_trip(&body);
        // Positions of dead slots are preserved so later ids still line up.
        assert_eq!(back.dfg.len(), body.dfg.len());
        assert!(back.dfg.node(OpId::new(0)).is_dead());
        assert!(back.dfg.node(OpId::new(1)).is_dead());
    }
}
