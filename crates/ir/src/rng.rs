//! Deterministic pseudo-randomness and stable hashing.
//!
//! The workload generator, property-style tests, and the sweep engine's
//! memo table all need reproducible randomness and stable 64-bit content
//! fingerprints. Keeping both here (rather than pulling in `rand`) makes
//! every generated loop and every cache key a pure function of the seed or
//! content, independent of crate versions and platform.

/// A small, fast, deterministic PRNG (xorshift* family, seeded through
/// SplitMix64 so that nearby seeds diverge immediately).
///
/// # Example
///
/// ```
/// use veal_ir::rng::Rng64;
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from `seed`; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // One SplitMix64 step decorrelates small consecutive seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng64 {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): passes the statistical tests this repo needs
        // (operand selection, opcode mixing), with a 2^64-1 period.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

/// An incremental FNV-1a 64-bit hasher for content fingerprints.
///
/// Used for the sweep memo table's keys: loop bodies, accelerator
/// configurations, and CCA shapes hash through this so that equal content
/// always produces equal keys, across threads and processes.
///
/// # Example
///
/// ```
/// use veal_ir::rng::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_u64(42);
/// let a = h.finish();
/// let mut h2 = Fnv64::new();
/// h2.write_u64(42);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Folds eight bytes, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Folds a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Folds a string (length-prefixed so `("ab","c")` ≠ `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Rng64::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(3, 17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::new(77);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..=3_200).contains(&hits), "{hits}");
        let mut r = Rng64::new(78);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        let mut r = Rng64::new(79);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng64::new(31);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fnv_distinguishes_order() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fnv_string_framing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
