//! Identifier newtypes used throughout the IR.
//!
//! Each graph-like structure in VEAL indexes its elements with a dedicated
//! newtype so that, e.g., an operation index can never be confused with a
//! basic-block index (C-NEWTYPE).

use std::fmt;

/// Identifier of an operation (a node) inside a [`crate::Dfg`] or a
/// [`crate::cfg::Function`].
///
/// `OpId`s are dense indices assigned in creation order; the VEAL paper's
/// Figure 5 numbers its loop ops 1..=15 the same way.
///
/// # Example
///
/// ```
/// use veal_ir::OpId;
/// let id = OpId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "op3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(u32);

impl OpId {
    /// Creates an operation id from a dense index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        OpId(u32::try_from(index).expect("operation index exceeds u32 range"))
    }

    /// Returns the dense index backing this id.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Identifier of a basic block inside a [`crate::cfg::Function`].
///
/// # Example
///
/// ```
/// use veal_ir::BlockId;
/// assert_eq!(format!("{}", BlockId::new(2)), "bb2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a dense index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        BlockId(u32::try_from(index).expect("block index exceeds u32 range"))
    }

    /// Returns the dense index backing this id.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a function within a program (used by call instructions and
/// the inliner).
///
/// # Example
///
/// ```
/// use veal_ir::FuncId;
/// assert_eq!(format!("{}", FuncId::new(0)), "fn0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from a dense index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        FuncId(u32::try_from(index).expect("function index exceeds u32 range"))
    }

    /// Returns the dense index backing this id.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// A virtual register in the baseline instruction set.
///
/// The baseline ISA is register-rich (virtual registers are unbounded); the
/// translator later maps live values onto the accelerator's finite register
/// file and aborts if they do not fit (paper §4.1, "Register Assignment").
///
/// # Example
///
/// ```
/// use veal_ir::VReg;
/// let r = VReg::new(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(format!("{r}"), "v7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(u32);

impl VReg {
    /// Creates a virtual register from a dense index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        VReg(u32::try_from(index).expect("register index exceeds u32 range"))
    }

    /// Returns the dense index backing this register.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_round_trips_index() {
        for i in [0usize, 1, 15, 4096] {
            assert_eq!(OpId::new(i).index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(OpId::new(1) < OpId::new(2));
        assert!(BlockId::new(0) < BlockId::new(9));
        assert!(VReg::new(3) < VReg::new(4));
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(OpId::new(15).to_string(), "op15");
        assert_eq!(BlockId::new(1).to_string(), "bb1");
        assert_eq!(FuncId::new(2).to_string(), "fn2");
        assert_eq!(VReg::new(0).to_string(), "v0");
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(OpId::new(1), "a");
        m.insert(OpId::new(2), "b");
        assert_eq!(m[&OpId::new(1)], "a");
    }
}
