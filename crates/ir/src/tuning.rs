//! Host-side kernel selection knobs.
//!
//! The translation pipeline keeps two host implementations of its hot
//! analysis kernels: the original, allocation-heavy reference versions
//! (per-node `Vec` walks, `HashSet` membership, per-call Tarjan state) and
//! the data-oriented versions that run on the CSR adjacency and `u64`
//! bitset words (see [`crate::dfg::Adjacency`]). Both produce bit-identical
//! results and charge the abstract [`crate::CostMeter`] identically — the
//! toggle only changes how fast the *host* arrives at the same numbers,
//! mirroring [`veal_sched::set_parametric_enabled`] for the MinDist kernel.
//!
//! `bench_translate` pins the toggle per measurement arm to quantify the
//! win per phase; property tests flip it to pit the two implementations
//! against each other.
//!
//! [`veal_sched::set_parametric_enabled`]: https://docs.rs/veal-sched

use std::cell::Cell;

thread_local! {
    static DATA_ORIENTED: Cell<bool> = const { Cell::new(true) };
}

/// Whether the data-oriented kernels (CSR adjacency sweeps, bitset
/// legality, arena-backed condensation) are in effect on this thread
/// (the default).
#[must_use]
pub fn data_oriented_enabled() -> bool {
    DATA_ORIENTED.with(Cell::get)
}

/// Enables/disables the data-oriented kernels on this thread, returning
/// the previous setting. Results are bit-identical either way.
pub fn set_data_oriented(on: bool) -> bool {
    DATA_ORIENTED.with(|c| c.replace(on))
}
