//! The dataflow graph of an innermost loop body.
//!
//! A [`Dfg`] is the representation every translation stage of VEAL operates
//! on: nodes are operations (plus pseudo-nodes for scalar live-ins and
//! constants, which occupy accelerator registers but are not scheduled), and
//! edges carry an **iteration distance** — a distance of 0 is an ordinary
//! intra-iteration dependence, a distance of `d > 0` means the value flows
//! to the consumer `d` iterations later (a loop-carried dependence).
//! Recurrences — the cycles that bound the achievable initiation interval —
//! are exactly the non-trivial strongly connected components of this graph.

use crate::condense::Condensation;
use crate::opcode::{FuClass, Opcode};
use crate::types::OpId;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// What a [`DfgNode`] represents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A real operation of the loop body.
    Op(Opcode),
    /// A scalar live-in value, written into the accelerator's memory-mapped
    /// register file before the loop starts (paper §2.1).
    LiveIn,
    /// A compile-time constant, preloaded into a register.
    Const(i64),
}

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// True register dataflow.
    Data,
    /// Memory ordering (store→load, store→store) that the hardware memory
    /// ordering support must honor (paper §4.1, "Separating Control and
    /// Memory Streams").
    Mem,
}

/// A dependence edge between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DfgEdge {
    /// Producer node.
    pub src: OpId,
    /// Consumer node.
    pub dst: OpId,
    /// Iteration distance: 0 for intra-iteration dependences, `d > 0` when
    /// the value is consumed `d` iterations after it is produced.
    pub distance: u32,
    /// Dependence kind.
    pub kind: EdgeKind,
}

/// A node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgNode {
    /// What this node is.
    pub kind: NodeKind,
    /// For `Load`/`Store` ops: the memory stream this access belongs to.
    pub stream: Option<u16>,
    /// For [`Opcode::Cca`] pseudo-ops: the original ops collapsed into this
    /// CCA invocation, in seed order.
    pub cca_members: Vec<OpId>,
    /// Whether the value produced by this node is live after the loop
    /// (read from the memory-mapped register file on completion).
    pub live_out: bool,
    /// Tombstone flag set when the node was collapsed into a CCA op.
    dead: bool,
}

impl DfgNode {
    fn new(kind: NodeKind) -> Self {
        DfgNode {
            kind,
            stream: None,
            cca_members: Vec::new(),
            live_out: false,
            dead: false,
        }
    }

    /// The opcode, if this node is a real operation.
    #[must_use]
    pub fn opcode(&self) -> Option<Opcode> {
        match self.kind {
            NodeKind::Op(op) => Some(op),
            _ => None,
        }
    }

    /// Whether this node has been collapsed away.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether this node is an operation that occupies a function-unit slot
    /// in a modulo schedule (everything except live-ins, constants, and dead
    /// nodes).
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        !self.dead && matches!(self.kind, NodeKind::Op(_))
    }
}

/// The dataflow graph of one innermost loop body.
///
/// Constructed through [`crate::DfgBuilder`]; mutated only by the CCA mapper
/// (via [`Dfg::collapse`]). Node ids are stable: collapsing tombstones the
/// member nodes rather than renumbering.
///
/// # Example
///
/// ```
/// use veal_ir::{DfgBuilder, Opcode};
/// let mut b = DfgBuilder::new();
/// let a = b.load_stream(0);
/// let c = b.op(Opcode::Mul, &[a, a]);
/// b.store_stream(1, c);
/// let dfg = b.finish();
/// assert_eq!(dfg.schedulable_ops().count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    nodes: Vec<DfgNode>,
    edges: Vec<DfgEdge>,
    succ: Vec<Vec<u32>>,
    pred: Vec<Vec<u32>>,
    /// Lazily built SCC condensation + reachability (see
    /// [`Dfg::condensation`]). Cloning a graph shares the cached value;
    /// structural mutation clears it. Not part of the graph's identity:
    /// `PartialEq` and `content_hash` ignore it.
    cond: OnceLock<Arc<Condensation>>,
    /// Lazily computed [`Dfg::content_hash`]. Cleared by every mutator,
    /// including [`Dfg::node_mut`] (stream/live-out annotations are part
    /// of the hashed identity even though they don't affect `cond`).
    hash: OnceLock<u64>,
}

impl PartialEq for Dfg {
    fn eq(&self, other: &Self) -> bool {
        // succ/pred are derived from `edges`; the cached condensation is
        // derived from both and deliberately excluded.
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Eq for Dfg {}

impl Dfg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> OpId {
        self.cond = OnceLock::new();
        self.hash = OnceLock::new();
        let id = OpId::new(self.nodes.len());
        self.nodes.push(DfgNode::new(kind));
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: OpId, dst: OpId, distance: u32, kind: EdgeKind) {
        self.cond = OnceLock::new();
        self.hash = OnceLock::new();
        assert!(src.index() < self.nodes.len(), "src out of range");
        assert!(dst.index() < self.nodes.len(), "dst out of range");
        let idx = self.edges.len() as u32;
        self.edges.push(DfgEdge {
            src,
            dst,
            distance,
            kind,
        });
        self.succ[src.index()].push(idx);
        self.pred[dst.index()].push(idx);
    }

    /// Total number of node slots (including dead nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: OpId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: OpId) -> &mut DfgNode {
        // The caller may rewrite hashed annotations (stream, live_out)
        // through the returned reference.
        self.hash = OnceLock::new();
        &mut self.nodes[id.index()]
    }

    /// Iterates over all live (non-tombstoned) node ids.
    pub fn live_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead)
            .map(|(i, _)| OpId::new(i))
    }

    /// Iterates over the ids of nodes that occupy schedule slots.
    pub fn schedulable_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_schedulable())
            .map(|(i, _)| OpId::new(i))
    }

    /// All edges, including those whose endpoints are dead (callers that
    /// walk adjacency through [`Dfg::succ_edges`]/[`Dfg::pred_edges`] never
    /// see dead endpoints because dead nodes keep no adjacency).
    #[must_use]
    pub fn edges(&self) -> &[DfgEdge] {
        &self.edges
    }

    /// Outgoing edges of `id`.
    pub fn succ_edges(&self, id: OpId) -> impl Iterator<Item = &DfgEdge> + '_ {
        self.succ[id.index()]
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Incoming edges of `id`.
    pub fn pred_edges(&self, id: OpId) -> impl Iterator<Item = &DfgEdge> + '_ {
        self.pred[id.index()]
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Number of schedulable ops per function-unit class.
    #[must_use]
    pub fn op_counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        for id in self.schedulable_ops() {
            let op = self.node(id).opcode().expect("schedulable node is op");
            match op.fu_class() {
                FuClass::Int => counts.int += 1,
                FuClass::Fp => counts.fp += 1,
                FuClass::Cca => counts.cca += 1,
                FuClass::Mem => counts.mem += 1,
                FuClass::Control => counts.control += 1,
            }
        }
        counts
    }

    /// Strongly connected components over all edges (any distance), in
    /// reverse topological order of the component DAG. Components containing
    /// a cycle — `len() > 1`, or a single node with a self edge — are the
    /// loop's **recurrences**.
    ///
    /// Dead nodes are excluded.
    ///
    /// Delegates to the cached [`Dfg::condensation`]; the list (content
    /// and order) is identical to the original per-call Tarjan.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<OpId>> {
        self.condensation().comps().to_vec()
    }

    /// The cached SCC condensation + distance-0 reachability closure of
    /// the graph (see [`Condensation`]). Built on first use, shared by
    /// clones, and invalidated by any structural mutation (`add_node`,
    /// `add_edge`, `collapse`, `remove_nodes`). The returned [`Arc`] stays
    /// valid even if the graph is mutated afterwards.
    #[must_use]
    pub fn condensation(&self) -> Arc<Condensation> {
        Arc::clone(
            self.cond
                .get_or_init(|| Arc::new(Condensation::build(self))),
        )
    }

    /// The recurrences of the loop: SCCs that actually contain a cycle.
    #[must_use]
    pub fn recurrences(&self) -> Vec<Vec<OpId>> {
        self.sccs()
            .into_iter()
            .filter(|scc| {
                scc.len() > 1
                    || self
                        .succ_edges(scc[0])
                        .any(|e| e.dst == scc[0] && !self.node(e.src).dead)
            })
            .collect()
    }

    /// Topological order of live nodes over distance-0 edges only.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the ids stuck in a cycle if the distance-0
    /// subgraph is cyclic (an ill-formed loop body: an intra-iteration
    /// dependence cycle cannot execute).
    pub fn topo_order(&self) -> Result<Vec<OpId>, Vec<OpId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut live = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            live += 1;
            indeg[i] = self.pred[i]
                .iter()
                .filter(|&&e| {
                    let edge = &self.edges[e as usize];
                    edge.distance == 0 && !self.nodes[edge.src.index()].dead
                })
                .count();
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.nodes[i].dead && indeg[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(live);
        while let Some(v) = queue.pop() {
            order.push(OpId::new(v));
            for &e in &self.succ[v] {
                let edge = &self.edges[e as usize];
                if edge.distance != 0 || self.nodes[edge.dst.index()].dead {
                    continue;
                }
                let w = edge.dst.index();
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() == live {
            Ok(order)
        } else {
            let stuck: Vec<OpId> = (0..n)
                .filter(|&i| !self.nodes[i].dead && indeg[i] > 0)
                .map(OpId::new)
                .collect();
            Err(stuck)
        }
    }

    /// Collapses `members` into a single [`Opcode::Cca`] pseudo-node,
    /// rewiring external edges to the new node and tombstoning the members.
    ///
    /// Internal distance-0 edges become the CCA's combinational wiring and
    /// disappear; internal loop-carried edges (distance > 0) become
    /// self-edges on the CCA node — the value is routed out to a register
    /// and back in on a later iteration.
    ///
    /// Returns the id of the new CCA node.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains a dead or non-CCA-supported
    /// node.
    pub fn collapse(&mut self, members: &[OpId]) -> OpId {
        assert!(!members.is_empty(), "cannot collapse an empty member set");
        let member_set: std::collections::HashSet<OpId> = members.iter().copied().collect();
        for &m in members {
            let node = &self.nodes[m.index()];
            assert!(!node.dead, "member {m} already dead");
            assert!(
                node.opcode().is_some_and(|op| op.cca_supported()),
                "member {m} is not a CCA-supported op"
            );
        }
        let cca = self.add_node(NodeKind::Op(Opcode::Cca));
        self.nodes[cca.index()].cca_members = members.to_vec();
        self.nodes[cca.index()].live_out = members.iter().any(|&m| self.nodes[m.index()].live_out);

        // Rewire external edges. Collect first to satisfy the borrow checker.
        let mut new_edges: Vec<DfgEdge> = Vec::new();
        for e in &self.edges {
            let src_in = member_set.contains(&e.src);
            let dst_in = member_set.contains(&e.dst);
            if src_in && dst_in {
                if e.distance > 0 {
                    new_edges.push(DfgEdge {
                        src: cca,
                        dst: cca,
                        distance: e.distance,
                        kind: e.kind,
                    });
                }
                continue;
            }
            if src_in && !self.nodes[e.dst.index()].dead {
                new_edges.push(DfgEdge {
                    src: cca,
                    dst: e.dst,
                    distance: e.distance,
                    kind: e.kind,
                });
            } else if dst_in && !self.nodes[e.src.index()].dead {
                new_edges.push(DfgEdge {
                    src: e.src,
                    dst: cca,
                    distance: e.distance,
                    kind: e.kind,
                });
            }
        }
        // Tombstone members and drop their adjacency.
        for &m in members {
            self.nodes[m.index()].dead = true;
        }
        self.rebuild_edges_excluding_dead(new_edges);
        cca
    }

    /// Removes the given nodes (and their edges) from the graph by
    /// tombstoning. Used when separating control and address computations
    /// from the compute dataflow (paper §4.1).
    pub fn remove_nodes(&mut self, ids: &[OpId]) {
        for &id in ids {
            self.nodes[id.index()].dead = true;
        }
        self.rebuild_edges_excluding_dead(Vec::new());
    }

    fn rebuild_edges_excluding_dead(&mut self, extra: Vec<DfgEdge>) {
        self.cond = OnceLock::new();
        self.hash = OnceLock::new();
        let mut kept: Vec<DfgEdge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| !self.nodes[e.src.index()].dead && !self.nodes[e.dst.index()].dead)
            .collect();
        kept.extend(
            extra
                .into_iter()
                .filter(|e| !self.nodes[e.src.index()].dead && !self.nodes[e.dst.index()].dead),
        );
        // Deduplicate identical edges introduced by rewiring.
        kept.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        kept.dedup();
        self.edges = kept;
        for s in &mut self.succ {
            s.clear();
        }
        for p in &mut self.pred {
            p.clear();
        }
        for (i, e) in self.edges.iter().enumerate() {
            self.succ[e.src.index()].push(i as u32);
            self.pred[e.dst.index()].push(i as u32);
        }
    }

    /// The ids of scalar live-in nodes.
    pub fn live_in_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && matches!(n.kind, NodeKind::LiveIn))
            .map(|(i, _)| OpId::new(i))
    }

    /// The ids of constant nodes.
    pub fn const_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && matches!(n.kind, NodeKind::Const(_)))
            .map(|(i, _)| OpId::new(i))
    }

    /// The ids of live-out values.
    pub fn live_out_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && n.live_out)
            .map(|(i, _)| OpId::new(i))
    }

    /// A stable 64-bit fingerprint of the graph's content: node kinds,
    /// stream annotations, liveness, collapse state, and every edge. Equal
    /// graphs hash equal across threads and processes, so the fingerprint
    /// can key persistent or shared caches (the sweep engine's translation
    /// memo keys on it). Cached after the first call (the parametric
    /// MinDist cache and the sweep memo both key on it per translation);
    /// every mutator, including [`Dfg::node_mut`], clears the cache.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        *self.hash.get_or_init(|| self.content_hash_uncached())
    }

    fn content_hash_uncached(&self) -> u64 {
        let mut h = crate::rng::Fnv64::new();
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Op(op) => {
                    h.write_u8(1);
                    h.write_u64(*op as u64);
                }
                NodeKind::LiveIn => h.write_u8(2),
                NodeKind::Const(v) => {
                    h.write_u8(3);
                    h.write_u64(*v as u64);
                }
            }
            h.write_u64(n.stream.map_or(u64::MAX, u64::from));
            h.write_u8(u8::from(n.live_out) | (u8::from(n.dead) << 1));
            h.write_u64(n.cca_members.len() as u64);
            for m in &n.cca_members {
                h.write_u64(m.index() as u64);
            }
        }
        h.write_u64(self.edges.len() as u64);
        for e in &self.edges {
            h.write_u64(e.src.index() as u64);
            h.write_u64(e.dst.index() as u64);
            h.write_u64(u64::from(e.distance));
            h.write_u8(match e.kind {
                EdgeKind::Data => 0,
                EdgeKind::Mem => 1,
            });
        }
        h.finish()
    }
}

/// Per-function-unit-class operation counts, as used by the ResMII
/// computation (paper §4.1, "Minimum II Calculation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Ops needing an integer unit.
    pub int: usize,
    /// Ops needing a floating-point unit.
    pub fp: usize,
    /// Collapsed CCA invocations.
    pub cca: usize,
    /// Memory (FIFO) accesses.
    pub mem: usize,
    /// Control ops (normally stripped before scheduling).
    pub control: usize,
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "int={} fp={} cca={} mem={} ctrl={}",
            self.int, self.fp, self.cca, self.mem, self.control
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn chain3() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.load_stream(0);
        let c = b.op(Opcode::Add, &[a, a]);
        b.store_stream(1, c);
        b.finish()
    }

    #[test]
    fn add_edge_builds_adjacency() {
        let dfg = chain3();
        let load = OpId::new(0);
        // `add` reads the loaded value twice: two edges.
        assert_eq!(dfg.succ_edges(load).count(), 2);
        assert_eq!(dfg.pred_edges(load).count(), 0);
    }

    #[test]
    fn topo_order_of_chain() {
        let dfg = chain3();
        let order = dfg.topo_order().expect("acyclic");
        let pos: Vec<usize> = (0..3)
            .map(|i| order.iter().position(|&o| o == OpId::new(i)).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
    }

    #[test]
    fn topo_order_detects_distance0_cycle() {
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let b = dfg.add_node(NodeKind::Op(Opcode::Sub));
        dfg.add_edge(a, b, 0, EdgeKind::Data);
        dfg.add_edge(b, a, 0, EdgeKind::Data);
        assert!(dfg.topo_order().is_err());
    }

    #[test]
    fn recurrence_detection_self_edge() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        b.loop_carried(x, x, 1);
        let dfg = b.finish();
        let recs = dfg.recurrences();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], vec![x]);
    }

    #[test]
    fn recurrence_detection_two_node_cycle() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Sub, &[x]);
        b.loop_carried(y, x, 1);
        let dfg = b.finish();
        let recs = dfg.recurrences();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].len(), 2);
    }

    #[test]
    fn acyclic_graph_has_no_recurrences() {
        assert!(chain3().recurrences().is_empty());
    }

    #[test]
    fn sccs_cover_all_live_nodes() {
        let dfg = chain3();
        let total: usize = dfg.sccs().iter().map(Vec::len).sum();
        assert_eq!(total, dfg.live_ids().count());
    }

    #[test]
    fn collapse_rewires_external_edges() {
        let mut b = DfgBuilder::new();
        let input = b.live_in();
        let x = b.op(Opcode::And, &[input]);
        let y = b.op(Opcode::Xor, &[x]);
        let z = b.op(Opcode::Shl, &[y]); // not CCA-supported, stays outside
        b.store_stream(0, z);
        let mut dfg = b.finish();
        let cca = dfg.collapse(&[x, y]);
        assert!(dfg.node(x).is_dead());
        assert!(dfg.node(y).is_dead());
        let preds: Vec<OpId> = dfg.pred_edges(cca).map(|e| e.src).collect();
        assert_eq!(preds, vec![input]);
        let succs: Vec<OpId> = dfg.succ_edges(cca).map(|e| e.dst).collect();
        assert_eq!(succs, vec![z]);
        assert_eq!(dfg.node(cca).cca_members, vec![x, y]);
    }

    #[test]
    fn collapse_preserves_loop_carried_external_edge() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Sub, &[x]);
        b.loop_carried(y, x, 1);
        let mut dfg = b.finish();
        let cca = dfg.collapse(&[x, y]);
        // The distance-1 cycle is now a self edge on the CCA node.
        let self_edges: Vec<&DfgEdge> = dfg.succ_edges(cca).filter(|e| e.dst == cca).collect();
        assert_eq!(self_edges.len(), 1);
        assert_eq!(self_edges[0].distance, 1);
    }

    #[test]
    #[should_panic(expected = "not a CCA-supported op")]
    fn collapse_rejects_unsupported_member() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Shl, &[x]); // shifts are not CCA-supported
        let mut dfg = b.finish();
        let _ = dfg.collapse(&[x, y]);
    }

    #[test]
    fn op_counts_by_class() {
        let mut b = DfgBuilder::new();
        let a = b.load_stream(0);
        let m = b.op(Opcode::Mul, &[a, a]);
        let f = b.op(Opcode::ItoF, &[m]);
        let g = b.op(Opcode::FAdd, &[f, f]);
        b.store_stream(1, g);
        let dfg = b.finish();
        let c = dfg.op_counts();
        assert_eq!(c.int, 1);
        assert_eq!(c.fp, 2);
        assert_eq!(c.mem, 2);
        assert_eq!(c.cca, 0);
    }

    #[test]
    fn remove_nodes_drops_edges() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::Add, &[]);
        let c = b.op(Opcode::Sub, &[a]);
        let d = b.op(Opcode::Xor, &[c]);
        let mut dfg = b.finish();
        dfg.remove_nodes(&[c]);
        assert!(dfg.node(c).is_dead());
        assert_eq!(dfg.succ_edges(a).count(), 0);
        assert_eq!(dfg.pred_edges(d).count(), 0);
    }

    #[test]
    fn live_in_and_const_iterators() {
        let mut b = DfgBuilder::new();
        let li = b.live_in();
        let k = b.constant(3);
        let s = b.op(Opcode::Add, &[li, k]);
        b.mark_live_out(s);
        let dfg = b.finish();
        assert_eq!(dfg.live_in_ids().collect::<Vec<_>>(), vec![li]);
        assert_eq!(dfg.const_ids().collect::<Vec<_>>(), vec![k]);
        assert_eq!(dfg.live_out_ids().collect::<Vec<_>>(), vec![s]);
    }

    #[test]
    fn collapse_marks_live_out_if_member_was() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Xor, &[x]);
        b.mark_live_out(y);
        let mut dfg = b.finish();
        let cca = dfg.collapse(&[x, y]);
        assert!(dfg.node(cca).live_out);
    }

    #[test]
    fn large_scc_iterative_tarjan_no_overflow() {
        // A single cycle through 50_000 nodes would overflow a recursive
        // Tarjan; the iterative version must handle it.
        let mut dfg = Dfg::new();
        let n = 50_000;
        let ids: Vec<OpId> = (0..n)
            .map(|_| dfg.add_node(NodeKind::Op(Opcode::Add)))
            .collect();
        for i in 0..n - 1 {
            dfg.add_edge(ids[i], ids[i + 1], 0, EdgeKind::Data);
        }
        dfg.add_edge(ids[n - 1], ids[0], 1, EdgeKind::Data);
        let recs = dfg.recurrences();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].len(), n);
    }
}
