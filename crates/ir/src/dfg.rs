//! The dataflow graph of an innermost loop body.
//!
//! A [`Dfg`] is the representation every translation stage of VEAL operates
//! on: nodes are operations (plus pseudo-nodes for scalar live-ins and
//! constants, which occupy accelerator registers but are not scheduled), and
//! edges carry an **iteration distance** — a distance of 0 is an ordinary
//! intra-iteration dependence, a distance of `d > 0` means the value flows
//! to the consumer `d` iterations later (a loop-carried dependence).
//! Recurrences — the cycles that bound the achievable initiation interval —
//! are exactly the non-trivial strongly connected components of this graph.

use crate::arena::{with_arena, DfgArena};
use crate::condense::Condensation;
use crate::opcode::{FuClass, Opcode};
use crate::types::OpId;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// What a [`DfgNode`] represents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A real operation of the loop body.
    Op(Opcode),
    /// A scalar live-in value, written into the accelerator's memory-mapped
    /// register file before the loop starts (paper §2.1).
    LiveIn,
    /// A compile-time constant, preloaded into a register.
    Const(i64),
}

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// True register dataflow.
    Data,
    /// Memory ordering (store→load, store→store) that the hardware memory
    /// ordering support must honor (paper §4.1, "Separating Control and
    /// Memory Streams").
    Mem,
}

/// A dependence edge between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DfgEdge {
    /// Producer node.
    pub src: OpId,
    /// Consumer node.
    pub dst: OpId,
    /// Iteration distance: 0 for intra-iteration dependences, `d > 0` when
    /// the value is consumed `d` iterations after it is produced.
    pub distance: u32,
    /// Dependence kind.
    pub kind: EdgeKind,
}

/// A node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgNode {
    /// What this node is.
    pub kind: NodeKind,
    /// For `Load`/`Store` ops: the memory stream this access belongs to.
    pub stream: Option<u16>,
    /// For [`Opcode::Cca`] pseudo-ops: the original ops collapsed into this
    /// CCA invocation, in seed order.
    pub cca_members: Vec<OpId>,
    /// Whether the value produced by this node is live after the loop
    /// (read from the memory-mapped register file on completion).
    pub live_out: bool,
    /// Tombstone flag set when the node was collapsed into a CCA op.
    pub(crate) dead: bool,
}

impl DfgNode {
    pub(crate) fn new(kind: NodeKind) -> Self {
        DfgNode {
            kind,
            stream: None,
            cca_members: Vec::new(),
            live_out: false,
            dead: false,
        }
    }

    /// The opcode, if this node is a real operation.
    #[must_use]
    pub fn opcode(&self) -> Option<Opcode> {
        match self.kind {
            NodeKind::Op(op) => Some(op),
            _ => None,
        }
    }

    /// Whether this node has been collapsed away.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether this node is an operation that occupies a function-unit slot
    /// in a modulo schedule (everything except live-ins, constants, and dead
    /// nodes).
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        !self.dead && matches!(self.kind, NodeKind::Op(_))
    }
}

/// The struct-of-arrays view of a [`Dfg`]'s structure: CSR adjacency plus
/// flat per-node arrays, rebuilt lazily per structural version of the
/// graph (see [`Dfg::adjacency`]).
///
/// * `succ_edge_ids(v)` / `pred_edge_ids(v)` are the indices into
///   [`Dfg::edges`] of `v`'s outgoing/incoming edges, **in edge insertion
///   order** — byte-for-byte the order the old per-node `Vec<u32>`
///   adjacency lists produced, which is what keeps downstream iteration
///   (and therefore schedules and memo fingerprints) bit-stable.
/// * `dead_words()` / `sched_words()` are `u64` bitsets over node slots
///   (bit `i` of word `i / 64`): tombstoned nodes and schedulable ops.
/// * `opcodes()` is a flat per-node array of [`Opcode::encode`] values,
///   [`Adjacency::NO_OP`] for pseudo nodes and dead slots — so hot
///   classification loops touch one byte per node instead of a
///   [`NodeKind`] (which drags the node's `cca_members` vector into
///   cache).
///
/// All buffers come from the shared [`DfgArena`] pool and return to it on
/// drop, so steady-state translation builds adjacency with ~zero
/// allocator traffic.
#[derive(Debug)]
pub struct Adjacency {
    n: usize,
    succ_off: Vec<u32>,
    succ_edge: Vec<u32>,
    pred_off: Vec<u32>,
    pred_edge: Vec<u32>,
    dead: Vec<u64>,
    sched: Vec<u64>,
    opc: Vec<u8>,
    any_dead: bool,
}

impl Adjacency {
    /// The `opcodes()` value of a node that is not a live operation.
    pub const NO_OP: u8 = u8::MAX;

    fn build(nodes: &[DfgNode], edges: &[DfgEdge], a: &mut DfgArena) -> Self {
        let n = nodes.len();
        let m = edges.len();
        let mut succ_off = a.take_u32();
        succ_off.resize(n + 1, 0);
        let mut pred_off = a.take_u32();
        pred_off.resize(n + 1, 0);
        for e in edges {
            succ_off[e.src.index() + 1] += 1;
            pred_off[e.dst.index() + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let mut succ_edge = a.take_u32();
        succ_edge.resize(m, 0);
        let mut pred_edge = a.take_u32();
        pred_edge.resize(m, 0);
        let mut next_s = a.take_u32();
        next_s.extend_from_slice(&succ_off[..n]);
        let mut next_p = a.take_u32();
        next_p.extend_from_slice(&pred_off[..n]);
        // Stable counting sort: filling in edge-index order preserves the
        // per-node insertion order of the old push-based lists.
        for (i, e) in edges.iter().enumerate() {
            let s = e.src.index();
            succ_edge[next_s[s] as usize] = i as u32;
            next_s[s] += 1;
            let d = e.dst.index();
            pred_edge[next_p[d] as usize] = i as u32;
            next_p[d] += 1;
        }
        a.give_u32(next_s);
        a.give_u32(next_p);

        let words = n.div_ceil(64);
        let mut dead = a.take_u64();
        dead.resize(words, 0);
        let mut sched = a.take_u64();
        sched.resize(words, 0);
        let mut opc = a.take_u8();
        opc.resize(n, Self::NO_OP);
        let mut any_dead = false;
        for (i, node) in nodes.iter().enumerate() {
            if node.dead {
                dead[i / 64] |= 1 << (i % 64);
                any_dead = true;
            } else if let NodeKind::Op(op) = node.kind {
                sched[i / 64] |= 1 << (i % 64);
                opc[i] = op.encode();
            }
        }
        Adjacency {
            n,
            succ_off,
            succ_edge,
            pred_off,
            pred_edge,
            dead,
            sched,
            opc,
            any_dead,
        }
    }

    /// Number of node slots covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Indices into [`Dfg::edges`] of node `v`'s outgoing edges, in
    /// insertion order.
    #[must_use]
    #[inline]
    pub fn succ_edge_ids(&self, v: usize) -> &[u32] {
        &self.succ_edge[self.succ_off[v] as usize..self.succ_off[v + 1] as usize]
    }

    /// Indices into [`Dfg::edges`] of node `v`'s incoming edges, in
    /// insertion order.
    #[must_use]
    #[inline]
    pub fn pred_edge_ids(&self, v: usize) -> &[u32] {
        &self.pred_edge[self.pred_off[v] as usize..self.pred_off[v + 1] as usize]
    }

    /// The tombstone bitset (bit per node slot).
    #[must_use]
    pub fn dead_words(&self) -> &[u64] {
        &self.dead
    }

    /// The schedulable-op bitset (bit per node slot).
    #[must_use]
    pub fn sched_words(&self) -> &[u64] {
        &self.sched
    }

    /// Whether any node is tombstoned (fast gate for dead-endpoint scans).
    #[must_use]
    pub fn any_dead(&self) -> bool {
        self.any_dead
    }

    /// Whether node `v` is tombstoned.
    #[must_use]
    #[inline]
    pub fn is_dead(&self, v: usize) -> bool {
        self.dead[v / 64] >> (v % 64) & 1 != 0
    }

    /// Whether node `v` is a live operation (occupies a schedule slot).
    #[must_use]
    #[inline]
    pub fn is_schedulable(&self, v: usize) -> bool {
        self.sched[v / 64] >> (v % 64) & 1 != 0
    }

    /// Flat per-node [`Opcode::encode`] values ([`Adjacency::NO_OP`] for
    /// pseudo/dead slots).
    #[must_use]
    pub fn opcodes(&self) -> &[u8] {
        &self.opc
    }
}

impl Drop for Adjacency {
    fn drop(&mut self) {
        with_arena(|a| {
            a.give_u32(std::mem::take(&mut self.succ_off));
            a.give_u32(std::mem::take(&mut self.succ_edge));
            a.give_u32(std::mem::take(&mut self.pred_off));
            a.give_u32(std::mem::take(&mut self.pred_edge));
            a.give_u64(std::mem::take(&mut self.dead));
            a.give_u64(std::mem::take(&mut self.sched));
            a.give_u8(std::mem::take(&mut self.opc));
        });
    }
}

/// The dataflow graph of one innermost loop body.
///
/// Constructed through [`crate::DfgBuilder`]; mutated only by the CCA mapper
/// (via [`Dfg::collapse`]). Node ids are stable: collapsing tombstones the
/// member nodes rather than renumbering.
///
/// # Example
///
/// ```
/// use veal_ir::{DfgBuilder, Opcode};
/// let mut b = DfgBuilder::new();
/// let a = b.load_stream(0);
/// let c = b.op(Opcode::Mul, &[a, a]);
/// b.store_stream(1, c);
/// let dfg = b.finish();
/// assert_eq!(dfg.schedulable_ops().count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    pub(crate) nodes: Vec<DfgNode>,
    pub(crate) edges: Vec<DfgEdge>,
    /// Lazily built CSR adjacency + flat node arrays (see
    /// [`Dfg::adjacency`]). Like `cond`, cloning shares the cached value
    /// and structural mutation clears it.
    adj: OnceLock<Arc<Adjacency>>,
    /// Lazily built SCC condensation + reachability (see
    /// [`Dfg::condensation`]). Cloning a graph shares the cached value;
    /// structural mutation clears it. Not part of the graph's identity:
    /// `PartialEq` and `content_hash` ignore it.
    cond: OnceLock<Arc<Condensation>>,
    /// Lazily computed [`Dfg::content_hash`]. Cleared by every mutator,
    /// including [`Dfg::node_mut`] (stream/live-out annotations are part
    /// of the hashed identity even though they don't affect `cond`).
    hash: OnceLock<u64>,
    /// Lazily computed SCC membership (see [`Dfg::scc_view`]): the
    /// cheapest recurrence answer, shared by RecMII, the Swing ordering,
    /// and the commit-path legality checks. Same lifecycle as `cond`.
    scc: OnceLock<Arc<crate::condense::SccView>>,
}

impl PartialEq for Dfg {
    fn eq(&self, other: &Self) -> bool {
        // succ/pred are derived from `edges`; the cached condensation is
        // derived from both and deliberately excluded.
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Eq for Dfg {}

impl Dfg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> OpId {
        self.invalidate_structure();
        let id = OpId::new(self.nodes.len());
        self.nodes.push(DfgNode::new(kind));
        id
    }

    /// Adds a dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: OpId, dst: OpId, distance: u32, kind: EdgeKind) {
        self.invalidate_structure();
        assert!(src.index() < self.nodes.len(), "src out of range");
        assert!(dst.index() < self.nodes.len(), "dst out of range");
        self.edges.push(DfgEdge {
            src,
            dst,
            distance,
            kind,
        });
    }

    /// Clears every cache derived from the graph's structure.
    pub(crate) fn invalidate_structure(&mut self) {
        self.adj = OnceLock::new();
        self.cond = OnceLock::new();
        self.hash = OnceLock::new();
        self.scc = OnceLock::new();
    }

    /// Assembles a graph directly from parts (the fused single-pass
    /// separation uses this to skip the clone-then-rebuild round trip).
    pub(crate) fn from_parts(nodes: Vec<DfgNode>, edges: Vec<DfgEdge>) -> Self {
        Dfg {
            nodes,
            edges,
            adj: OnceLock::new(),
            cond: OnceLock::new(),
            hash: OnceLock::new(),
            scc: OnceLock::new(),
        }
    }

    /// The cached SCC membership view: `comp_of` per slot plus the cyclic
    /// bitset, computed by one allocation-free Tarjan pass
    /// ([`crate::scc_membership`]) on first use. Shared by clones and
    /// invalidated by structural mutation, like [`Dfg::adjacency`]. The
    /// per-loop recurrence consumers (RecMII, the Swing ordering, the
    /// hint-verify legality path) all ask the same question of the same
    /// graph version — this answers it once.
    #[must_use]
    pub fn scc_view(&self) -> Arc<crate::condense::SccView> {
        Arc::clone(self.scc.get_or_init(|| {
            let mut comp_of = Vec::new();
            let mut cyclic = Vec::new();
            let n_comps = crate::condense::scc_membership(self, &mut comp_of, &mut cyclic);
            Arc::new(crate::condense::SccView {
                comp_of,
                cyclic,
                n_comps,
            })
        }))
    }

    /// Re-derives every cached analysis — adjacency, structural
    /// verification, SCC condensation, content hash — on a copy with cold
    /// caches, folding the results into one value so none of the work can
    /// be optimized away. Bench support: `bench_translate` times this
    /// against the same pass over a [`crate::RefDfg`] to quantify the
    /// layout change on the DFG/loop-identification phase.
    #[must_use]
    pub fn reanalyze(&self) -> u64 {
        let fresh = Dfg::from_parts(self.nodes.clone(), self.edges.clone());
        let ok = crate::verify::verify_dfg(&fresh).is_ok();
        let n_sccs = fresh.sccs().len();
        fresh.content_hash() ^ u64::from(ok) ^ (n_sccs as u64) << 1
    }

    /// The cached struct-of-arrays view of the graph: CSR adjacency, dead
    /// and schedulable bitsets, and the flat opcode array. Built on first
    /// use from pooled [`DfgArena`] buffers, shared by clones, and
    /// invalidated by any structural mutation — the same lifecycle as
    /// [`Dfg::condensation`].
    #[must_use]
    pub fn adjacency(&self) -> &Adjacency {
        self.adj.get_or_init(|| {
            Arc::new(with_arena(|a| {
                Adjacency::build(&self.nodes, &self.edges, a)
            }))
        })
    }

    /// Total number of node slots (including dead nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: OpId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: OpId) -> &mut DfgNode {
        // The caller may rewrite hashed annotations (stream, live_out)
        // through the returned reference.
        self.hash = OnceLock::new();
        &mut self.nodes[id.index()]
    }

    /// Iterates over all live (non-tombstoned) node ids.
    pub fn live_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead)
            .map(|(i, _)| OpId::new(i))
    }

    /// Iterates over the ids of nodes that occupy schedule slots.
    pub fn schedulable_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_schedulable())
            .map(|(i, _)| OpId::new(i))
    }

    /// All edges, including those whose endpoints are dead (callers that
    /// walk adjacency through [`Dfg::succ_edges`]/[`Dfg::pred_edges`] never
    /// see dead endpoints because dead nodes keep no adjacency).
    #[must_use]
    pub fn edges(&self) -> &[DfgEdge] {
        &self.edges
    }

    /// Outgoing edges of `id`, in insertion order.
    pub fn succ_edges(&self, id: OpId) -> impl Iterator<Item = &DfgEdge> + '_ {
        self.adjacency()
            .succ_edge_ids(id.index())
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Incoming edges of `id`, in insertion order.
    pub fn pred_edges(&self, id: OpId) -> impl Iterator<Item = &DfgEdge> + '_ {
        self.adjacency()
            .pred_edge_ids(id.index())
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Number of schedulable ops per function-unit class.
    #[must_use]
    pub fn op_counts(&self) -> OpCounts {
        let mut counts = OpCounts::default();
        for id in self.schedulable_ops() {
            let op = self.node(id).opcode().expect("schedulable node is op");
            match op.fu_class() {
                FuClass::Int => counts.int += 1,
                FuClass::Fp => counts.fp += 1,
                FuClass::Cca => counts.cca += 1,
                FuClass::Mem => counts.mem += 1,
                FuClass::Control => counts.control += 1,
            }
        }
        counts
    }

    /// Strongly connected components over all edges (any distance), in
    /// reverse topological order of the component DAG. Components containing
    /// a cycle — `len() > 1`, or a single node with a self edge — are the
    /// loop's **recurrences**.
    ///
    /// Dead nodes are excluded.
    ///
    /// Delegates to the cached [`Dfg::condensation`]; the list (content
    /// and order) is identical to the original per-call Tarjan.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<OpId>> {
        self.condensation().comps().to_vec()
    }

    /// The cached SCC condensation + distance-0 reachability closure of
    /// the graph (see [`Condensation`]). Built on first use, shared by
    /// clones, and invalidated by any structural mutation (`add_node`,
    /// `add_edge`, `collapse`, `remove_nodes`). The returned [`Arc`] stays
    /// valid even if the graph is mutated afterwards.
    #[must_use]
    pub fn condensation(&self) -> Arc<Condensation> {
        Arc::clone(
            self.cond
                .get_or_init(|| Arc::new(Condensation::build(self))),
        )
    }

    /// The recurrences of the loop: SCCs that actually contain a cycle.
    #[must_use]
    pub fn recurrences(&self) -> Vec<Vec<OpId>> {
        self.sccs()
            .into_iter()
            .filter(|scc| {
                scc.len() > 1
                    || self
                        .succ_edges(scc[0])
                        .any(|e| e.dst == scc[0] && !self.node(e.src).dead)
            })
            .collect()
    }

    /// Topological order of live nodes over distance-0 edges only.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the ids stuck in a cycle if the distance-0
    /// subgraph is cyclic (an ill-formed loop body: an intra-iteration
    /// dependence cycle cannot execute).
    pub fn topo_order(&self) -> Result<Vec<OpId>, Vec<OpId>> {
        let n = self.nodes.len();
        let adj = self.adjacency();
        with_arena(|a| {
            let mut indeg = a.take_u32();
            indeg.resize(n, 0);
            let mut live = 0usize;
            for (i, d) in indeg.iter_mut().enumerate() {
                if adj.is_dead(i) {
                    continue;
                }
                live += 1;
                *d = adj
                    .pred_edge_ids(i)
                    .iter()
                    .filter(|&&e| {
                        let edge = &self.edges[e as usize];
                        edge.distance == 0 && !adj.is_dead(edge.src.index())
                    })
                    .count() as u32;
            }
            // Same Kahn worklist as the original per-node-`Vec` version
            // (seed in ascending id order, LIFO pop): the emitted order is
            // bit-identical.
            let mut queue = a.take_u32();
            queue.extend(
                (0..n as u32).filter(|&i| !adj.is_dead(i as usize) && indeg[i as usize] == 0),
            );
            let mut order = Vec::with_capacity(live);
            while let Some(v) = queue.pop() {
                order.push(OpId::new(v as usize));
                for &e in adj.succ_edge_ids(v as usize) {
                    let edge = &self.edges[e as usize];
                    if edge.distance != 0 || adj.is_dead(edge.dst.index()) {
                        continue;
                    }
                    let w = edge.dst.index();
                    indeg[w] -= 1;
                    if indeg[w] == 0 {
                        queue.push(w as u32);
                    }
                }
            }
            let result = if order.len() == live {
                Ok(order)
            } else {
                let stuck: Vec<OpId> = (0..n)
                    .filter(|&i| !adj.is_dead(i) && indeg[i] > 0)
                    .map(OpId::new)
                    .collect();
                Err(stuck)
            };
            a.give_u32(indeg);
            a.give_u32(queue);
            result
        })
    }

    /// Collapses `members` into a single [`Opcode::Cca`] pseudo-node,
    /// rewiring external edges to the new node and tombstoning the members.
    ///
    /// Internal distance-0 edges become the CCA's combinational wiring and
    /// disappear; internal loop-carried edges (distance > 0) become
    /// self-edges on the CCA node — the value is routed out to a register
    /// and back in on a later iteration.
    ///
    /// Returns the id of the new CCA node.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains a dead or non-CCA-supported
    /// node.
    pub fn collapse(&mut self, members: &[OpId]) -> OpId {
        assert!(!members.is_empty(), "cannot collapse an empty member set");
        // Membership as a bitset over pre-collapse node slots: the edge
        // rewiring loop below probes it twice per edge, and a HashSet
        // probe (hash + indirection) is the dominant cost for the small
        // member sets the mapper commits.
        let words = self.nodes.len().div_ceil(64);
        let mut member_bits = with_arena(|a| {
            let mut w = a.take_u64();
            w.resize(words, 0);
            w
        });
        for &m in members {
            member_bits[m.index() / 64] |= 1 << (m.index() % 64);
            let node = &self.nodes[m.index()];
            assert!(!node.dead, "member {m} already dead");
            assert!(
                node.opcode().is_some_and(|op| op.cca_supported()),
                "member {m} is not a CCA-supported op"
            );
        }
        let in_members = |id: OpId| member_bits[id.index() / 64] >> (id.index() % 64) & 1 != 0;
        let cca = self.add_node(NodeKind::Op(Opcode::Cca));
        self.nodes[cca.index()].cca_members = members.to_vec();
        self.nodes[cca.index()].live_out = members.iter().any(|&m| self.nodes[m.index()].live_out);

        // Rewire in one retain pass: member-touching edges leave the array
        // (redirected copies and internal loop-carried self-edges collect
        // in `rewired`), dead-endpoint edges drop out. Removing elements
        // from the canonically sorted pre-collapse array leaves the
        // retained run sorted, so the adaptive sort below only pays for
        // merging the short rewired tail. The canonical sort orders
        // distinct edges by their full field tuple and dedup removes exact
        // ties, so the final edge array is identical to the
        // collect-then-refilter construction this replaces.
        self.invalidate_structure();
        let nodes = &self.nodes;
        let mut edges = std::mem::take(&mut self.edges);
        let mut rewired: Vec<DfgEdge> = Vec::new();
        edges.retain(|e| {
            let src_in = in_members(e.src);
            let dst_in = in_members(e.dst);
            if src_in && dst_in {
                if e.distance > 0 {
                    rewired.push(DfgEdge {
                        src: cca,
                        dst: cca,
                        distance: e.distance,
                        kind: e.kind,
                    });
                }
            } else if src_in {
                if !nodes[e.dst.index()].dead {
                    rewired.push(DfgEdge {
                        src: cca,
                        dst: e.dst,
                        distance: e.distance,
                        kind: e.kind,
                    });
                }
            } else if dst_in {
                if !nodes[e.src.index()].dead {
                    rewired.push(DfgEdge {
                        src: e.src,
                        dst: cca,
                        distance: e.distance,
                        kind: e.kind,
                    });
                }
            } else {
                return !nodes[e.src.index()].dead && !nodes[e.dst.index()].dead;
            }
            false
        });
        with_arena(|a| a.give_u64(member_bits));
        // Tombstone members and drop their adjacency.
        for &m in members {
            self.nodes[m.index()].dead = true;
        }
        // Hot-path merge: a canonical pre-collapse array is strictly
        // sorted (sorted and duplicate-free), and `retain` preserves that
        // for the kept run. Every rewired edge references `cca` — a node
        // id no retained edge can mention — so no duplicate straddles the
        // two runs, and backward-merging the sorted-deduped tail yields
        // byte-for-byte the array the full sort+dedup would. Non-canonical
        // arrays (builder graphs that never went through a structural
        // rewrite) take the full sort below, exactly as before.
        let key = |e: &DfgEdge| (e.src, e.dst, e.distance, e.kind as u8);
        if edges.is_sorted_by(|a, b| key(a) < key(b)) {
            Self::sort_dedup_edges(&mut rewired);
            let old_len = edges.len();
            edges.extend_from_slice(&rewired);
            let (mut i, mut j, mut k) = (old_len, rewired.len(), edges.len());
            while j > 0 {
                if i > 0 && key(&edges[i - 1]) > key(&rewired[j - 1]) {
                    edges[k - 1] = edges[i - 1];
                    i -= 1;
                } else {
                    edges[k - 1] = rewired[j - 1];
                    j -= 1;
                }
                k -= 1;
            }
        } else {
            edges.append(&mut rewired);
            Self::sort_dedup_edges(&mut edges);
        }
        self.edges = edges;
        cca
    }

    /// Removes the given nodes (and their edges) from the graph by
    /// tombstoning. Used when separating control and address computations
    /// from the compute dataflow (paper §4.1).
    pub fn remove_nodes(&mut self, ids: &[OpId]) {
        for &id in ids {
            self.nodes[id.index()].dead = true;
        }
        self.rebuild_edges_excluding_dead(Vec::new());
    }

    /// Tombstones one node *without* rebuilding edges. Deserializers use
    /// this to reproduce a post-rewrite graph slot-for-slot, dead kinds and
    /// all (the edge array they restore was already rebuilt before
    /// serialization, so nothing touches the dead slot; if untrusted input
    /// does add such an edge, [`crate::verify_dfg`] rejects the graph).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mark_dead(&mut self, id: OpId) {
        self.invalidate_structure();
        self.nodes[id.index()].dead = true;
    }

    pub(crate) fn rebuild_edges_excluding_dead(&mut self, extra: Vec<DfgEdge>) {
        self.invalidate_structure();
        let nodes = &self.nodes;
        let mut kept = std::mem::take(&mut self.edges);
        kept.retain(|e| !nodes[e.src.index()].dead && !nodes[e.dst.index()].dead);
        kept.extend(
            extra
                .into_iter()
                .filter(|e| !nodes[e.src.index()].dead && !nodes[e.dst.index()].dead),
        );
        // Deduplicate identical edges introduced by rewiring. The sort is
        // part of the graph's observable edge order (and thus its content
        // hash); adjacency is rebuilt lazily on next use. A strictly
        // sorted array (canonical input, nothing appended) is already in
        // that form, so the re-sort is skipped.
        let key = |e: &DfgEdge| (e.src, e.dst, e.distance, e.kind as u8);
        if !kept.is_sorted_by(|a, b| key(a) < key(b)) {
            Self::sort_dedup_edges(&mut kept);
        }
        self.edges = kept;
    }

    /// The canonical edge ordering applied after structural rewrites
    /// ([`Dfg::collapse`], [`Dfg::remove_nodes`]): sort by
    /// `(src, dst, distance, kind)` and drop exact duplicates.
    pub(crate) fn sort_dedup_edges(edges: &mut Vec<DfgEdge>) {
        edges.sort_by_key(|e| (e.src, e.dst, e.distance, e.kind as u8));
        edges.dedup();
    }

    /// The ids of scalar live-in nodes.
    pub fn live_in_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && matches!(n.kind, NodeKind::LiveIn))
            .map(|(i, _)| OpId::new(i))
    }

    /// The ids of constant nodes.
    pub fn const_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && matches!(n.kind, NodeKind::Const(_)))
            .map(|(i, _)| OpId::new(i))
    }

    /// The ids of live-out values.
    pub fn live_out_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead && n.live_out)
            .map(|(i, _)| OpId::new(i))
    }

    /// A stable 64-bit fingerprint of the graph's content: node kinds,
    /// stream annotations, liveness, collapse state, and every edge. Equal
    /// graphs hash equal across threads and processes, so the fingerprint
    /// can key persistent or shared caches (the sweep engine's translation
    /// memo keys on it). Cached after the first call (the parametric
    /// MinDist cache and the sweep memo both key on it per translation);
    /// every mutator, including [`Dfg::node_mut`], clears the cache.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        *self.hash.get_or_init(|| self.content_hash_uncached())
    }

    fn content_hash_uncached(&self) -> u64 {
        let mut h = crate::rng::Fnv64::new();
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Op(op) => {
                    h.write_u8(1);
                    h.write_u64(*op as u64);
                }
                NodeKind::LiveIn => h.write_u8(2),
                NodeKind::Const(v) => {
                    h.write_u8(3);
                    h.write_u64(*v as u64);
                }
            }
            h.write_u64(n.stream.map_or(u64::MAX, u64::from));
            h.write_u8(u8::from(n.live_out) | (u8::from(n.dead) << 1));
            h.write_u64(n.cca_members.len() as u64);
            for m in &n.cca_members {
                h.write_u64(m.index() as u64);
            }
        }
        h.write_u64(self.edges.len() as u64);
        for e in &self.edges {
            h.write_u64(e.src.index() as u64);
            h.write_u64(e.dst.index() as u64);
            h.write_u64(u64::from(e.distance));
            h.write_u8(match e.kind {
                EdgeKind::Data => 0,
                EdgeKind::Mem => 1,
            });
        }
        h.finish()
    }
}

/// Per-function-unit-class operation counts, as used by the ResMII
/// computation (paper §4.1, "Minimum II Calculation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Ops needing an integer unit.
    pub int: usize,
    /// Ops needing a floating-point unit.
    pub fp: usize,
    /// Collapsed CCA invocations.
    pub cca: usize,
    /// Memory (FIFO) accesses.
    pub mem: usize,
    /// Control ops (normally stripped before scheduling).
    pub control: usize,
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "int={} fp={} cca={} mem={} ctrl={}",
            self.int, self.fp, self.cca, self.mem, self.control
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn chain3() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.load_stream(0);
        let c = b.op(Opcode::Add, &[a, a]);
        b.store_stream(1, c);
        b.finish()
    }

    #[test]
    fn add_edge_builds_adjacency() {
        let dfg = chain3();
        let load = OpId::new(0);
        // `add` reads the loaded value twice: two edges.
        assert_eq!(dfg.succ_edges(load).count(), 2);
        assert_eq!(dfg.pred_edges(load).count(), 0);
    }

    #[test]
    fn topo_order_of_chain() {
        let dfg = chain3();
        let order = dfg.topo_order().expect("acyclic");
        let pos: Vec<usize> = (0..3)
            .map(|i| order.iter().position(|&o| o == OpId::new(i)).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
    }

    #[test]
    fn topo_order_detects_distance0_cycle() {
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let b = dfg.add_node(NodeKind::Op(Opcode::Sub));
        dfg.add_edge(a, b, 0, EdgeKind::Data);
        dfg.add_edge(b, a, 0, EdgeKind::Data);
        assert!(dfg.topo_order().is_err());
    }

    #[test]
    fn recurrence_detection_self_edge() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        b.loop_carried(x, x, 1);
        let dfg = b.finish();
        let recs = dfg.recurrences();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], vec![x]);
    }

    #[test]
    fn recurrence_detection_two_node_cycle() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Sub, &[x]);
        b.loop_carried(y, x, 1);
        let dfg = b.finish();
        let recs = dfg.recurrences();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].len(), 2);
    }

    #[test]
    fn acyclic_graph_has_no_recurrences() {
        assert!(chain3().recurrences().is_empty());
    }

    #[test]
    fn sccs_cover_all_live_nodes() {
        let dfg = chain3();
        let total: usize = dfg.sccs().iter().map(Vec::len).sum();
        assert_eq!(total, dfg.live_ids().count());
    }

    #[test]
    fn collapse_rewires_external_edges() {
        let mut b = DfgBuilder::new();
        let input = b.live_in();
        let x = b.op(Opcode::And, &[input]);
        let y = b.op(Opcode::Xor, &[x]);
        let z = b.op(Opcode::Shl, &[y]); // not CCA-supported, stays outside
        b.store_stream(0, z);
        let mut dfg = b.finish();
        let cca = dfg.collapse(&[x, y]);
        assert!(dfg.node(x).is_dead());
        assert!(dfg.node(y).is_dead());
        let preds: Vec<OpId> = dfg.pred_edges(cca).map(|e| e.src).collect();
        assert_eq!(preds, vec![input]);
        let succs: Vec<OpId> = dfg.succ_edges(cca).map(|e| e.dst).collect();
        assert_eq!(succs, vec![z]);
        assert_eq!(dfg.node(cca).cca_members, vec![x, y]);
    }

    #[test]
    fn collapse_preserves_loop_carried_external_edge() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Sub, &[x]);
        b.loop_carried(y, x, 1);
        let mut dfg = b.finish();
        let cca = dfg.collapse(&[x, y]);
        // The distance-1 cycle is now a self edge on the CCA node.
        let self_edges: Vec<&DfgEdge> = dfg.succ_edges(cca).filter(|e| e.dst == cca).collect();
        assert_eq!(self_edges.len(), 1);
        assert_eq!(self_edges[0].distance, 1);
    }

    #[test]
    #[should_panic(expected = "not a CCA-supported op")]
    fn collapse_rejects_unsupported_member() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Shl, &[x]); // shifts are not CCA-supported
        let mut dfg = b.finish();
        let _ = dfg.collapse(&[x, y]);
    }

    #[test]
    fn op_counts_by_class() {
        let mut b = DfgBuilder::new();
        let a = b.load_stream(0);
        let m = b.op(Opcode::Mul, &[a, a]);
        let f = b.op(Opcode::ItoF, &[m]);
        let g = b.op(Opcode::FAdd, &[f, f]);
        b.store_stream(1, g);
        let dfg = b.finish();
        let c = dfg.op_counts();
        assert_eq!(c.int, 1);
        assert_eq!(c.fp, 2);
        assert_eq!(c.mem, 2);
        assert_eq!(c.cca, 0);
    }

    #[test]
    fn remove_nodes_drops_edges() {
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::Add, &[]);
        let c = b.op(Opcode::Sub, &[a]);
        let d = b.op(Opcode::Xor, &[c]);
        let mut dfg = b.finish();
        dfg.remove_nodes(&[c]);
        assert!(dfg.node(c).is_dead());
        assert_eq!(dfg.succ_edges(a).count(), 0);
        assert_eq!(dfg.pred_edges(d).count(), 0);
    }

    #[test]
    fn live_in_and_const_iterators() {
        let mut b = DfgBuilder::new();
        let li = b.live_in();
        let k = b.constant(3);
        let s = b.op(Opcode::Add, &[li, k]);
        b.mark_live_out(s);
        let dfg = b.finish();
        assert_eq!(dfg.live_in_ids().collect::<Vec<_>>(), vec![li]);
        assert_eq!(dfg.const_ids().collect::<Vec<_>>(), vec![k]);
        assert_eq!(dfg.live_out_ids().collect::<Vec<_>>(), vec![s]);
    }

    #[test]
    fn collapse_marks_live_out_if_member_was() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        let y = b.op(Opcode::Xor, &[x]);
        b.mark_live_out(y);
        let mut dfg = b.finish();
        let cca = dfg.collapse(&[x, y]);
        assert!(dfg.node(cca).live_out);
    }

    #[test]
    fn adjacency_matches_nodes_and_preserves_insertion_order() {
        use crate::rng::Rng64;
        let mut rng = Rng64::new(0xad7);
        for _ in 0..50 {
            let n = rng.gen_range(1, 24);
            let mut dfg = Dfg::new();
            let ids: Vec<OpId> = (0..n)
                .map(|_| dfg.add_node(NodeKind::Op(Opcode::Add)))
                .collect();
            for _ in 0..rng.gen_range(0, 4 * n) {
                let a = rng.gen_range(0, n);
                let b = rng.gen_range(0, n);
                dfg.add_edge(ids[a], ids[b], rng.gen_range(0, 2) as u32, EdgeKind::Data);
            }
            // Reference adjacency: push-based per-node lists.
            let mut succ = vec![Vec::new(); n];
            let mut pred = vec![Vec::new(); n];
            for (i, e) in dfg.edges().iter().enumerate() {
                succ[e.src.index()].push(i as u32);
                pred[e.dst.index()].push(i as u32);
            }
            let adj = dfg.adjacency();
            for i in 0..n {
                assert_eq!(adj.succ_edge_ids(i), succ[i].as_slice(), "succ of {i}");
                assert_eq!(adj.pred_edge_ids(i), pred[i].as_slice(), "pred of {i}");
                assert!(adj.is_schedulable(i) && !adj.is_dead(i));
                assert_eq!(adj.opcodes()[i], Opcode::Add.encode());
            }
        }
    }

    #[test]
    fn collapse_bitset_matches_hashset_reference() {
        // Satellite regression for the `HashSet<OpId>` membership check
        // that `collapse` used to build per call: random graphs, random
        // member sets, edges compared against a HashSet-driven rewiring
        // reference.
        use crate::rng::Rng64;
        use std::collections::HashSet;
        let mut rng = Rng64::new(0xc0117);
        for _ in 0..100 {
            let n = rng.gen_range(2, 20);
            let mut dfg = Dfg::new();
            let ids: Vec<OpId> = (0..n)
                .map(|_| dfg.add_node(NodeKind::Op(Opcode::Add)))
                .collect();
            for _ in 0..rng.gen_range(0, 3 * n) {
                let a = rng.gen_range(0, n);
                let b = rng.gen_range(0, n);
                dfg.add_edge(ids[a], ids[b], rng.gen_range(0, 3) as u32, EdgeKind::Data);
            }
            let mut members: Vec<OpId> =
                ids.iter().copied().filter(|_| rng.gen_bool(0.4)).collect();
            if members.is_empty() {
                members.push(ids[rng.gen_range(0, n)]);
            }
            // HashSet reference over the pre-collapse graph.
            let member_set: HashSet<OpId> = members.iter().copied().collect();
            let pre_edges = dfg.edges().to_vec();
            let cca_expected = OpId::new(n);
            let mut expected: Vec<DfgEdge> = pre_edges
                .iter()
                .filter(|e| !member_set.contains(&e.src) || !member_set.contains(&e.dst))
                .map(|e| DfgEdge {
                    src: if member_set.contains(&e.src) {
                        cca_expected
                    } else {
                        e.src
                    },
                    dst: if member_set.contains(&e.dst) {
                        cca_expected
                    } else {
                        e.dst
                    },
                    distance: e.distance,
                    kind: e.kind,
                })
                .chain(
                    pre_edges
                        .iter()
                        .filter(|e| {
                            member_set.contains(&e.src)
                                && member_set.contains(&e.dst)
                                && e.distance > 0
                        })
                        .map(|e| DfgEdge {
                            src: cca_expected,
                            dst: cca_expected,
                            distance: e.distance,
                            kind: e.kind,
                        }),
                )
                .collect();
            Dfg::sort_dedup_edges(&mut expected);
            let cca = dfg.collapse(&members);
            assert_eq!(cca, cca_expected);
            assert_eq!(dfg.edges(), expected.as_slice());
            for &m in &members {
                assert!(dfg.node(m).is_dead());
            }
        }
    }

    #[test]
    fn large_scc_iterative_tarjan_no_overflow() {
        // A single cycle through 50_000 nodes would overflow a recursive
        // Tarjan; the iterative version must handle it.
        let mut dfg = Dfg::new();
        let n = 50_000;
        let ids: Vec<OpId> = (0..n)
            .map(|_| dfg.add_node(NodeKind::Op(Opcode::Add)))
            .collect();
        for i in 0..n - 1 {
            dfg.add_edge(ids[i], ids[i + 1], 0, EdgeKind::Data);
        }
        dfg.add_edge(ids[n - 1], ids[0], 1, EdgeKind::Data);
        let recs = dfg.recurrences();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].len(), n);
    }
}
