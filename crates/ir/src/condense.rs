//! Cached SCC condensation and bitset reachability for [`Dfg`]s.
//!
//! Every translation stage consumes the same structural facts about the
//! loop body: its strongly connected components (the recurrences), the
//! component DAG, and which nodes can reach which through intra-iteration
//! (distance-0) dependences. Historically each stage recomputed them from
//! scratch — Tarjan per CCA legality check, a BFS per convexity query, a
//! full Floyd–Warshall per candidate II. [`Condensation`] computes them
//! once per graph and [`Dfg::condensation`](crate::Dfg::condensation)
//! caches the result until the graph is structurally mutated, so the hot
//! kernels downstream (MinDist, CCA legality, the exhaustive mapper) can
//! run on dense indices and `u64` bitmask words instead.
//!
//! Nothing here is metered: the abstract cost model charges for the
//! *algorithms the paper's VM runs* (see `veal-ir`'s `meter` module), and
//! those charges are emitted by the call sites exactly as before. The
//! condensation only changes how fast the host arrives at the same
//! numbers.

use crate::arena::{with_arena, DfgArena};
use crate::dfg::Dfg;
use crate::types::OpId;

/// A dense row-major bit matrix: `n` rows of `n` columns packed into
/// `u64` words. Row `i` is the reachability (or adjacency) set of node
/// `i`, so set algebra over whole rows is a word-wise loop.
///
/// The word storage is recycled through the shared [`DfgArena`] pool:
/// `new` reclaims a parked buffer and `Drop` parks it again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Drop for BitMatrix {
    fn drop(&mut self) {
        let bits = std::mem::take(&mut self.bits);
        if bits.capacity() > 0 {
            with_arena(|a| a.give_u64(bits));
        }
    }
}

impl BitMatrix {
    /// An `n` × `n` matrix of zeroes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        let mut bits = with_arena(DfgArena::take_u64);
        bits.resize(n * words_per_row, 0);
        BitMatrix {
            n,
            words_per_row,
            bits,
        }
    }

    /// Number of rows (= columns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `u64` words per row; every row slice has this length.
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Sets bit `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize) {
        let w = row * self.words_per_row + col / 64;
        self.bits[w] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        let w = row * self.words_per_row + col / 64;
        self.bits[w] >> (col % 64) & 1 != 0
    }

    /// The packed words of `row`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[u64] {
        let start = row * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// OR-accumulates row `src` into row `dst` (`dst |= src`).
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        let (s, d) = (src * self.words_per_row, dst * self.words_per_row);
        for i in 0..self.words_per_row {
            let w = self.bits[s + i];
            self.bits[d + i] |= w;
        }
    }

    /// Whether row `row` intersects the given mask words (missing mask
    /// words are treated as zero).
    #[must_use]
    pub fn row_intersects(&self, row: usize, mask: &[u64]) -> bool {
        self.row(row).iter().zip(mask).any(|(&a, &b)| a & b != 0)
    }
}

/// The SCC condensation of a [`Dfg`], plus distance-0 reachability.
///
/// * `comps` lists the strongly connected components over **all** edges
///   (any distance) in reverse topological order of the component DAG —
///   byte-for-byte the same list, order, and member sort as
///   [`Dfg::sccs`] has always produced (which now delegates here).
/// * `comp_of[node]` maps a live node to its component index.
/// * `cyclic[c]` marks recurrences: components with more than one member
///   or a self edge.
/// * `reach0` is the reflexive-transitive closure over **distance-0**
///   edges only — `reach0[u]` has bit `v` set iff a (possibly empty)
///   intra-iteration dependence path leads from `u` to `v`. This is the
///   relation CCA convexity queries (`veal-cca`) and the acyclic-region
///   longest-path DP (`veal-sched`) need.
///
/// Dead (tombstoned) nodes belong to no component and have empty
/// `reach0` rows.
#[derive(Debug)]
pub struct Condensation {
    comp_of: Vec<u32>,
    comps: Vec<Vec<OpId>>,
    cyclic: Vec<bool>,
    /// The closure, once someone has asked for it (see `reach0_src`).
    reach0: std::sync::OnceLock<BitMatrix>,
    /// On the data-oriented path the n×n closure is computed *lazily*:
    /// only CCA convexity reads it, so graphs that go straight to the
    /// scheduler (every post-mapping graph) never pay the O(n²) sweep.
    /// The build captures a compact CSR snapshot of the live distance-0
    /// successor lists instead — the condensation must stay valid even
    /// after the graph mutates, so it cannot reach back into the `Dfg`.
    /// `None` means the closure was computed eagerly (reference path).
    reach0_src: Option<Reach0Source>,
    topo0: Option<Vec<OpId>>,
}

impl Clone for Condensation {
    fn clone(&self) -> Self {
        Condensation {
            comp_of: self.comp_of.clone(),
            comps: self.comps.clone(),
            cyclic: self.cyclic.clone(),
            reach0: match self.reach0.get() {
                Some(m) => std::sync::OnceLock::from(m.clone()),
                None => std::sync::OnceLock::new(),
            },
            reach0_src: self.reach0_src.clone(),
            topo0: self.topo0.clone(),
        }
    }
}

impl PartialEq for Condensation {
    /// Equality over the *semantic* fields; comparing forces the closure
    /// on both sides, so a lazy and an eager condensation of the same
    /// graph compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.comp_of == other.comp_of
            && self.comps == other.comps
            && self.cyclic == other.cyclic
            && self.topo0 == other.topo0
            && self.reach0() == other.reach0()
    }
}

impl Eq for Condensation {}

/// The captured distance-0 successor CSR a lazy closure is computed from
/// (live endpoints only). Buffers are pooled through the [`DfgArena`].
#[derive(Debug)]
struct Reach0Source {
    n: usize,
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Clone for Reach0Source {
    fn clone(&self) -> Self {
        Reach0Source {
            n: self.n,
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
        }
    }
}

impl Drop for Reach0Source {
    fn drop(&mut self) {
        with_arena(|a| {
            a.give_u32(std::mem::take(&mut self.offsets));
            a.give_u32(std::mem::take(&mut self.targets));
        });
    }
}

impl Reach0Source {
    fn capture(dfg: &Dfg) -> Self {
        let n = dfg.len();
        let adj = dfg.adjacency();
        let edges = dfg.edges();
        let (mut offsets, mut targets) = with_arena(|a| (a.take_u32(), a.take_u32()));
        offsets.reserve(n + 1);
        offsets.push(0);
        for v in 0..n {
            if !adj.is_dead(v) {
                for &e in adj.succ_edge_ids(v) {
                    let edge = &edges[e as usize];
                    if edge.distance == 0 && !adj.is_dead(edge.dst.index()) {
                        targets.push(edge.dst.index() as u32);
                    }
                }
            }
            offsets.push(targets.len() as u32);
        }
        Reach0Source {
            n,
            offsets,
            targets,
        }
    }

    fn succs(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The same closure [`reach0_closure_fast`] computes, from the
    /// snapshot: one reverse-topological OR sweep, or per-node BFS when
    /// the distance-0 subgraph was cyclic. Bit-for-bit identical rows —
    /// OR is commutative, so sweep order only affects how the bits
    /// arrive, not where they land.
    fn compute(&self, topo0: Option<&[OpId]>, comp_of: &[u32]) -> BitMatrix {
        let mut m = BitMatrix::new(self.n);
        match topo0 {
            Some(order) => {
                for &v in order.iter().rev() {
                    let vi = v.index();
                    m.set(vi, vi);
                    for &w in self.succs(vi) {
                        m.or_row_into(w as usize, vi);
                    }
                }
            }
            None => {
                with_arena(|a| {
                    let mut queue = a.take_u32();
                    for (vi, &c) in comp_of.iter().enumerate().take(self.n) {
                        if c == NO_COMP {
                            continue; // dead slot
                        }
                        m.set(vi, vi);
                        queue.clear();
                        queue.push(vi as u32);
                        while let Some(u) = queue.pop() {
                            for &w in self.succs(u as usize) {
                                if !m.get(vi, w as usize) {
                                    m.set(vi, w as usize);
                                    queue.push(w);
                                }
                            }
                        }
                    }
                    a.give_u32(queue);
                });
            }
        }
        m
    }
}

const NO_COMP: u32 = u32::MAX;

impl Condensation {
    /// Builds the condensation of `dfg`. Prefer the cached
    /// [`Dfg::condensation`](crate::Dfg::condensation) accessor.
    ///
    /// Dispatches between the data-oriented builder (CSR adjacency walks,
    /// pooled scratch, no per-node allocation) and the retained reference
    /// builder on [`crate::tuning::data_oriented_enabled`]; both produce
    /// identical values, field for field.
    #[must_use]
    pub fn build(dfg: &Dfg) -> Self {
        if crate::tuning::data_oriented_enabled() {
            Self::build_fast(dfg)
        } else {
            Self::build_reference(dfg)
        }
    }

    /// The original builder, retained verbatim as the reference
    /// implementation: iterator-based Tarjan (`nth` skip per DFS step) and
    /// a reach0 sweep that collects each node's successor list.
    #[must_use]
    pub fn build_reference(dfg: &Dfg) -> Self {
        let (comps, comp_of) = tarjan_reference(dfg);
        let cyclic = comps
            .iter()
            .map(|c| c.len() > 1 || dfg.succ_edges(c[0]).any(|e| e.dst == c[0]))
            .collect();
        let topo0 = dfg.topo_order().ok();
        // The reference path computes the closure eagerly, as it always
        // did; only the data-oriented build defers it.
        let reach0 = std::sync::OnceLock::from(reach0_closure_reference(dfg, topo0.as_deref()));
        Condensation {
            comp_of,
            comps,
            cyclic,
            reach0,
            reach0_src: None,
            topo0,
        }
    }

    /// The data-oriented builder: the same three passes running on the
    /// graph's CSR [`crate::dfg::Adjacency`] with [`DfgArena`]-pooled
    /// scratch.
    #[must_use]
    pub fn build_fast(dfg: &Dfg) -> Self {
        let (comps, comp_of) = with_arena(|a| tarjan_fast(dfg, a));
        let adj = dfg.adjacency();
        let edges = dfg.edges();
        let cyclic = comps
            .iter()
            .map(|c| {
                c.len() > 1
                    || adj
                        .succ_edge_ids(c[0].index())
                        .iter()
                        .any(|&e| edges[e as usize].dst == c[0])
            })
            .collect();
        let topo0 = dfg.topo_order().ok();
        Condensation {
            comp_of,
            comps,
            cyclic,
            reach0: std::sync::OnceLock::new(),
            reach0_src: Some(Reach0Source::capture(dfg)),
            topo0,
        }
    }

    /// The cached topological order of live nodes over distance-0 edges —
    /// exactly what [`Dfg::topo_order`](crate::Dfg::topo_order) returns on
    /// success — or `None` for ill-formed bodies whose distance-0 subgraph
    /// is cyclic. The scheduler's longest-path passes (`depths`, `heights`)
    /// run once per translation attempt; caching the order here removes a
    /// repeated Kahn sort (plus its allocations) from the hot path.
    #[must_use]
    pub fn topo0(&self) -> Option<&[OpId]> {
        self.topo0.as_deref()
    }

    /// The components, in reverse topological order of the component DAG
    /// (successors before predecessors), each sorted by node id.
    #[must_use]
    pub fn comps(&self) -> &[Vec<OpId>] {
        &self.comps
    }

    /// Number of components.
    #[must_use]
    pub fn num_comps(&self) -> usize {
        self.comps.len()
    }

    /// The component index of a live node, `None` for dead nodes.
    #[must_use]
    pub fn comp_of(&self, id: OpId) -> Option<usize> {
        match self.comp_of.get(id.index()) {
            Some(&c) if c != NO_COMP => Some(c as usize),
            _ => None,
        }
    }

    /// Whether component `c` contains a cycle (i.e. is a recurrence).
    #[must_use]
    pub fn is_cyclic(&self, c: usize) -> bool {
        self.cyclic[c]
    }

    /// The per-component cyclic flags, indexed like [`Self::comps`].
    #[must_use]
    pub fn cyclic_flags(&self) -> &[bool] {
        &self.cyclic
    }

    /// Whether a distance-0 dependence path (possibly empty) leads from
    /// `from` to `to`.
    #[must_use]
    pub fn reaches0(&self, from: OpId, to: OpId) -> bool {
        self.reach0().get(from.index(), to.index())
    }

    /// The packed distance-0 reachability row of `id` (one bit per node
    /// slot in the graph, including dead slots, which are never set).
    #[must_use]
    pub fn reach0_row(&self, id: OpId) -> &[u64] {
        self.reach0().row(id.index())
    }

    /// The full distance-0 reachability closure. On the data-oriented
    /// path the first call computes it from the captured successor
    /// snapshot; subsequent calls (and all reference-path calls) return
    /// the stored matrix.
    #[must_use]
    pub fn reach0(&self) -> &BitMatrix {
        self.reach0.get_or_init(|| {
            let src = self
                .reach0_src
                .as_ref()
                .expect("empty closure cell implies a captured source");
            src.compute(self.topo0.as_deref(), &self.comp_of)
        })
    }
}

/// Cached result of [`scc_membership`]: the per-slot component map and the
/// cyclic-component bitset, without member lists or reachability. This is
/// the shape every per-loop recurrence query needs (RecMII, the Swing
/// ordering's recurrence sets, the commit-path legality re-check), so
/// [`crate::Dfg::scc_view`] memoizes one per graph version and the
/// consumers share it instead of re-running Tarjan back to back.
#[derive(Debug, Clone)]
pub struct SccView {
    /// Component index per node slot (`u32::MAX` for dead slots).
    pub comp_of: Vec<u32>,
    /// Bit `c` marks component `c` as a recurrence (more than one member,
    /// or a self-edge on its lone member).
    pub cyclic: Vec<u64>,
    /// Total number of components.
    pub n_comps: usize,
}

impl SccView {
    /// Whether component `c` is cyclic.
    #[must_use]
    pub fn is_cyclic(&self, c: u32) -> bool {
        self.cyclic[c as usize / 64] >> (c as usize % 64) & 1 != 0
    }
}

/// Writes the SCC membership of `dfg` into caller-owned buffers, without
/// materializing per-component member lists, the reach0 closure, or the
/// topological order: on return `comp_of[slot]` is the component index of
/// each live node (`u32::MAX` for dead slots) and bit `c` of `cyclic`
/// marks component `c` as a recurrence. Returns the component count.
/// Component numbering matches [`Condensation::comps`] (reverse
/// topological emission order).
///
/// One Tarjan pass over CSR slices with pooled scratch — the cheapest
/// possible answer to "which recurrence is this node on?" for a
/// *transient* graph. The CCA mapper's commit loop asks once per
/// collapse; building (and immediately discarding) a full condensation
/// there would dwarf the single query it serves.
pub fn scc_membership(dfg: &Dfg, comp_of: &mut Vec<u32>, cyclic: &mut Vec<u64>) -> usize {
    const UNVISITED: u32 = u32::MAX;
    let n = dfg.len();
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    comp_of.clear();
    comp_of.resize(n, NO_COMP);
    cyclic.clear();
    cyclic.resize(n.div_ceil(64), 0);
    let mut n_comps = 0usize;
    with_arena(|a| {
        let mut index = a.take_u32();
        index.resize(n, UNVISITED);
        let mut low = a.take_u32();
        low.resize(n, 0);
        let mut on_stack = a.take_u64();
        on_stack.resize(n.div_ceil(64), 0);
        let mut stack = a.take_u32();
        let mut cs_node = a.take_u32();
        let mut cs_pos = a.take_u32();
        let mut next_index = 0u32;

        for start in 0..n {
            if adj.is_dead(start) || index[start] != UNVISITED {
                continue;
            }
            cs_node.push(start as u32);
            cs_pos.push(0);
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start / 64] |= 1 << (start % 64);

            while let Some(&v) = cs_node.last() {
                let v_usize = v as usize;
                let succs = adj.succ_edge_ids(v_usize);
                let pos = cs_pos.last_mut().expect("cursor stack tracks node stack");
                if let Some(&e) = succs.get(*pos as usize) {
                    *pos += 1;
                    let w = edges[e as usize].dst.index();
                    if !adj.is_dead(w) {
                        if index[w] == UNVISITED {
                            index[w] = next_index;
                            low[w] = next_index;
                            next_index += 1;
                            stack.push(w as u32);
                            on_stack[w / 64] |= 1 << (w % 64);
                            cs_node.push(w as u32);
                            cs_pos.push(0);
                        } else if on_stack[w / 64] >> (w % 64) & 1 != 0 {
                            low[v_usize] = low[v_usize].min(index[w]);
                        }
                    }
                    continue;
                }
                cs_node.pop();
                cs_pos.pop();
                if let Some(&parent) = cs_node.last() {
                    let p = parent as usize;
                    low[p] = low[p].min(low[v_usize]);
                }
                if low[v_usize] == index[v_usize] {
                    let comp_idx = n_comps as u32;
                    let mut size = 0usize;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize / 64] &= !(1 << (w as usize % 64));
                        comp_of[w as usize] = comp_idx;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = || {
                        adj.succ_edge_ids(v_usize)
                            .iter()
                            .any(|&e| edges[e as usize].dst.index() == v_usize)
                    };
                    if size > 1 || self_loop() {
                        cyclic[n_comps / 64] |= 1 << (n_comps % 64);
                    }
                    n_comps += 1;
                }
            }
        }
        a.give_u32(index);
        a.give_u32(low);
        a.give_u64(on_stack);
        a.give_u32(stack);
        a.give_u32(cs_node);
        a.give_u32(cs_pos);
    });
    n_comps
}

/// Iterative Tarjan over all edges, excluding dead nodes. Produces the
/// exact component list [`Dfg::sccs`] has always produced (reverse
/// topological emission order, members sorted), plus the node→component
/// map. Reference version: each DFS step restarts the successor iterator
/// and `nth`-skips to the cursor, quadratic in node degree.
fn tarjan_reference(dfg: &Dfg) -> (Vec<Vec<OpId>>, Vec<u32>) {
    const UNVISITED: u32 = u32::MAX;
    let n = dfg.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comps: Vec<Vec<OpId>> = Vec::new();
    let mut comp_of = vec![NO_COMP; n];

    // Explicit DFS state machine: (node, next successor position).
    let mut call_stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n {
        if dfg.node(OpId::new(start)).is_dead() || index[start] != UNVISITED {
            continue;
        }
        call_stack.push((start as u32, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let v_usize = v as usize;
            let mut advanced = false;
            if let Some(edge) = dfg.succ_edges(OpId::new(v_usize)).nth(*pos) {
                *pos += 1;
                advanced = true;
                let w = edge.dst.index();
                if !dfg.node(edge.dst).is_dead() {
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        call_stack.push((w as u32, 0));
                    } else if on_stack[w] {
                        low[v_usize] = low[v_usize].min(index[w]);
                    }
                }
            }
            if advanced {
                continue;
            }
            call_stack.pop();
            if let Some(&mut (parent, _)) = call_stack.last_mut() {
                let p = parent as usize;
                low[p] = low[p].min(low[v_usize]);
            }
            if low[v_usize] == index[v_usize] {
                let comp_idx = comps.len() as u32;
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    comp_of[w as usize] = comp_idx;
                    component.push(OpId::new(w as usize));
                    if w == v {
                        break;
                    }
                }
                component.sort();
                comps.push(component);
            }
        }
    }
    (comps, comp_of)
}

/// Same DFS as [`tarjan_reference`], walking CSR slices with a plain
/// cursor (O(V + E) total) and keeping every piece of per-node state in
/// pooled buffers — `on_stack` as bitset words, the explicit call stack as
/// two parallel `u32` arrays. Visit order, and therefore component
/// emission order, is identical to the reference.
fn tarjan_fast(dfg: &Dfg, a: &mut DfgArena) -> (Vec<Vec<OpId>>, Vec<u32>) {
    const UNVISITED: u32 = u32::MAX;
    let n = dfg.len();
    let adj = dfg.adjacency();
    let edges = dfg.edges();
    let mut index = a.take_u32();
    index.resize(n, UNVISITED);
    let mut low = a.take_u32();
    low.resize(n, 0);
    let mut on_stack = a.take_u64();
    on_stack.resize(n.div_ceil(64), 0);
    let mut stack = a.take_u32();
    // Explicit DFS state machine as parallel arrays: node and successor
    // cursor.
    let mut cs_node = a.take_u32();
    let mut cs_pos = a.take_u32();
    let mut next_index = 0u32;
    let mut comps: Vec<Vec<OpId>> = Vec::new();
    let mut comp_of = vec![NO_COMP; n];

    for start in 0..n {
        if adj.is_dead(start) || index[start] != UNVISITED {
            continue;
        }
        cs_node.push(start as u32);
        cs_pos.push(0);
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start / 64] |= 1 << (start % 64);

        while let Some(&v) = cs_node.last() {
            let v_usize = v as usize;
            let succs = adj.succ_edge_ids(v_usize);
            let pos = cs_pos.last_mut().expect("cursor stack tracks node stack");
            if let Some(&e) = succs.get(*pos as usize) {
                *pos += 1;
                let w = edges[e as usize].dst.index();
                if !adj.is_dead(w) {
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w / 64] |= 1 << (w % 64);
                        cs_node.push(w as u32);
                        cs_pos.push(0);
                    } else if on_stack[w / 64] >> (w % 64) & 1 != 0 {
                        low[v_usize] = low[v_usize].min(index[w]);
                    }
                }
                continue;
            }
            cs_node.pop();
            cs_pos.pop();
            if let Some(&parent) = cs_node.last() {
                let p = parent as usize;
                low[p] = low[p].min(low[v_usize]);
            }
            if low[v_usize] == index[v_usize] {
                let comp_idx = comps.len() as u32;
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize / 64] &= !(1 << (w as usize % 64));
                    comp_of[w as usize] = comp_idx;
                    component.push(OpId::new(w as usize));
                    if w == v {
                        break;
                    }
                }
                component.sort();
                comps.push(component);
            }
        }
    }
    a.give_u32(index);
    a.give_u32(low);
    a.give_u64(on_stack);
    a.give_u32(stack);
    a.give_u32(cs_node);
    a.give_u32(cs_pos);
    (comps, comp_of)
}

/// Reflexive-transitive closure over distance-0 edges. The distance-0
/// subgraph of a well-formed loop body is acyclic, so a single reverse
/// topological sweep suffices; ill-formed bodies (intra-iteration cycles)
/// fall back to per-node BFS, which is correct regardless. Reference
/// version: collects each node's successor list into a fresh `Vec`.
fn reach0_closure_reference(dfg: &Dfg, topo0: Option<&[OpId]>) -> BitMatrix {
    let n = dfg.len();
    let mut m = BitMatrix::new(n);
    match topo0 {
        Some(order) => {
            for &v in order.iter().rev() {
                m.set(v.index(), v.index());
                // Collect successor ids first: `or_row_into` needs `&mut m`.
                let succs: Vec<usize> = dfg
                    .succ_edges(v)
                    .filter(|e| e.distance == 0 && !dfg.node(e.dst).is_dead())
                    .map(|e| e.dst.index())
                    .collect();
                for w in succs {
                    m.or_row_into(w, v.index());
                }
            }
        }
        None => {
            let mut queue: Vec<usize> = Vec::new();
            for v in dfg.live_ids() {
                let vi = v.index();
                m.set(vi, vi);
                queue.clear();
                queue.push(vi);
                while let Some(u) = queue.pop() {
                    for e in dfg.succ_edges(OpId::new(u)) {
                        let w = e.dst.index();
                        if e.distance == 0 && !dfg.node(e.dst).is_dead() && !m.get(vi, w) {
                            m.set(vi, w);
                            queue.push(w);
                        }
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::dfg::{EdgeKind, NodeKind};
    use crate::opcode::Opcode;
    use crate::rng::Rng64;

    #[test]
    fn bitmatrix_set_get_row_ops() {
        let mut m = BitMatrix::new(130);
        m.set(0, 0);
        m.set(0, 129);
        m.set(5, 64);
        assert!(m.get(0, 129) && m.get(5, 64) && !m.get(5, 65));
        assert_eq!(m.words_per_row(), 3);
        m.or_row_into(0, 5);
        assert!(m.get(5, 129) && m.get(5, 0) && m.get(5, 64));
        let mask = [0u64, 1u64, 0u64];
        assert!(m.row_intersects(5, &mask));
        assert!(!m.row_intersects(1, &mask));
    }

    #[test]
    fn condensation_matches_sccs_on_random_graphs() {
        let mut rng = Rng64::new(0x5ecc);
        for _ in 0..50 {
            let n = rng.gen_range(1, 20);
            let mut dfg = Dfg::new();
            let ids: Vec<OpId> = (0..n)
                .map(|_| dfg.add_node(NodeKind::Op(Opcode::Add)))
                .collect();
            for _ in 0..rng.gen_range(0, 3 * n) {
                let a = rng.gen_range(0, n);
                let b = rng.gen_range(0, n);
                let d = if a < b { 0 } else { rng.gen_range(1, 3) as u32 };
                dfg.add_edge(ids[a], ids[b], d, EdgeKind::Data);
            }
            let cond = Condensation::build(&dfg);
            assert_eq!(cond.comps(), dfg.sccs().as_slice());
            // Independent reference: u and v share a component iff each
            // reaches the other over edges of any distance.
            let reach = |from: OpId| {
                let mut seen = vec![false; n];
                seen[from.index()] = true;
                let mut queue = vec![from];
                while let Some(x) = queue.pop() {
                    for e in dfg.succ_edges(x) {
                        if !seen[e.dst.index()] {
                            seen[e.dst.index()] = true;
                            queue.push(e.dst);
                        }
                    }
                }
                seen
            };
            let reachable: Vec<Vec<bool>> = ids.iter().map(|&u| reach(u)).collect();
            for &u in &ids {
                for &v in &ids {
                    let mutual = reachable[u.index()][v.index()] && reachable[v.index()][u.index()];
                    assert_eq!(cond.comp_of(u) == cond.comp_of(v), mutual, "{u} {v}");
                }
            }
            // comp_of is consistent with the component list.
            for (c, comp) in cond.comps().iter().enumerate() {
                for &m in comp {
                    assert_eq!(cond.comp_of(m), Some(c));
                }
            }
            // Cyclic flags match recurrences().
            let recs = dfg.recurrences();
            let flagged: Vec<Vec<OpId>> = cond
                .comps()
                .iter()
                .enumerate()
                .filter(|&(c, _)| cond.is_cyclic(c))
                .map(|(_, comp)| comp.clone())
                .collect();
            assert_eq!(flagged, recs);
        }
    }

    #[test]
    fn reach0_matches_bfs_reference() {
        let mut rng = Rng64::new(0xbeef);
        for _ in 0..50 {
            let n = rng.gen_range(1, 16);
            let mut dfg = Dfg::new();
            let ids: Vec<OpId> = (0..n)
                .map(|_| dfg.add_node(NodeKind::Op(Opcode::Add)))
                .collect();
            for _ in 0..rng.gen_range(0, 2 * n) {
                let a = rng.gen_range(0, n);
                let b = rng.gen_range(0, n);
                // Forward edges distance 0 keep the d0 subgraph acyclic.
                let d = if a < b { 0 } else { 1 };
                dfg.add_edge(ids[a], ids[b], d, EdgeKind::Data);
            }
            let cond = Condensation::build(&dfg);
            for &u in &ids {
                // BFS reference over distance-0 edges.
                let mut seen = vec![false; n];
                seen[u.index()] = true;
                let mut queue = vec![u];
                while let Some(x) = queue.pop() {
                    for e in dfg.succ_edges(x) {
                        if e.distance == 0 && !seen[e.dst.index()] {
                            seen[e.dst.index()] = true;
                            queue.push(e.dst);
                        }
                    }
                }
                for &v in &ids {
                    assert_eq!(cond.reaches0(u, v), seen[v.index()], "{u} -> {v}");
                }
            }
        }
    }

    #[test]
    fn reach0_falls_back_on_distance0_cycle() {
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let b = dfg.add_node(NodeKind::Op(Opcode::Sub));
        let c = dfg.add_node(NodeKind::Op(Opcode::Xor));
        dfg.add_edge(a, b, 0, EdgeKind::Data);
        dfg.add_edge(b, a, 0, EdgeKind::Data);
        dfg.add_edge(b, c, 0, EdgeKind::Data);
        let cond = Condensation::build(&dfg);
        assert!(cond.reaches0(a, c) && cond.reaches0(b, a) && !cond.reaches0(c, a));
    }

    #[test]
    fn dead_nodes_have_no_component_and_empty_rows() {
        let mut bld = DfgBuilder::new();
        let x = bld.op(Opcode::And, &[]);
        let y = bld.op(Opcode::Xor, &[x]);
        let z = bld.op(Opcode::Shl, &[y]);
        let mut dfg = bld.finish();
        let cca = dfg.collapse(&[x, y]);
        let cond = dfg.condensation();
        assert_eq!(cond.comp_of(x), None);
        assert_eq!(cond.reach0_row(y).iter().copied().sum::<u64>(), 0);
        assert!(cond.reaches0(cca, z));
    }

    #[test]
    fn cache_shared_by_clone_and_invalidated_by_mutation() {
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let b = dfg.add_node(NodeKind::Op(Opcode::Sub));
        dfg.add_edge(a, b, 0, EdgeKind::Data);
        let first = dfg.condensation();
        // Same Arc on repeated calls, and shared by clones.
        assert!(std::sync::Arc::ptr_eq(&first, &dfg.condensation()));
        let copy = dfg.clone();
        assert!(std::sync::Arc::ptr_eq(&first, &copy.condensation()));
        assert_eq!(dfg, copy);
        // Mutation invalidates: b -> a closes a cycle, merging the comps.
        dfg.add_edge(b, a, 1, EdgeKind::Data);
        let second = dfg.condensation();
        assert!(!std::sync::Arc::ptr_eq(&first, &second));
        assert_eq!(second.num_comps(), 1);
        // The clone still sees the old structure.
        assert_eq!(copy.condensation().num_comps(), 2);
        assert_ne!(dfg, copy);
    }
}
