//! Control-flow graphs, dominators, and natural-loop identification.
//!
//! The VEAL VM's first translation step is "simply to identify loops within
//! the program … finding strongly connected components of a control flow
//! graph is a simple linear time problem" (paper §4.1). This module provides
//! that substrate: functions made of basic blocks, a dominator analysis, and
//! natural-loop discovery used both by the static compiler (`veal-opt`) and
//! by the dynamic loop detector (`veal-vm`).

use crate::instr::Instruction;
use crate::types::BlockId;
use std::collections::BTreeSet;
use std::fmt;

/// A basic block: straight-line instructions plus successor blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasicBlock {
    /// The instructions of the block, terminator last.
    pub instrs: Vec<Instruction>,
    /// Successor blocks, in branch order (taken first).
    pub succs: Vec<BlockId>,
}

/// A function: a CFG over [`BasicBlock`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    name: String,
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    num_vregs: usize,
}

impl Function {
    /// Creates a function from raw parts (normally via
    /// [`crate::FunctionBuilder`]).
    ///
    /// # Panics
    ///
    /// Panics if `entry` or any successor id is out of range.
    #[must_use]
    pub fn new(name: String, blocks: Vec<BasicBlock>, entry: BlockId, num_vregs: usize) -> Self {
        assert!(entry.index() < blocks.len(), "entry out of range");
        for b in &blocks {
            for s in &b.succs {
                assert!(s.index() < blocks.len(), "successor out of range");
            }
        }
        Function {
            name,
            blocks,
            entry,
            num_vregs,
        }
    }

    /// The function's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of virtual registers the function uses.
    #[must_use]
    pub fn num_vregs(&self) -> usize {
        self.num_vregs
    }

    /// All blocks.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Mutable access to all blocks (used by the transformation passes).
    pub fn blocks_mut(&mut self) -> &mut Vec<BasicBlock> {
        &mut self.blocks
    }

    /// Access one block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Predecessor lists for every block.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s.index()].push(BlockId::new(i));
            }
        }
        preds
    }

    /// Reverse postorder of blocks reachable from entry.
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        // Iterative DFS with explicit stack of (block, next-succ index).
        let mut stack: Vec<(usize, usize)> = vec![(self.entry.index(), 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut pos)) = stack.last_mut() {
            let succs = &self.blocks[b].succs;
            if *pos < succs.len() {
                let s = succs[*pos].index();
                *pos += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                stack.pop();
                postorder.push(BlockId::new(b));
            }
        }
        postorder.reverse();
        postorder
    }

    /// Immediate dominators, indexed by block. Unreachable blocks map to
    /// `None`; the entry block dominates itself.
    ///
    /// Uses the Cooper–Harvey–Kennedy iterative algorithm.
    #[must_use]
    pub fn immediate_dominators(&self) -> Vec<Option<BlockId>> {
        let rpo = self.reverse_postorder();
        let n = self.blocks.len();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let preds = self.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[self.entry.index()] = Some(self.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_pos[a.index()] > rpo_pos[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_pos[b.index()] > rpo_pos[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether `a` dominates `b` (requires both reachable).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let idom = self.immediate_dominators();
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Finds all natural loops: back edges `latch → header` where `header`
    /// dominates `latch`, each expanded to the set of blocks that reach the
    /// latch without passing through the header. Back edges sharing a header
    /// are merged into one loop.
    #[must_use]
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let idom = self.immediate_dominators();
        let preds = self.predecessors();
        let dominates = |a: BlockId, b: BlockId| -> bool {
            let mut cur = b;
            loop {
                if cur == a {
                    return true;
                }
                match idom[cur.index()] {
                    Some(d) if d != cur => cur = d,
                    _ => return false,
                }
            }
        };

        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            let latch = BlockId::new(i);
            if idom[i].is_none() {
                continue; // unreachable
            }
            for &header in &b.succs {
                if !dominates(header, latch) {
                    continue;
                }
                // Collect the loop body by walking predecessors from the
                // latch until the header.
                let mut body: BTreeSet<BlockId> = BTreeSet::new();
                body.insert(header);
                let mut work = vec![latch];
                while let Some(x) = work.pop() {
                    if body.insert(x) {
                        for &p in &preds[x.index()] {
                            work.push(p);
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                    existing.blocks.extend(body.iter().copied());
                    existing.blocks.sort();
                    existing.blocks.dedup();
                    existing.latches.push(latch);
                } else {
                    loops.push(NaturalLoop {
                        header,
                        blocks: body.into_iter().collect(),
                        latches: vec![latch],
                    });
                }
            }
        }
        loops
    }

    /// Total static instruction count.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {} (entry {}):", self.name, self.entry)?;
        for (i, b) in self.blocks.iter().enumerate() {
            write!(f, "{}:", BlockId::new(i))?;
            if !b.succs.is_empty() {
                write!(f, "  -> ")?;
                for (j, s) in b.succs.iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
            }
            writeln!(f)?;
            for instr in &b.instrs {
                writeln!(f, "    {instr}")?;
            }
        }
        Ok(())
    }
}

/// A natural loop discovered in a [`Function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (the unique entry block).
    pub header: BlockId,
    /// All blocks of the loop, sorted, header included.
    pub blocks: Vec<BlockId>,
    /// The latch blocks (sources of back edges).
    pub latches: Vec<BlockId>,
}

impl NaturalLoop {
    /// Whether this loop contains `block`.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.binary_search(&block).is_ok()
    }

    /// Whether this loop is nested strictly inside `other`.
    #[must_use]
    pub fn nested_in(&self, other: &NaturalLoop) -> bool {
        self.header != other.header && self.blocks.iter().all(|b| other.contains(*b))
    }

    /// Whether this is an innermost loop among `all` (contains no other
    /// loop).
    #[must_use]
    pub fn is_innermost(&self, all: &[NaturalLoop]) -> bool {
        !all.iter().any(|l| l.nested_in(self))
    }

    /// The blocks inside the loop that have a successor outside it — the
    /// loop's exit blocks. A single-exit loop (exit == latch == the block
    /// with the back branch) is the modulo-schedulable shape.
    #[must_use]
    pub fn exit_blocks(&self, f: &Function) -> Vec<BlockId> {
        self.blocks
            .iter()
            .copied()
            .filter(|&b| f.block(b).succs.iter().any(|s| !self.contains(*s)))
            .collect()
    }
}

/// A program: a set of functions callable by id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The functions, indexed by [`crate::FuncId`].
    pub functions: Vec<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// entry -> header -> body -> header (loop), header -> exit
    fn diamond_loop() -> Function {
        let mut fb = FunctionBuilder::new("loopy");
        let entry = fb.block();
        let header = fb.block();
        let body = fb.block();
        let exit = fb.block();
        fb.set_entry(entry);
        fb.branch(entry, header);
        let c = fb.fresh_reg();
        fb.cond_branch(header, c, body, exit);
        fb.branch(body, header);
        fb.ret(exit, None);
        fb.finish()
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = diamond_loop();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn idom_chain() {
        let f = diamond_loop();
        let idom = f.immediate_dominators();
        assert_eq!(idom[0], Some(BlockId::new(0)));
        assert_eq!(idom[1], Some(BlockId::new(0)));
        assert_eq!(idom[2], Some(BlockId::new(1)));
        assert_eq!(idom[3], Some(BlockId::new(1)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = diamond_loop();
        assert!(f.dominates(BlockId::new(0), BlockId::new(0)));
        assert!(f.dominates(BlockId::new(0), BlockId::new(3)));
        assert!(f.dominates(BlockId::new(1), BlockId::new(2)));
        assert!(!f.dominates(BlockId::new(2), BlockId::new(3)));
    }

    #[test]
    fn natural_loop_found() {
        let f = diamond_loop();
        let loops = f.natural_loops();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId::new(1));
        assert!(l.contains(BlockId::new(2)));
        assert!(!l.contains(BlockId::new(3)));
        assert_eq!(l.latches, vec![BlockId::new(2)]);
        assert!(l.is_innermost(&loops));
    }

    #[test]
    fn exit_blocks_of_simple_loop() {
        let f = diamond_loop();
        let loops = f.natural_loops();
        assert_eq!(loops[0].exit_blocks(&f), vec![BlockId::new(1)]);
    }

    fn nested_loops() -> Function {
        // entry -> oh(outer header) -> ih(inner header) -> ib -> ih,
        // ih -> ol(outer latch) -> oh, oh -> exit
        let mut fb = FunctionBuilder::new("nested");
        let entry = fb.block();
        let oh = fb.block();
        let ih = fb.block();
        let ib = fb.block();
        let ol = fb.block();
        let exit = fb.block();
        fb.set_entry(entry);
        fb.branch(entry, oh);
        let c1 = fb.fresh_reg();
        fb.cond_branch(oh, c1, ih, exit);
        let c2 = fb.fresh_reg();
        fb.cond_branch(ih, c2, ib, ol);
        fb.branch(ib, ih);
        fb.branch(ol, oh);
        fb.ret(exit, None);
        fb.finish()
    }

    #[test]
    fn nested_loop_structure() {
        let f = nested_loops();
        let loops = f.natural_loops();
        assert_eq!(loops.len(), 2);
        let inner = loops.iter().find(|l| l.header == BlockId::new(2)).unwrap();
        let outer = loops.iter().find(|l| l.header == BlockId::new(1)).unwrap();
        assert!(inner.nested_in(outer));
        assert!(!outer.nested_in(inner));
        assert!(inner.is_innermost(&loops));
        assert!(!outer.is_innermost(&loops));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut fb = FunctionBuilder::new("unreach");
        let entry = fb.block();
        let dead = fb.block();
        fb.set_entry(entry);
        fb.ret(entry, None);
        fb.ret(dead, None);
        let f = fb.finish();
        let idom = f.immediate_dominators();
        assert_eq!(idom[dead.index()], None);
    }

    #[test]
    fn two_latches_merge_into_one_loop() {
        // header with two distinct back-edge sources.
        let mut fb = FunctionBuilder::new("two_latch");
        let entry = fb.block();
        let header = fb.block();
        let a = fb.block();
        let b = fb.block();
        let exit = fb.block();
        fb.set_entry(entry);
        fb.branch(entry, header);
        let c1 = fb.fresh_reg();
        fb.cond_branch(header, c1, a, b);
        let c2 = fb.fresh_reg();
        fb.cond_branch(a, c2, header, exit);
        fb.branch(b, header);
        fb.ret(exit, None);
        let f = fb.finish();
        let loops = f.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].latches.len(), 2);
        assert!(loops[0].contains(a));
        assert!(loops[0].contains(b));
    }

    #[test]
    fn display_contains_blocks() {
        let f = diamond_loop();
        let s = f.to_string();
        assert!(s.contains("fn loopy"));
        assert!(s.contains("bb1"));
    }
}
