//! The retained reference adjacency representation.
//!
//! Before the data-oriented sweep, [`Dfg`] kept per-node `Vec<u32>` edge
//! lists built by pushing on every `add_edge`. [`RefDfg`] preserves that
//! representation — push-built adjacency, the original Kahn topological
//! sort over those lists, the original iterator-`nth` Tarjan, the same
//! content-hash serialization, and the original structural verifier — as
//! an executable specification. The property corpus
//! (`crates/ir/tests/soa_equivalence.rs`) asserts the CSR-backed [`Dfg`]
//! matches it on succ/pred iteration order, SCC condensation, content
//! hash, and verify verdicts; `bench_translate` times it to quantify the
//! layout win on the DFG/loop-identification phase.

use crate::dfg::{Dfg, DfgEdge, DfgNode, NodeKind};
use crate::opcode::Opcode;
use crate::types::OpId;
use crate::verify::VerifyError;

/// A dataflow graph in the pre-sweep representation: array-of-`Vec`
/// adjacency, no caches.
#[derive(Debug, Clone)]
pub struct RefDfg {
    nodes: Vec<DfgNode>,
    edges: Vec<DfgEdge>,
    succ: Vec<Vec<u32>>,
    pred: Vec<Vec<u32>>,
}

impl RefDfg {
    /// Rebuilds `dfg` in the reference representation, replaying every
    /// edge through the original push-based adjacency construction.
    #[must_use]
    pub fn from_dfg(dfg: &Dfg) -> Self {
        let nodes = dfg.nodes.clone();
        let edges = dfg.edges.clone();
        let mut succ = vec![Vec::new(); nodes.len()];
        let mut pred = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            succ[e.src.index()].push(i as u32);
            pred[e.dst.index()].push(i as u32);
        }
        RefDfg {
            nodes,
            edges,
            succ,
            pred,
        }
    }

    /// Total number of node slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    #[must_use]
    pub fn node(&self, id: OpId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[DfgEdge] {
        &self.edges
    }

    /// Outgoing edges of `id`, in insertion order.
    pub fn succ_edges(&self, id: OpId) -> impl Iterator<Item = &DfgEdge> + '_ {
        self.succ[id.index()]
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Incoming edges of `id`, in insertion order.
    pub fn pred_edges(&self, id: OpId) -> impl Iterator<Item = &DfgEdge> + '_ {
        self.pred[id.index()]
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Live node ids.
    pub fn live_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_dead())
            .map(|(i, _)| OpId::new(i))
    }

    /// The original Kahn topological sort over distance-0 edges (seed in
    /// ascending id order, LIFO pop).
    ///
    /// # Errors
    ///
    /// Returns the ids stuck in a distance-0 cycle, exactly like
    /// [`Dfg::topo_order`].
    pub fn topo_order(&self) -> Result<Vec<OpId>, Vec<OpId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut live = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_dead() {
                continue;
            }
            live += 1;
            indeg[i] = self.pred[i]
                .iter()
                .filter(|&&e| {
                    let edge = &self.edges[e as usize];
                    edge.distance == 0 && !self.nodes[edge.src.index()].is_dead()
                })
                .count();
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.nodes[i].is_dead() && indeg[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(live);
        while let Some(v) = queue.pop() {
            order.push(OpId::new(v));
            for &e in &self.succ[v] {
                let edge = &self.edges[e as usize];
                if edge.distance != 0 || self.nodes[edge.dst.index()].is_dead() {
                    continue;
                }
                let w = edge.dst.index();
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() == live {
            Ok(order)
        } else {
            let stuck: Vec<OpId> = (0..n)
                .filter(|&i| !self.nodes[i].is_dead() && indeg[i] > 0)
                .map(OpId::new)
                .collect();
            Err(stuck)
        }
    }

    /// The original iterative Tarjan over all edges (iterator + `nth`
    /// cursor), emitting components in reverse topological order with
    /// members sorted — the exact list [`Dfg::sccs`] produces.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<OpId>> {
        const UNVISITED: u32 = u32::MAX;
        let n = self.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut comps: Vec<Vec<OpId>> = Vec::new();

        let mut call_stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..n {
            if self.nodes[start].is_dead() || index[start] != UNVISITED {
                continue;
            }
            call_stack.push((start as u32, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
                let v_usize = v as usize;
                let mut advanced = false;
                if let Some(edge) = self.succ_edges(OpId::new(v_usize)).nth(*pos) {
                    *pos += 1;
                    advanced = true;
                    let w = edge.dst.index();
                    if !self.nodes[w].is_dead() {
                        if index[w] == UNVISITED {
                            index[w] = next_index;
                            low[w] = next_index;
                            next_index += 1;
                            stack.push(w as u32);
                            on_stack[w] = true;
                            call_stack.push((w as u32, 0));
                        } else if on_stack[w] {
                            low[v_usize] = low[v_usize].min(index[w]);
                        }
                    }
                }
                if advanced {
                    continue;
                }
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    let p = parent as usize;
                    low[p] = low[p].min(low[v_usize]);
                }
                if low[v_usize] == index[v_usize] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component.push(OpId::new(w as usize));
                        if w == v {
                            break;
                        }
                    }
                    component.sort();
                    comps.push(component);
                }
            }
        }
        comps
    }

    /// The original content-hash serialization — identical byte stream,
    /// and therefore identical fingerprint, to [`Dfg::content_hash`].
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::rng::Fnv64::new();
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Op(op) => {
                    h.write_u8(1);
                    h.write_u64(*op as u64);
                }
                NodeKind::LiveIn => h.write_u8(2),
                NodeKind::Const(v) => {
                    h.write_u8(3);
                    h.write_u64(*v as u64);
                }
            }
            h.write_u64(n.stream.map_or(u64::MAX, u64::from));
            h.write_u8(u8::from(n.live_out) | (u8::from(n.is_dead()) << 1));
            h.write_u64(n.cca_members.len() as u64);
            for m in &n.cca_members {
                h.write_u64(m.index() as u64);
            }
        }
        h.write_u64(self.edges.len() as u64);
        for e in &self.edges {
            h.write_u64(e.src.index() as u64);
            h.write_u64(e.dst.index() as u64);
            h.write_u64(u64::from(e.distance));
            h.write_u8(match e.kind {
                crate::dfg::EdgeKind::Data => 0,
                crate::dfg::EdgeKind::Mem => 1,
            });
        }
        h.finish()
    }

    /// The original structural verifier, error for error identical to
    /// [`crate::verify_dfg`].
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for e in &self.edges {
            if self.node(e.src).is_dead() || self.node(e.dst).is_dead() {
                return Err(VerifyError::EdgeToDeadNode {
                    src: e.src,
                    dst: e.dst,
                });
            }
        }
        for id in self.live_ids() {
            let node = self.node(id);
            match &node.kind {
                NodeKind::LiveIn | NodeKind::Const(_) => {
                    if self.pred_edges(id).next().is_some() {
                        return Err(VerifyError::PseudoNodeHasInputs(id));
                    }
                }
                NodeKind::Op(op) => {
                    if op.is_mem() && node.stream.is_none() && self.pred_edges(id).next().is_none()
                    {
                        return Err(VerifyError::DanglingMemoryOp(id));
                    }
                    if *op == Opcode::Cca && node.cca_members.is_empty() {
                        return Err(VerifyError::EmptyCca(id));
                    }
                }
            }
        }
        self.topo_order()
            .map_err(VerifyError::IntraIterationCycle)?;
        Ok(())
    }
}
