//! Ergonomic builders for dataflow graphs and CFG functions.

use crate::cfg::{BasicBlock, Function};
use crate::dfg::{Dfg, EdgeKind, NodeKind};
use crate::instr::{Instruction, Operand};
use crate::opcode::Opcode;
use crate::types::{BlockId, OpId, VReg};

/// Incremental builder for a loop-body [`Dfg`].
///
/// Every `op` call adds distance-0 data edges from its inputs; loop-carried
/// dependences are added explicitly with [`DfgBuilder::loop_carried`].
///
/// # Example
///
/// A dot-product style accumulation:
///
/// ```
/// use veal_ir::{DfgBuilder, Opcode};
///
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// let y = b.load_stream(1);
/// let p = b.op(Opcode::Mul, &[x, y]);
/// let acc = b.op(Opcode::Add, &[p]);
/// b.loop_carried(acc, acc, 1); // acc += p
/// b.mark_live_out(acc);
/// let dfg = b.finish();
/// assert_eq!(dfg.recurrences().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DfgBuilder {
    dfg: Dfg,
}

impl DfgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operation with distance-0 data edges from `inputs`.
    pub fn op(&mut self, opcode: Opcode, inputs: &[OpId]) -> OpId {
        let id = self.dfg.add_node(NodeKind::Op(opcode));
        for &input in inputs {
            self.dfg.add_edge(input, id, 0, EdgeKind::Data);
        }
        id
    }

    /// Adds a `Load` from memory stream `stream`.
    pub fn load_stream(&mut self, stream: u16) -> OpId {
        let id = self.dfg.add_node(NodeKind::Op(Opcode::Load));
        self.dfg.node_mut(id).stream = Some(stream);
        id
    }

    /// Adds a `Store` of `value` to memory stream `stream`.
    pub fn store_stream(&mut self, stream: u16, value: OpId) -> OpId {
        let id = self.dfg.add_node(NodeKind::Op(Opcode::Store));
        self.dfg.node_mut(id).stream = Some(stream);
        self.dfg.add_edge(value, id, 0, EdgeKind::Data);
        id
    }

    /// Adds a scalar live-in pseudo-node.
    pub fn live_in(&mut self) -> OpId {
        self.dfg.add_node(NodeKind::LiveIn)
    }

    /// Adds a constant pseudo-node.
    pub fn constant(&mut self, value: i64) -> OpId {
        self.dfg.add_node(NodeKind::Const(value))
    }

    /// Adds a loop-carried data edge: the value of `src` is consumed by
    /// `dst` `distance` iterations later.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero (use [`DfgBuilder::op`] inputs for
    /// intra-iteration dependences).
    pub fn loop_carried(&mut self, src: OpId, dst: OpId, distance: u32) {
        assert!(distance > 0, "loop-carried distance must be positive");
        self.dfg.add_edge(src, dst, distance, EdgeKind::Data);
    }

    /// Adds a memory-ordering edge.
    pub fn mem_dep(&mut self, src: OpId, dst: OpId, distance: u32) {
        self.dfg.add_edge(src, dst, distance, EdgeKind::Mem);
    }

    /// Marks a node's value as live after the loop.
    pub fn mark_live_out(&mut self, id: OpId) {
        self.dfg.node_mut(id).live_out = true;
    }

    /// Finishes construction.
    #[must_use]
    pub fn finish(self) -> Dfg {
        self.dfg
    }
}

/// Incremental builder for CFG [`Function`]s.
///
/// # Example
///
/// ```
/// use veal_ir::{FunctionBuilder, Opcode, VReg};
///
/// let mut fb = FunctionBuilder::new("f");
/// let entry = fb.block();
/// let body = fb.block();
/// let exit = fb.block();
/// fb.set_entry(entry);
/// fb.branch(entry, body);
/// let i = fb.fresh_reg();
/// fb.push(body, Opcode::Add, Some(i), vec![i.into(), 1i64.into()]);
/// fb.cond_branch(body, i, body, exit); // loop back edge
/// let f = fb.finish();
/// assert_eq!(f.natural_loops().len(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    entry: Option<BlockId>,
    next_reg: usize,
}

impl FunctionBuilder {
    /// Creates a builder for a function named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        FunctionBuilder {
            name: name.to_owned(),
            blocks: Vec::new(),
            entry: None,
            next_reg: 0,
        }
    }

    /// Adds an empty basic block.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(BasicBlock::default());
        id
    }

    /// Declares the entry block.
    pub fn set_entry(&mut self, entry: BlockId) {
        self.entry = Some(entry);
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> VReg {
        let r = VReg::new(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Appends an instruction to `block`.
    pub fn push(&mut self, block: BlockId, opcode: Opcode, dest: Option<VReg>, srcs: Vec<Operand>) {
        self.blocks[block.index()]
            .instrs
            .push(Instruction::new(opcode, dest, srcs));
    }

    /// Appends a prebuilt instruction (e.g. a call) to `block`.
    pub fn push_instr(&mut self, block: BlockId, instr: Instruction) {
        self.blocks[block.index()].instrs.push(instr);
    }

    /// Terminates `block` with an unconditional branch to `target`.
    pub fn branch(&mut self, block: BlockId, target: BlockId) {
        self.blocks[block.index()]
            .instrs
            .push(Instruction::new(Opcode::Br, None, Vec::new()));
        self.blocks[block.index()].succs = vec![target];
    }

    /// Terminates `block` with a conditional branch on `cond`: taken →
    /// `taken`, fall-through → `fallthrough`.
    pub fn cond_branch(
        &mut self,
        block: BlockId,
        cond: VReg,
        taken: BlockId,
        fallthrough: BlockId,
    ) {
        self.blocks[block.index()].instrs.push(Instruction::new(
            Opcode::BrCond,
            None,
            vec![cond.into()],
        ));
        self.blocks[block.index()].succs = vec![taken, fallthrough];
    }

    /// Terminates `block` with a return of `value`.
    pub fn ret(&mut self, block: BlockId, value: Option<VReg>) {
        let srcs = value.map(|v| vec![v.into()]).unwrap_or_default();
        self.blocks[block.index()]
            .instrs
            .push(Instruction::new(Opcode::Ret, None, srcs));
        self.blocks[block.index()].succs = Vec::new();
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if no entry block was declared.
    #[must_use]
    pub fn finish(self) -> Function {
        Function::new(
            self.name,
            self.blocks,
            self.entry.expect("entry block must be set"),
            self.next_reg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_creates_edges_in_input_order() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let y = b.constant(2);
        let s = b.op(Opcode::Add, &[x, y]);
        let dfg = b.finish();
        let srcs: Vec<OpId> = dfg.pred_edges(s).map(|e| e.src).collect();
        assert_eq!(srcs, vec![x, y]);
    }

    #[test]
    fn store_has_value_edge() {
        let mut b = DfgBuilder::new();
        let v = b.constant(1);
        let st = b.store_stream(0, v);
        let dfg = b.finish();
        assert_eq!(dfg.pred_edges(st).count(), 1);
        assert_eq!(dfg.node(st).stream, Some(0));
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_loop_carried_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        b.loop_carried(x, x, 0);
    }

    #[test]
    fn function_builder_counts_regs() {
        let mut fb = FunctionBuilder::new("g");
        let e = fb.block();
        fb.set_entry(e);
        let a = fb.fresh_reg();
        let c = fb.fresh_reg();
        fb.push(e, Opcode::Add, Some(c), vec![a.into(), a.into()]);
        fb.ret(e, Some(c));
        let f = fb.finish();
        assert_eq!(f.num_vregs(), 2);
        assert_eq!(f.name(), "g");
    }
}
