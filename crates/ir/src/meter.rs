//! Abstract translation-cost metering.
//!
//! The paper measured "the number of instructions needed to retarget each
//! loop … using OProfile on an x86 system" (§4.2, Figure 8). We reproduce
//! that measurement by charging every translation algorithm's elementary
//! steps to a [`CostMeter`]: each charged unit corresponds to a handful of
//! host instructions. The per-phase breakdown drives Figure 8, and the
//! per-loop totals drive the translation-overhead penalties in Figures 6
//! and 10.

use std::fmt;

/// A phase of loop-accelerator translation (paper §4.1/§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Detecting the loop in the instruction stream (always dynamic).
    LoopIdent,
    /// Separating control and memory streams.
    StreamSep,
    /// Greedy CCA subgraph identification.
    CcaMapping,
    /// Resource-constrained minimum II.
    ResMii,
    /// Recurrence-constrained minimum II.
    RecMii,
    /// Scheduling-priority computation (the dominant cost: ~69%).
    Priority,
    /// Modulo list scheduling.
    Scheduling,
    /// Register assignment and live-value mapping.
    RegAssign,
    /// Decoding static hints from the binary (replaces Priority/CcaMapping
    /// when hints are present).
    HintDecode,
    /// Instantiating a symbolic (family-keyed) translation at one concrete
    /// accelerator configuration. Charged to the session-level concretize
    /// meter, never into a translation's own breakdown — point translations
    /// have no such step, and family-mode outcomes must stay bit-identical
    /// to them.
    Concretize,
}

/// Every phase, in display order.
pub const ALL_PHASES: &[Phase] = &[
    Phase::LoopIdent,
    Phase::StreamSep,
    Phase::CcaMapping,
    Phase::ResMii,
    Phase::RecMii,
    Phase::Priority,
    Phase::Scheduling,
    Phase::RegAssign,
    Phase::HintDecode,
    Phase::Concretize,
];

impl Phase {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::LoopIdent => "loop-ident",
            Phase::StreamSep => "stream-sep",
            Phase::CcaMapping => "cca-mapping",
            Phase::ResMii => "res-mii",
            Phase::RecMii => "rec-mii",
            Phase::Priority => "priority",
            Phase::Scheduling => "scheduling",
            Phase::RegAssign => "reg-assign",
            Phase::HintDecode => "hint-decode",
            Phase::Concretize => "concretize",
        }
    }

    /// Inverse of [`Phase::name`]: resolves a wire/display name back to
    /// the phase. Returns `None` for unknown names.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Phase> {
        ALL_PHASES.iter().copied().find(|p| p.name() == name)
    }

    /// Dense index of the phase. `ALL_PHASES` lists variants in
    /// declaration order, so the discriminant *is* the position (asserted
    /// by a unit test below) — the previous linear search sat on the
    /// meter's hot path, under every single `charge`.
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-phase abstract instruction counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    counts: [u64; ALL_PHASES.len()],
}

impl PhaseBreakdown {
    /// Count charged to one phase.
    #[must_use]
    pub fn get(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Total across all phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total charged to `phase` (0.0 when nothing was
    /// charged at all).
    #[must_use]
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }

    /// Sets the count of one phase outright (deserialization; tests).
    pub fn set(&mut self, phase: Phase, units: u64) {
        self.counts[phase.index()] = units;
    }

    /// Adds another breakdown into this one, saturating at `u64::MAX`.
    ///
    /// Aggregates merged across a long memoized sweep can exceed any
    /// single translation's range; a wrap here would silently corrupt the
    /// Figure 8 fractions (and panic in debug builds), so saturate.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// The counts charged since `earlier` was captured, assuming this
    /// breakdown only grew from it (counts are monotonic under
    /// [`CostMeter::charge`]). Saturates at zero if `earlier` is ahead.
    #[must_use]
    pub fn delta_since(&self, earlier: &PhaseBreakdown) -> PhaseBreakdown {
        let mut out = PhaseBreakdown::default();
        for (i, (a, b)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = a.saturating_sub(*b);
        }
        out
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &p in ALL_PHASES {
            let c = self.get(p);
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", p.name(), c)?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// Accumulates abstract instruction counts per translation phase.
///
/// One meter instance measures the translation of one loop; the VM keeps a
/// meter per translation event and aggregates breakdowns per benchmark.
///
/// # Example
///
/// ```
/// use veal_ir::{CostMeter, Phase};
/// let mut m = CostMeter::new();
/// m.charge(Phase::Priority, 120);
/// m.charge(Phase::Scheduling, 30);
/// assert_eq!(m.breakdown().total(), 150);
/// assert!(m.breakdown().fraction(Phase::Priority) > 0.7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    breakdown: PhaseBreakdown,
}

impl CostMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `units` abstract instructions to `phase`.
    ///
    /// Inlined across crates: the scheduler charges per edge and per slot
    /// probe, so in a hot translation loop this runs tens of thousands of
    /// times per loop body and must compile down to a single add.
    #[inline]
    pub fn charge(&mut self, phase: Phase, units: u64) {
        self.breakdown.counts[phase.index()] += units;
    }

    /// The accumulated breakdown.
    #[must_use]
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.breakdown
    }

    /// A copy of the current breakdown, for later [`PhaseBreakdown::delta_since`]
    /// comparison. Observability code uses this to attribute charges to a
    /// region without ever writing to the meter.
    #[must_use]
    pub fn snapshot(&self) -> PhaseBreakdown {
        self.breakdown
    }

    /// Total abstract instructions charged so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.breakdown.total()
    }

    /// Resets all counts to zero.
    pub fn reset(&mut self) {
        self.breakdown = PhaseBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_discriminant_matches_all_phases_position() {
        for (i, &p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(p.index(), i, "{p} out of order vs ALL_PHASES");
        }
    }

    #[test]
    fn charges_accumulate_per_phase() {
        let mut m = CostMeter::new();
        m.charge(Phase::CcaMapping, 5);
        m.charge(Phase::CcaMapping, 7);
        assert_eq!(m.breakdown().get(Phase::CcaMapping), 12);
        assert_eq!(m.total(), 12);
    }

    #[test]
    fn fraction_of_empty_meter_is_zero() {
        let m = CostMeter::new();
        assert_eq!(m.breakdown().fraction(Phase::Priority), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CostMeter::new();
        a.charge(Phase::ResMii, 10);
        let mut b = CostMeter::new();
        b.charge(Phase::ResMii, 5);
        b.charge(Phase::RecMii, 3);
        let mut sum = *a.breakdown();
        sum.merge(b.breakdown());
        assert_eq!(sum.get(Phase::ResMii), 15);
        assert_eq!(sum.get(Phase::RecMii), 3);
        assert_eq!(sum.total(), 18);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        // Regression: merge used unchecked `+=`, so aggregating near-full
        // counters panicked in debug builds and wrapped in release.
        let mut a = PhaseBreakdown::default();
        a.set(Phase::Priority, u64::MAX - 1);
        let mut b = PhaseBreakdown::default();
        b.set(Phase::Priority, 2);
        b.set(Phase::Scheduling, 3);
        a.merge(&b);
        assert_eq!(a.get(Phase::Priority), u64::MAX);
        assert_eq!(a.get(Phase::Scheduling), 3);
    }

    #[test]
    fn snapshot_delta_attributes_a_region() {
        let mut m = CostMeter::new();
        m.charge(Phase::CcaMapping, 4);
        let before = m.snapshot();
        m.charge(Phase::CcaMapping, 6);
        m.charge(Phase::Priority, 9);
        let delta = m.breakdown().delta_since(&before);
        assert_eq!(delta.get(Phase::CcaMapping), 6);
        assert_eq!(delta.get(Phase::Priority), 9);
        assert_eq!(delta.total(), 15);
        // Backwards delta saturates at zero rather than wrapping.
        assert_eq!(before.delta_since(m.breakdown()).total(), 0);
    }

    #[test]
    fn phase_names_round_trip() {
        for &p in ALL_PHASES {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("warp"), None);
    }

    #[test]
    fn reset_clears() {
        let mut m = CostMeter::new();
        m.charge(Phase::RegAssign, 9);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn display_lists_nonzero_phases() {
        let mut m = CostMeter::new();
        m.charge(Phase::Priority, 2);
        let s = m.breakdown().to_string();
        assert!(s.contains("priority=2"));
        assert!(!s.contains("scheduling"));
    }

    #[test]
    fn all_phases_have_unique_names() {
        let mut seen = std::collections::HashSet::new();
        for &p in ALL_PHASES {
            assert!(seen.insert(p.name()));
        }
    }
}
