//! Abstract translation-cost metering.
//!
//! The paper measured "the number of instructions needed to retarget each
//! loop … using OProfile on an x86 system" (§4.2, Figure 8). We reproduce
//! that measurement by charging every translation algorithm's elementary
//! steps to a [`CostMeter`]: each charged unit corresponds to a handful of
//! host instructions. The per-phase breakdown drives Figure 8, and the
//! per-loop totals drive the translation-overhead penalties in Figures 6
//! and 10.

use std::fmt;

/// A phase of loop-accelerator translation (paper §4.1/§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Detecting the loop in the instruction stream (always dynamic).
    LoopIdent,
    /// Separating control and memory streams.
    StreamSep,
    /// Greedy CCA subgraph identification.
    CcaMapping,
    /// Resource-constrained minimum II.
    ResMii,
    /// Recurrence-constrained minimum II.
    RecMii,
    /// Scheduling-priority computation (the dominant cost: ~69%).
    Priority,
    /// Modulo list scheduling.
    Scheduling,
    /// Register assignment and live-value mapping.
    RegAssign,
    /// Decoding static hints from the binary (replaces Priority/CcaMapping
    /// when hints are present).
    HintDecode,
}

/// Every phase, in display order.
pub const ALL_PHASES: &[Phase] = &[
    Phase::LoopIdent,
    Phase::StreamSep,
    Phase::CcaMapping,
    Phase::ResMii,
    Phase::RecMii,
    Phase::Priority,
    Phase::Scheduling,
    Phase::RegAssign,
    Phase::HintDecode,
];

impl Phase {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::LoopIdent => "loop-ident",
            Phase::StreamSep => "stream-sep",
            Phase::CcaMapping => "cca-mapping",
            Phase::ResMii => "res-mii",
            Phase::RecMii => "rec-mii",
            Phase::Priority => "priority",
            Phase::Scheduling => "scheduling",
            Phase::RegAssign => "reg-assign",
            Phase::HintDecode => "hint-decode",
        }
    }

    /// Dense index of the phase. `ALL_PHASES` lists variants in
    /// declaration order, so the discriminant *is* the position (asserted
    /// by a unit test below) — the previous linear search sat on the
    /// meter's hot path, under every single `charge`.
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-phase abstract instruction counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    counts: [u64; ALL_PHASES.len()],
}

impl PhaseBreakdown {
    /// Count charged to one phase.
    #[must_use]
    pub fn get(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Total across all phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total charged to `phase` (0.0 when nothing was
    /// charged at all).
    #[must_use]
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &p in ALL_PHASES {
            let c = self.get(p);
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", p.name(), c)?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// Accumulates abstract instruction counts per translation phase.
///
/// One meter instance measures the translation of one loop; the VM keeps a
/// meter per translation event and aggregates breakdowns per benchmark.
///
/// # Example
///
/// ```
/// use veal_ir::{CostMeter, Phase};
/// let mut m = CostMeter::new();
/// m.charge(Phase::Priority, 120);
/// m.charge(Phase::Scheduling, 30);
/// assert_eq!(m.breakdown().total(), 150);
/// assert!(m.breakdown().fraction(Phase::Priority) > 0.7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    breakdown: PhaseBreakdown,
}

impl CostMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `units` abstract instructions to `phase`.
    ///
    /// Inlined across crates: the scheduler charges per edge and per slot
    /// probe, so in a hot translation loop this runs tens of thousands of
    /// times per loop body and must compile down to a single add.
    #[inline]
    pub fn charge(&mut self, phase: Phase, units: u64) {
        self.breakdown.counts[phase.index()] += units;
    }

    /// The accumulated breakdown.
    #[must_use]
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.breakdown
    }

    /// Total abstract instructions charged so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.breakdown.total()
    }

    /// Resets all counts to zero.
    pub fn reset(&mut self) {
        self.breakdown = PhaseBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_discriminant_matches_all_phases_position() {
        for (i, &p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(p.index(), i, "{p} out of order vs ALL_PHASES");
        }
    }

    #[test]
    fn charges_accumulate_per_phase() {
        let mut m = CostMeter::new();
        m.charge(Phase::CcaMapping, 5);
        m.charge(Phase::CcaMapping, 7);
        assert_eq!(m.breakdown().get(Phase::CcaMapping), 12);
        assert_eq!(m.total(), 12);
    }

    #[test]
    fn fraction_of_empty_meter_is_zero() {
        let m = CostMeter::new();
        assert_eq!(m.breakdown().fraction(Phase::Priority), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CostMeter::new();
        a.charge(Phase::ResMii, 10);
        let mut b = CostMeter::new();
        b.charge(Phase::ResMii, 5);
        b.charge(Phase::RecMii, 3);
        let mut sum = *a.breakdown();
        sum.merge(b.breakdown());
        assert_eq!(sum.get(Phase::ResMii), 15);
        assert_eq!(sum.get(Phase::RecMii), 3);
        assert_eq!(sum.total(), 18);
    }

    #[test]
    fn reset_clears() {
        let mut m = CostMeter::new();
        m.charge(Phase::RegAssign, 9);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn display_lists_nonzero_phases() {
        let mut m = CostMeter::new();
        m.charge(Phase::Priority, 2);
        let s = m.breakdown().to_string();
        assert!(s.contains("priority=2"));
        assert!(!s.contains("scheduling"));
    }

    #[test]
    fn all_phases_have_unique_names() {
        let mut seen = std::collections::HashSet::new();
        for &p in ALL_PHASES {
            assert!(seen.insert(p.name()));
        }
    }
}
