//! Baseline intermediate representation for the VEAL system.
//!
//! This crate provides the "baseline instruction set" substrate the VEAL
//! paper assumes: a RISC-like operation set ([`Opcode`]), instructions over
//! virtual registers ([`Instruction`]), a control-flow graph with dominator
//! and natural-loop analysis ([`mod@cfg`]), and — most importantly — the
//! **dataflow graph** of an innermost loop body ([`Dfg`]) whose edges carry
//! *iteration distances*, the representation every later stage (CCA mapping,
//! modulo scheduling, the co-designed VM) operates on.
//!
//! The crate also hosts the [`meter::CostMeter`], the abstract
//! instruction-count meter used to reproduce the paper's Figure 8
//! translation-overhead measurements.
//!
//! # Example
//!
//! Build the dataflow graph of a tiny accumulation loop and inspect its
//! recurrences:
//!
//! ```
//! use veal_ir::{DfgBuilder, Opcode};
//!
//! let mut b = DfgBuilder::new();
//! let x = b.load_stream(0);
//! let acc = b.op(Opcode::Add, &[x, x]);
//! // `acc` feeds itself on the next iteration: a distance-1 recurrence.
//! b.loop_carried(acc, acc, 1);
//! let dfg = b.finish();
//! assert!(!dfg.sccs().is_empty());
//! ```

pub mod arena;
pub mod asm;
pub mod builder;
pub mod cfg;
pub mod classify;
pub mod condense;
pub mod dfg;
pub mod instr;
pub mod interp;
pub mod loops;
pub mod meter;
pub mod opcode;
pub mod pretty;
pub mod refgraph;
pub mod rng;
pub mod streams;
pub mod tuning;
pub mod types;
pub mod verify;

pub use arena::{with_arena, DfgArena};
pub use builder::{DfgBuilder, FunctionBuilder};
pub use cfg::{BasicBlock, Function, NaturalLoop};
pub use classify::{classify_loop, LoopClass};
pub use condense::{scc_membership, BitMatrix, Condensation, SccView};
pub use dfg::{Adjacency, Dfg, DfgEdge, DfgNode, EdgeKind};
pub use instr::{Instruction, Operand};
pub use interp::{interpret, ExecResult, Inputs, Value};
pub use loops::{LoopBody, LoopProfile};
pub use meter::{CostMeter, Phase, PhaseBreakdown};
pub use opcode::{FuClass, Opcode};
pub use refgraph::RefDfg;
pub use streams::{MemStream, StreamDir, StreamSummary};
pub use tuning::{data_oriented_enabled, set_data_oriented};
pub use types::{BlockId, FuncId, OpId, VReg};
pub use verify::{verify_dfg, VerifyError};
