//! Reusable scratch buffers for graph analyses.
//!
//! Every structural version of a [`crate::Dfg`] builds a CSR adjacency, and
//! every condensation runs a Tarjan plus a Kahn sort — all of which need a
//! handful of index and bitset buffers sized by the graph. A [`DfgArena`]
//! bundles those buffers so repeated translations (the sweep engine's memo
//! miss path, `veal-serve` workers) stop round-tripping the allocator: a
//! buffer freed by one translation is handed to the next.
//!
//! Arenas live in a global pool guarded by a [`Mutex`]. Like the sweep
//! memo's locks, every acquisition goes through
//! [`PoisonError::into_inner`]: a panicked translation (e.g. an ill-formed
//! body assert under `veal-serve` single-flight) must not wedge the pool
//! for every other worker. The RAII guard in [`with_arena`] returns the
//! arena to the pool even when the closure unwinds; buffers checked out at
//! the moment of the panic are simply dropped, never re-parked dirty.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// How many arenas the global pool keeps parked.
const POOL_DEPTH: usize = 8;

/// How many buffers of each width one arena parks.
const BUFS_PER_ARENA: usize = 16;

/// Buffers whose capacity exceeds this are dropped instead of parked, so a
/// single huge graph cannot pin its high-water memory forever.
const MAX_PARKED_CAP: usize = 1 << 20;

/// A bundle of recycled scratch buffers for graph analyses.
///
/// Obtain one with [`with_arena`]; `take_*` hands out a cleared buffer
/// (recycled when possible), `give_*` parks a no-longer-needed buffer for
/// the next taker.
#[derive(Debug, Default)]
pub struct DfgArena {
    u8s: Vec<Vec<u8>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
}

impl DfgArena {
    /// A cleared `u8` buffer (flat per-node tags), recycled if one is
    /// parked.
    pub fn take_u8(&mut self) -> Vec<u8> {
        self.u8s.pop().unwrap_or_default()
    }

    /// Parks a `u8` buffer for reuse.
    pub fn give_u8(&mut self, mut v: Vec<u8>) {
        if self.u8s.len() < BUFS_PER_ARENA && v.capacity() > 0 && v.capacity() <= MAX_PARKED_CAP {
            v.clear();
            self.u8s.push(v);
        }
    }

    /// A cleared `u32` buffer, recycled if one is parked.
    pub fn take_u32(&mut self) -> Vec<u32> {
        self.u32s.pop().unwrap_or_default()
    }

    /// Parks a `u32` buffer for reuse.
    pub fn give_u32(&mut self, mut v: Vec<u32>) {
        if self.u32s.len() < BUFS_PER_ARENA && v.capacity() > 0 && v.capacity() <= MAX_PARKED_CAP {
            v.clear();
            self.u32s.push(v);
        }
    }

    /// A cleared `u64` buffer (bitset words), recycled if one is parked.
    pub fn take_u64(&mut self) -> Vec<u64> {
        self.u64s.pop().unwrap_or_default()
    }

    /// Parks a `u64` buffer for reuse.
    pub fn give_u64(&mut self, mut v: Vec<u64>) {
        if self.u64s.len() < BUFS_PER_ARENA && v.capacity() > 0 && v.capacity() <= MAX_PARKED_CAP {
            v.clear();
            self.u64s.push(v);
        }
    }
}

static POOL: Mutex<Vec<DfgArena>> = Mutex::new(Vec::new());
static REUSES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// `(reuses, allocs)` of pooled arenas, summed across threads. A healthy
/// steady state reuses on almost every acquisition.
#[must_use]
pub fn arena_stats() -> (u64, u64) {
    (
        REUSES.load(Ordering::Relaxed),
        ALLOCS.load(Ordering::Relaxed),
    )
}

/// Runs `f` with a pooled [`DfgArena`], returning the arena to the global
/// pool afterwards — including when `f` panics (the pool is poison-safe;
/// see the module docs).
pub fn with_arena<R>(f: impl FnOnce(&mut DfgArena) -> R) -> R {
    struct Guard(Option<DfgArena>);
    impl Drop for Guard {
        fn drop(&mut self) {
            if let Some(arena) = self.0.take() {
                let mut pool = POOL.lock().unwrap_or_else(PoisonError::into_inner);
                if pool.len() < POOL_DEPTH {
                    pool.push(arena);
                }
            }
        }
    }

    let recycled = POOL.lock().unwrap_or_else(PoisonError::into_inner).pop();
    match &recycled {
        Some(_) => REUSES.fetch_add(1, Ordering::Relaxed),
        None => ALLOCS.fetch_add(1, Ordering::Relaxed),
    };
    let mut guard = Guard(Some(recycled.unwrap_or_default()));
    f(guard.0.as_mut().expect("arena present until drop"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_arena() {
        with_arena(|a| {
            let mut v = a.take_u32();
            v.extend_from_slice(&[1, 2, 3]);
            let cap = v.capacity();
            a.give_u32(v);
            let v2 = a.take_u32();
            assert!(v2.is_empty());
            assert_eq!(v2.capacity(), cap);
            a.give_u32(v2);
        });
    }

    #[test]
    fn panicked_user_does_not_wedge_the_pool() {
        // A panic inside `with_arena` must neither poison the pool mutex
        // nor lose the arena: the next acquisition still succeeds and can
        // reuse parked buffers.
        let _ = std::panic::catch_unwind(|| {
            with_arena(|a| {
                let v = a.take_u64();
                a.give_u64(v);
                let mut w = a.take_u64();
                w.resize(4, 0);
                a.give_u64(w);
                panic!("translation blew up mid-analysis");
            })
        });
        // Pool still serviceable afterwards.
        let got = with_arena(|a| {
            let v = a.take_u64();
            let ok = v.is_empty();
            a.give_u64(v);
            ok
        });
        assert!(got);
        let (reuses, allocs) = arena_stats();
        assert!(reuses + allocs >= 2);
    }

    #[test]
    fn oversized_buffers_are_not_parked() {
        with_arena(|a| {
            let mut huge = Vec::with_capacity(MAX_PARKED_CAP + 1);
            huge.push(0u32);
            a.give_u32(huge);
            // Whatever we take next, it is not the over-cap buffer.
            let v = a.take_u32();
            assert!(v.capacity() <= MAX_PARKED_CAP);
            a.give_u32(v);
        });
    }
}
