//! Structural validation of dataflow graphs.
//!
//! Every workload generator and transformation pass runs its output through
//! [`verify_dfg`]; the property tests fuzz random graphs against it.

use crate::dfg::{Dfg, NodeKind};
use crate::opcode::Opcode;
use crate::types::OpId;
use std::fmt;

/// A structural defect found in a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An edge references a dead node.
    EdgeToDeadNode { src: OpId, dst: OpId },
    /// The distance-0 subgraph contains a cycle, which cannot execute.
    IntraIterationCycle(Vec<OpId>),
    /// A pseudo-node (live-in or constant) has incoming data edges.
    PseudoNodeHasInputs(OpId),
    /// A memory op carries no stream annotation *and* has no address input
    /// (it could never execute anywhere).
    DanglingMemoryOp(OpId),
    /// A CCA pseudo-op with no recorded members.
    EmptyCca(OpId),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EdgeToDeadNode { src, dst } => {
                write!(f, "edge {src}->{dst} touches a dead node")
            }
            VerifyError::IntraIterationCycle(ids) => {
                write!(f, "distance-0 cycle through {} nodes", ids.len())
            }
            VerifyError::PseudoNodeHasInputs(id) => {
                write!(f, "pseudo node {id} has incoming edges")
            }
            VerifyError::DanglingMemoryOp(id) => {
                write!(f, "memory op {id} has neither stream nor address")
            }
            VerifyError::EmptyCca(id) => write!(f, "CCA op {id} has no members"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks the structural invariants of a graph.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, or `Ok(())` for a well-formed
/// graph.
///
/// # Example
///
/// ```
/// use veal_ir::{verify_dfg, DfgBuilder, Opcode};
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// b.store_stream(1, x);
/// assert!(verify_dfg(&b.finish()).is_ok());
/// ```
pub fn verify_dfg(dfg: &Dfg) -> Result<(), VerifyError> {
    if crate::tuning::data_oriented_enabled() {
        verify_dfg_fast(dfg)
    } else {
        verify_dfg_reference(dfg)
    }
}

/// The original verifier, retained as the reference implementation:
/// per-edge node dereferences and per-node predecessor iterators.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, in the same scan order as
/// [`verify_dfg`].
pub fn verify_dfg_reference(dfg: &Dfg) -> Result<(), VerifyError> {
    for e in dfg.edges() {
        if dfg.node(e.src).is_dead() || dfg.node(e.dst).is_dead() {
            return Err(VerifyError::EdgeToDeadNode {
                src: e.src,
                dst: e.dst,
            });
        }
    }
    for id in dfg.live_ids() {
        let node = dfg.node(id);
        match &node.kind {
            NodeKind::LiveIn | NodeKind::Const(_) => {
                if dfg.pred_edges(id).next().is_some() {
                    return Err(VerifyError::PseudoNodeHasInputs(id));
                }
            }
            NodeKind::Op(op) => {
                if op.is_mem() && node.stream.is_none() && dfg.pred_edges(id).next().is_none() {
                    return Err(VerifyError::DanglingMemoryOp(id));
                }
                if *op == Opcode::Cca && node.cca_members.is_empty() {
                    return Err(VerifyError::EmptyCca(id));
                }
            }
        }
    }
    dfg.topo_order().map_err(VerifyError::IntraIterationCycle)?;
    Ok(())
}

/// Vectorized verifier over the CSR adjacency: the dead-endpoint edge scan
/// runs only when the dead bitset has any bit set (decode-time graphs
/// normally have none, so the whole pass is a handful of word reads), and
/// the per-node checks read CSR offsets instead of constructing
/// predecessor iterators. Scan order, and therefore the first error
/// reported, matches [`verify_dfg_reference`] exactly.
fn verify_dfg_fast(dfg: &Dfg) -> Result<(), VerifyError> {
    let adj = dfg.adjacency();
    // A dead endpoint requires a dead node; word-parallel gate first.
    if adj.any_dead() {
        for e in dfg.edges() {
            if adj.is_dead(e.src.index()) || adj.is_dead(e.dst.index()) {
                return Err(VerifyError::EdgeToDeadNode {
                    src: e.src,
                    dst: e.dst,
                });
            }
        }
    }
    for i in 0..adj.len() {
        if adj.is_dead(i) {
            continue;
        }
        let id = OpId::new(i);
        if !adj.is_schedulable(i) {
            // Live but not an op: a pseudo node (live-in or constant).
            if !adj.pred_edge_ids(i).is_empty() {
                return Err(VerifyError::PseudoNodeHasInputs(id));
            }
            continue;
        }
        let opc = adj.opcodes()[i];
        let op = Opcode::decode(opc).expect("schedulable slot has a valid opcode");
        if op.is_mem() && dfg.node(id).stream.is_none() && adj.pred_edge_ids(i).is_empty() {
            return Err(VerifyError::DanglingMemoryOp(id));
        }
        if op == Opcode::Cca && dfg.node(id).cca_members.is_empty() {
            return Err(VerifyError::EmptyCca(id));
        }
    }
    dfg.topo_order().map_err(VerifyError::IntraIterationCycle)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::dfg::EdgeKind;

    #[test]
    fn well_formed_graph_passes() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        assert_eq!(verify_dfg(&b.finish()), Ok(()));
    }

    #[test]
    fn intra_iteration_cycle_detected() {
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let b = dfg.add_node(NodeKind::Op(Opcode::Sub));
        dfg.add_edge(a, b, 0, EdgeKind::Data);
        dfg.add_edge(b, a, 0, EdgeKind::Data);
        assert!(matches!(
            verify_dfg(&dfg),
            Err(VerifyError::IntraIterationCycle(_))
        ));
    }

    #[test]
    fn pseudo_node_with_inputs_detected() {
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let li = dfg.add_node(NodeKind::LiveIn);
        dfg.add_edge(a, li, 0, EdgeKind::Data);
        assert_eq!(verify_dfg(&dfg), Err(VerifyError::PseudoNodeHasInputs(li)));
    }

    #[test]
    fn dangling_memory_op_detected() {
        let mut dfg = Dfg::new();
        let ld = dfg.add_node(NodeKind::Op(Opcode::Load));
        assert_eq!(verify_dfg(&dfg), Err(VerifyError::DanglingMemoryOp(ld)));
    }

    #[test]
    fn loop_carried_cycle_is_fine() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::Add, &[]);
        b.loop_carried(x, x, 1);
        assert_eq!(verify_dfg(&b.finish()), Ok(()));
    }
}
