//! Loop classification, reproducing the categories of paper Figure 2.

use crate::dfg::Dfg;
use crate::meter::CostMeter;
use crate::opcode::Opcode;
use crate::streams::{separate, SeparationError};
use std::fmt;

/// The execution-time categories of paper Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopClass {
    /// A loop the accelerator supports: counted induction, single back
    /// branch, affine memory streams.
    ModuloSchedulable,
    /// A while-loop or loop with side exits: would be schedulable with
    /// speculation support the accelerator does not provide.
    NeedsSpeculation,
    /// A loop with a non-inlinable function call.
    Subroutine,
}

impl fmt::Display for LoopClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoopClass::ModuloSchedulable => "modulo-schedulable",
            LoopClass::NeedsSpeculation => "needs-speculation",
            LoopClass::Subroutine => "subroutine",
        })
    }
}

/// Classifies a full loop-body graph into the paper's Figure 2 categories.
///
/// A loop that separates cleanly is modulo schedulable; separation failures
/// map onto the paper's categories: calls → [`LoopClass::Subroutine`],
/// side exits / data-dependent control → [`LoopClass::NeedsSpeculation`].
/// Loops whose *memory* patterns are too complex are also binned as
/// needing speculation (they would require a load-store queue and
/// speculative reordering the accelerator lacks).
///
/// # Example
///
/// ```
/// use veal_ir::{classify_loop, DfgBuilder, LoopClass, Opcode};
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// b.store_stream(1, x);
/// assert_eq!(classify_loop(&b.finish()), LoopClass::ModuloSchedulable);
/// ```
#[must_use]
pub fn classify_loop(dfg: &Dfg) -> LoopClass {
    // A call anywhere in the body dominates the classification, matching the
    // paper's "Subroutine" bars.
    if dfg
        .schedulable_ops()
        .any(|id| dfg.node(id).opcode() == Some(Opcode::Call))
    {
        return LoopClass::Subroutine;
    }
    let mut meter = CostMeter::new();
    match separate(dfg, &mut meter) {
        Ok(_) => LoopClass::ModuloSchedulable,
        Err(SeparationError::CallInLoop) => LoopClass::Subroutine,
        Err(
            SeparationError::MultipleBranches
            | SeparationError::ComplexControl
            | SeparationError::ComplexAddress(_)
            | SeparationError::NoBackBranch,
        ) => LoopClass::NeedsSpeculation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    #[test]
    fn call_loop_is_subroutine() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        b.op(Opcode::Call, &[x]);
        assert_eq!(classify_loop(&b.finish()), LoopClass::Subroutine);
    }

    #[test]
    fn side_exit_needs_speculation() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let c1 = b.op(Opcode::CmpLt, &[x, x]);
        b.op(Opcode::BrCond, &[c1]);
        let c2 = b.op(Opcode::CmpEq, &[x, x]);
        b.op(Opcode::BrCond, &[c2]);
        assert_eq!(classify_loop(&b.finish()), LoopClass::NeedsSpeculation);
    }

    #[test]
    fn counted_loop_is_modulo_schedulable() {
        let mut b = DfgBuilder::new();
        let one = b.constant(1);
        let i = b.op(Opcode::Add, &[one]);
        b.loop_carried(i, i, 1);
        let n = b.live_in();
        let c = b.op(Opcode::CmpLt, &[i, n]);
        b.op(Opcode::BrCond, &[c]);
        assert_eq!(classify_loop(&b.finish()), LoopClass::ModuloSchedulable);
    }

    #[test]
    fn while_loop_needs_speculation() {
        let mut b = DfgBuilder::new();
        let four = b.constant(4);
        let a = b.op(Opcode::Add, &[four]);
        b.loop_carried(a, a, 1);
        let x = b.op(Opcode::Load, &[a]);
        let zero = b.constant(0);
        let c = b.op(Opcode::CmpNe, &[x, zero]);
        b.op(Opcode::BrCond, &[c]);
        assert_eq!(classify_loop(&b.finish()), LoopClass::NeedsSpeculation);
    }
}
