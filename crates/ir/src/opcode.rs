//! The baseline RISC-equivalent operation set.
//!
//! The VEAL paper expresses loops "using the baseline instruction set of a
//! general purpose processor" (§2.3). This module defines that set, the
//! mapping of each operation onto a function-unit class, and the properties
//! the CCA mapper needs (which ops the CCA's rows can execute).

use std::fmt;

/// Function-unit classes an operation may execute on.
///
/// These mirror the resource classes of the generalized loop accelerator of
/// paper §3: integer units (which also handle shifts and multiplies, the ops
/// the CCA cannot), double-precision floating-point units, the CCA itself,
/// the memory-stream FIFO ports, and the loop-control hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Integer ALU / shifter / multiplier unit.
    Int,
    /// Double-precision floating-point unit.
    Fp,
    /// The combinational compute accelerator (only `Opcode::Cca` pseudo-ops).
    Cca,
    /// Memory-stream FIFO access (loads/stores whose addresses are handled by
    /// address generators, paper §2.1).
    Mem,
    /// Loop-control hardware (induction update, compare, back-branch).
    Control,
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Int => "int",
            FuClass::Fp => "fp",
            FuClass::Cca => "cca",
            FuClass::Mem => "mem",
            FuClass::Control => "ctrl",
        };
        f.write_str(s)
    }
}

/// A baseline RISC-equivalent operation.
///
/// The set covers the integer, floating-point, memory and control operations
/// that MediaBench/SPECfp-style innermost loops use, plus the [`Opcode::Cca`]
/// pseudo-op that represents a subgraph collapsed onto the CCA (paper §4.1,
/// "CCA Mapping") and [`Opcode::Call`] which marks loops that need inlining.
///
/// # Example
///
/// ```
/// use veal_ir::{FuClass, Opcode};
/// assert_eq!(Opcode::Mul.fu_class(), FuClass::Int);
/// assert!(Opcode::Add.cca_supported());
/// assert!(!Opcode::Shl.cca_supported()); // CCA rows have no shifter
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    // --- Integer ops the CCA rows can execute -----------------------------
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Integer negation.
    Neg,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Compare equal, producing 0/1.
    CmpEq,
    /// Compare not-equal, producing 0/1.
    CmpNe,
    /// Compare signed less-than, producing 0/1.
    CmpLt,
    /// Compare signed less-or-equal, producing 0/1.
    CmpLe,
    /// Conditional select: `dst = src0 != 0 ? src1 : src2` (used by
    /// if-conversion; paper §2.1 "branches within the loop body are fully
    /// predicated").
    Select,
    /// Register copy.
    Mov,
    /// Load an immediate constant.
    LoadImm,

    // --- Integer ops that require the integer unit ------------------------
    /// Shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Integer multiply (3 cycles in the paper's Figure 5 example).
    Mul,
    /// Integer divide (long latency, unpipelined).
    Div,
    /// Integer remainder.
    Rem,

    // --- Double-precision floating point ----------------------------------
    /// FP addition.
    FAdd,
    /// FP subtraction.
    FSub,
    /// FP multiplication.
    FMul,
    /// FP division (long latency, unpipelined).
    FDiv,
    /// FP negation.
    FNeg,
    /// FP absolute value.
    FAbs,
    /// FP minimum.
    FMin,
    /// FP maximum.
    FMax,
    /// FP compare less-than, producing an integer 0/1.
    FCmpLt,
    /// Integer-to-FP conversion.
    ItoF,
    /// FP-to-integer conversion.
    FtoI,
    /// FP multiply-accumulate (`dst = src0 * src1 + src2`).
    FMac,
    /// FP square root (long latency, unpipelined).
    FSqrt,

    // --- Memory ------------------------------------------------------------
    /// Load through a memory stream / FIFO.
    Load,
    /// Store through a memory stream / FIFO.
    Store,

    // --- Control -----------------------------------------------------------
    /// Unconditional branch.
    Br,
    /// Conditional branch (loop back-branch or side exit).
    BrCond,
    /// Branch-and-link: a function call, also used as the procedural
    /// abstraction marker for statically identified CCA subgraphs
    /// (paper Figure 9(b)).
    Call,
    /// Return from a function.
    Ret,

    // --- Pseudo ------------------------------------------------------------
    /// A subgraph of CCA-supported integer ops collapsed into one CCA
    /// invocation (2-cycle latency in the paper's design).
    Cca,
}

/// All opcodes, in a stable order used by the binary encoder and by
/// exhaustive tests.
pub const ALL_OPCODES: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Not,
    Opcode::Neg,
    Opcode::Min,
    Opcode::Max,
    Opcode::Abs,
    Opcode::CmpEq,
    Opcode::CmpNe,
    Opcode::CmpLt,
    Opcode::CmpLe,
    Opcode::Select,
    Opcode::Mov,
    Opcode::LoadImm,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sra,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Rem,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::FNeg,
    Opcode::FAbs,
    Opcode::FMin,
    Opcode::FMax,
    Opcode::FCmpLt,
    Opcode::ItoF,
    Opcode::FtoI,
    Opcode::FMac,
    Opcode::FSqrt,
    Opcode::Load,
    Opcode::Store,
    Opcode::Br,
    Opcode::BrCond,
    Opcode::Call,
    Opcode::Ret,
    Opcode::Cca,
];

impl Opcode {
    /// Returns the function-unit class this operation executes on inside the
    /// loop accelerator.
    ///
    /// # Example
    ///
    /// ```
    /// use veal_ir::{FuClass, Opcode};
    /// assert_eq!(Opcode::FAdd.fu_class(), FuClass::Fp);
    /// assert_eq!(Opcode::Load.fu_class(), FuClass::Mem);
    /// ```
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Not | Neg | Min | Max | Abs | CmpEq | CmpNe | CmpLt
            | CmpLe | Select | Mov | LoadImm | Shl | Shr | Sra | Mul | Div | Rem => FuClass::Int,
            FAdd | FSub | FMul | FDiv | FNeg | FAbs | FMin | FMax | FCmpLt | ItoF | FtoI | FMac
            | FSqrt => FuClass::Fp,
            Load | Store => FuClass::Mem,
            Br | BrCond | Call | Ret => FuClass::Control,
            Cca => FuClass::Cca,
        }
    }

    /// Whether the CCA's combinational rows can execute this op.
    ///
    /// The paper's CCA executes "simple arithmetic (add, subtract,
    /// comparison) and bitwise logical ops" but no shifts, multiplies,
    /// floating point, or memory accesses (§3.1).
    #[must_use]
    pub fn cca_supported(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | Sub
                | And
                | Or
                | Xor
                | Not
                | Neg
                | Min
                | Max
                | Abs
                | CmpEq
                | CmpNe
                | CmpLt
                | CmpLe
                | Select
                | Mov
        )
    }

    /// Whether this op performs "simple arithmetic" in the CCA's terms
    /// (restricted to the CCA's odd rows), as opposed to purely bitwise
    /// logic (legal in any row).
    #[must_use]
    pub fn cca_arithmetic(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | Sub | Neg | Min | Max | Abs | CmpEq | CmpNe | CmpLt | CmpLe | Select
        )
    }

    /// Whether this op produces a floating-point value.
    #[must_use]
    pub fn is_fp(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            FAdd | FSub | FMul | FDiv | FNeg | FAbs | FMin | FMax | ItoF | FMac | FSqrt
        )
    }

    /// Whether this op accesses memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether this op transfers control.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Opcode::Br | Opcode::BrCond | Opcode::Call | Opcode::Ret
        )
    }

    /// Whether this op writes a result register.
    #[must_use]
    pub fn has_dest(self) -> bool {
        !matches!(
            self,
            Opcode::Store | Opcode::Br | Opcode::BrCond | Opcode::Ret
        )
    }

    /// Number of register source operands this op naturally takes.
    ///
    /// `Cca` is variadic (its source count is the collapsed subgraph's
    /// live-in count) and returns `usize::MAX` here.
    #[must_use]
    pub fn arity(self) -> usize {
        use Opcode::*;
        match self {
            LoadImm | Br => 0,
            Not | Neg | Abs | Mov | FNeg | FAbs | ItoF | FtoI | FSqrt | Load | BrCond | Ret
            | Call => 1,
            Add | Sub | And | Or | Xor | Min | Max | CmpEq | CmpNe | CmpLt | CmpLe | Shl | Shr
            | Sra | Mul | Div | Rem | FAdd | FSub | FMul | FDiv | FMin | FMax | FCmpLt | Store => 2,
            Select | FMac => 3,
            Cca => usize::MAX,
        }
    }

    /// Default execution latency in cycles.
    ///
    /// Matches the paper's Figure 5 assumptions: multiplies take 3 cycles,
    /// the CCA takes 2, ordinary integer ops take 1. Floating point is given
    /// the long latencies that made few FP units sufficient in the design
    /// space exploration (§3.1). Accelerator configurations may override
    /// these via `veal-accel`'s latency model.
    #[must_use]
    pub fn default_latency(self) -> u32 {
        use Opcode::*;
        match self {
            Mul => 3,
            Div | Rem => 12,
            FAdd | FSub | FCmpLt | FMin | FMax | ItoF | FtoI => 3,
            FMul | FMac => 4,
            FDiv => 16,
            FSqrt => 20,
            Load => 2,
            Cca => 2,
            _ => 1,
        }
    }

    /// Whether the unit executing this op is fully pipelined (can accept a
    /// new op every cycle). Divides and square roots are not.
    #[must_use]
    pub fn pipelined(self) -> bool {
        !matches!(
            self,
            Opcode::Div | Opcode::Rem | Opcode::FDiv | Opcode::FSqrt
        )
    }

    /// Stable numeric encoding used by the binary module format.
    #[must_use]
    pub fn encode(self) -> u8 {
        ALL_OPCODES
            .iter()
            .position(|&op| op == self)
            .expect("opcode missing from ALL_OPCODES") as u8
    }

    /// Decodes an opcode from its stable numeric encoding.
    ///
    /// Returns `None` for out-of-range codes.
    #[must_use]
    pub fn decode(code: u8) -> Option<Self> {
        ALL_OPCODES.get(code as usize).copied()
    }

    /// Short mnemonic used by the pretty printers.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Neg => "neg",
            Min => "min",
            Max => "max",
            Abs => "abs",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            Select => "sel",
            Mov => "mov",
            LoadImm => "ldi",
            Shl => "shl",
            Shr => "shr",
            Sra => "sra",
            Mul => "mpy",
            Div => "div",
            Rem => "rem",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FNeg => "fneg",
            FAbs => "fabs",
            FMin => "fmin",
            FMax => "fmax",
            FCmpLt => "fcmplt",
            ItoF => "itof",
            FtoI => "ftoi",
            FMac => "fmac",
            FSqrt => "fsqrt",
            Load => "ld",
            Store => "str",
            Br => "br",
            BrCond => "brc",
            Call => "brl",
            Ret => "ret",
            Cca => "cca",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for &op in ALL_OPCODES {
            assert_eq!(Opcode::decode(op.encode()), Some(op));
        }
    }

    #[test]
    fn decode_rejects_out_of_range() {
        assert_eq!(Opcode::decode(200), None);
        assert_eq!(Opcode::decode(ALL_OPCODES.len() as u8), None);
    }

    #[test]
    fn all_opcodes_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in ALL_OPCODES {
            assert!(seen.insert(op), "duplicate opcode {op}");
        }
    }

    #[test]
    fn cca_supported_implies_int_class() {
        for &op in ALL_OPCODES {
            if op.cca_supported() {
                assert_eq!(op.fu_class(), FuClass::Int, "{op} must be an int op");
            }
        }
    }

    #[test]
    fn cca_arithmetic_is_subset_of_supported() {
        for &op in ALL_OPCODES {
            if op.cca_arithmetic() {
                assert!(op.cca_supported(), "{op} arithmetic but unsupported");
            }
        }
    }

    #[test]
    fn shifts_and_multiplies_not_on_cca() {
        for op in [Opcode::Shl, Opcode::Shr, Opcode::Sra, Opcode::Mul] {
            assert!(!op.cca_supported(), "{op} must need the integer unit");
        }
    }

    #[test]
    fn figure5_latencies() {
        // Paper Figure 5: "multiplies take 3 cycles, the CCA takes 2, all
        // other ops take 1".
        assert_eq!(Opcode::Mul.default_latency(), 3);
        assert_eq!(Opcode::Cca.default_latency(), 2);
        assert_eq!(Opcode::Add.default_latency(), 1);
        assert_eq!(Opcode::Shl.default_latency(), 1);
    }

    #[test]
    fn stores_and_branches_have_no_dest() {
        assert!(!Opcode::Store.has_dest());
        assert!(!Opcode::BrCond.has_dest());
        assert!(Opcode::Load.has_dest());
        assert!(Opcode::Call.has_dest());
    }

    #[test]
    fn unpipelined_ops_are_long_latency() {
        for &op in ALL_OPCODES {
            if !op.pipelined() {
                assert!(op.default_latency() >= 8, "{op} unpipelined but short");
            }
        }
    }

    #[test]
    fn mnemonics_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for &op in ALL_OPCODES {
            assert!(!op.mnemonic().is_empty());
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op);
        }
    }

    #[test]
    fn fp_classification_matches_fu_class() {
        for &op in ALL_OPCODES {
            if op.is_fp() {
                assert_eq!(op.fu_class(), FuClass::Fp);
            }
        }
    }
}
