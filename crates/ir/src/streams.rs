//! Separating control and memory streams from a loop body.
//!
//! Paper §4.1: "data dependence information is used to identify the control
//! and address calculations. These calculations are then mapped onto the
//! special hardware supporting address generation and accelerator control."
//! In the Figure 5 example, op 13/14/15 (induction increment, compare,
//! back-branch) form the control pattern, and ops 1 and 11 (address
//! increments) feed the load/store streams. "If the control and address
//! patterns are more complicated than supported by the accelerator, then
//! translation terminates at this point."
//!
//! This module recognizes exactly those patterns on a full loop-body
//! [`Dfg`]: an *address generator* is an `Add`/`Sub` node with a distance-1
//! self edge and one constant/live-in stride input, consumed only by memory
//! address ports (and itself); the *control slice* is the back branch, its
//! compare, and the induction increment (which stays in the compute graph if
//! the computation also reads it).

use crate::dfg::{Dfg, NodeKind};
use crate::meter::{CostMeter, Phase};
use crate::opcode::Opcode;
use crate::types::OpId;
use std::fmt;

/// Direction of a memory stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamDir {
    /// Data streams from memory into the accelerator FIFOs.
    Load,
    /// Results stream from the accelerator back to memory.
    Store,
}

impl fmt::Display for StreamDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StreamDir::Load => "load",
            StreamDir::Store => "store",
        })
    }
}

/// One memory stream: "a unique reference pattern, i.e., a base address and
/// a linear function that modifies that address each loop iteration"
/// (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemStream {
    /// Direction.
    pub dir: StreamDir,
    /// Per-iteration address step, in bytes.
    pub stride: i64,
    /// The address-generator node that produced this stream (in the
    /// original, unseparated graph).
    pub addr_node: OpId,
}

/// Aggregate stream requirements of a loop, checked against the
/// accelerator's stream/address-generator budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamSummary {
    /// Number of load streams.
    pub loads: usize,
    /// Number of store streams.
    pub stores: usize,
}

/// Result of separating control and memory streams from a full loop body.
#[derive(Debug, Clone)]
pub struct SeparatedLoop {
    /// The compute view: control and address ops removed, every `Load`/
    /// `Store` annotated with its stream index.
    pub dfg: Dfg,
    /// The discovered memory streams, indexed by the stream ids stored in
    /// the `Load`/`Store` nodes.
    pub streams: Vec<MemStream>,
    /// Ids (in the original graph) of the removed control ops.
    pub control_ops: Vec<OpId>,
    /// Ids (in the original graph) of the removed address-generator ops.
    pub addr_ops: Vec<OpId>,
}

impl SeparatedLoop {
    /// Stream counts by direction.
    #[must_use]
    pub fn summary(&self) -> StreamSummary {
        let loads = self
            .streams
            .iter()
            .filter(|s| s.dir == StreamDir::Load)
            .count();
        StreamSummary {
            loads,
            stores: self.streams.len() - loads,
        }
    }
}

/// Why separation failed; such loops run on the baseline processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeparationError {
    /// The loop has no conditional back branch at all.
    NoBackBranch,
    /// More than one conditional branch: a side exit or while-loop shape
    /// that needs speculation support the accelerator does not provide
    /// (paper §2.2).
    MultipleBranches,
    /// The branch's condition is not a simple induction/bound compare.
    ComplexControl,
    /// A memory access whose address is not a recognized affine pattern.
    ComplexAddress(OpId),
    /// The loop contains a function call (must be inlined statically).
    CallInLoop,
}

impl fmt::Display for SeparationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeparationError::NoBackBranch => write!(f, "loop has no back branch"),
            SeparationError::MultipleBranches => {
                write!(f, "loop has side exits (needs speculation support)")
            }
            SeparationError::ComplexControl => write!(f, "control pattern too complex"),
            SeparationError::ComplexAddress(op) => {
                write!(f, "address pattern of {op} is not affine")
            }
            SeparationError::CallInLoop => write!(f, "loop contains a function call"),
        }
    }
}

impl std::error::Error for SeparationError {}

/// Whether `id` matches the address-generator pattern: an `Add`/`Sub` with a
/// distance-1 self edge, whose other data inputs are constants or live-ins.
fn is_addr_generator(dfg: &Dfg, id: OpId) -> bool {
    let Some(op) = dfg.node(id).opcode() else {
        return false;
    };
    if !matches!(op, Opcode::Add | Opcode::Sub) {
        return false;
    }
    let mut has_self = false;
    for e in dfg.pred_edges(id) {
        if e.src == id && e.distance == 1 {
            has_self = true;
        } else if e.src == id {
            return false; // self edge at other distance: not a simple stride
        } else {
            match &dfg.node(e.src).kind {
                NodeKind::Const(_) | NodeKind::LiveIn => {}
                _ => return false,
            }
        }
    }
    has_self
}

/// Extracts the constant stride of an address generator, defaulting to 1
/// when the step comes from a live-in.
fn stride_of(dfg: &Dfg, id: OpId) -> i64 {
    let mut stride = 1i64;
    for e in dfg.pred_edges(id) {
        if e.src == id {
            continue;
        }
        if let NodeKind::Const(v) = dfg.node(e.src).kind {
            stride = v;
        }
    }
    if dfg.node(id).opcode() == Some(Opcode::Sub) {
        stride = -stride;
    }
    stride
}

/// Separates control and memory streams from a full loop-body graph.
///
/// On success the returned [`SeparatedLoop::dfg`] contains only compute ops
/// and stream-annotated memory accesses — the form the CCA mapper and the
/// modulo scheduler consume. Pre-separated graphs (already free of control
/// ops, built with [`crate::DfgBuilder::load_stream`]) pass through with
/// their existing stream annotations.
///
/// # Errors
///
/// See [`SeparationError`]; any error means the loop executes on the
/// baseline processor instead.
///
/// # Example
///
/// ```
/// use veal_ir::{CostMeter, DfgBuilder, Opcode};
/// use veal_ir::streams::separate;
///
/// // for (i = 0; i < n; ++i) b[i] = a[i] * 3;
/// let mut b = DfgBuilder::new();
/// let step = b.constant(4);
/// let a_addr = b.op(Opcode::Add, &[step]);
/// b.loop_carried(a_addr, a_addr, 1);
/// let x = b.op(Opcode::Load, &[a_addr]);
/// let k = b.constant(3);
/// let y = b.op(Opcode::Mul, &[x, k]);
/// let b_addr = b.op(Opcode::Add, &[step]);
/// b.loop_carried(b_addr, b_addr, 1);
/// let st = b.op(Opcode::Store, &[y, b_addr]);
/// let _ = st;
/// // control: i += 1; cmp; branch
/// let one = b.constant(1);
/// let i = b.op(Opcode::Add, &[one]);
/// b.loop_carried(i, i, 1);
/// let n = b.live_in();
/// let c = b.op(Opcode::CmpLt, &[i, n]);
/// let _br = b.op(Opcode::BrCond, &[c]);
/// let dfg = b.finish();
///
/// let mut meter = CostMeter::new();
/// let sep = separate(&dfg, &mut meter).expect("simple loop separates");
/// assert_eq!(sep.summary().loads, 1);
/// assert_eq!(sep.summary().stores, 1);
/// assert_eq!(sep.dfg.schedulable_ops().count(), 3); // ld, mul, str
/// ```
pub fn separate(dfg: &Dfg, meter: &mut CostMeter) -> Result<SeparatedLoop, SeparationError> {
    if crate::tuning::data_oriented_enabled() {
        separate_fast(dfg, meter)
    } else {
        separate_reference(dfg, meter)
    }
}

/// The original separation pass, retained as the reference
/// implementation: three iterator walks over the node list plus a
/// clone-then-`remove_nodes` output construction. Outputs, errors, and
/// abstract charges are identical to [`separate_fast`].
fn separate_reference(dfg: &Dfg, meter: &mut CostMeter) -> Result<SeparatedLoop, SeparationError> {
    // --- 1. Find the loop's control slice. ---------------------------------
    let mut branches = Vec::new();
    for id in dfg.schedulable_ops() {
        meter.charge(Phase::StreamSep, 1);
        match dfg.node(id).opcode().expect("schedulable op") {
            Opcode::BrCond | Opcode::Br => branches.push(id),
            Opcode::Call => return Err(SeparationError::CallInLoop),
            _ => {}
        }
    }

    let mut out = dfg.clone();
    let mut control_ops = Vec::new();

    if branches.is_empty() {
        // Pre-separated graph: accept as-is if every memory op already has a
        // stream; otherwise the address pattern is unanalyzable.
        if let Some(bad) = dfg.schedulable_ops().find(|&id| {
            dfg.node(id).opcode().is_some_and(Opcode::is_mem) && dfg.node(id).stream.is_none()
        }) {
            return Err(SeparationError::ComplexAddress(bad));
        }
        let streams = collect_existing_streams(dfg);
        return Ok(SeparatedLoop {
            dfg: out,
            streams,
            control_ops: Vec::new(),
            addr_ops: Vec::new(),
        });
    }
    if branches.len() > 1 {
        return Err(SeparationError::MultipleBranches);
    }
    let branch = branches[0];
    if dfg.node(branch).opcode() != Some(Opcode::BrCond) {
        return Err(SeparationError::NoBackBranch);
    }

    // Follow the backward slice of the branch: BrCond <- Cmp <- induction.
    let mut cmp = None;
    for e in dfg.pred_edges(branch) {
        meter.charge(Phase::StreamSep, 1);
        let op = dfg.node(e.src).opcode();
        if matches!(
            op,
            Some(Opcode::CmpEq | Opcode::CmpNe | Opcode::CmpLt | Opcode::CmpLe)
        ) {
            if cmp.is_some() {
                return Err(SeparationError::ComplexControl);
            }
            cmp = Some(e.src);
        } else {
            return Err(SeparationError::ComplexControl);
        }
    }
    let cmp = cmp.ok_or(SeparationError::ComplexControl)?;

    // The compare reads the induction variable and a bound.
    let mut induction = None;
    for e in dfg.pred_edges(cmp) {
        meter.charge(Phase::StreamSep, 1);
        match &dfg.node(e.src).kind {
            NodeKind::Const(_) | NodeKind::LiveIn => {}
            NodeKind::Op(_) if is_addr_generator(dfg, e.src) => {
                if induction.replace(e.src).is_some() {
                    return Err(SeparationError::ComplexControl);
                }
            }
            NodeKind::Op(_) => return Err(SeparationError::ComplexControl),
        }
    }
    let induction = induction.ok_or(SeparationError::ComplexControl)?;

    control_ops.push(branch);
    control_ops.push(cmp);
    // The induction increment moves to the loop-control hardware only if the
    // computation does not read it.
    let induction_feeds_compute = dfg
        .succ_edges(induction)
        .any(|e| e.dst != induction && e.dst != cmp);
    if !induction_feeds_compute {
        control_ops.push(induction);
    }

    // --- 2. Identify memory streams. ---------------------------------------
    let mut streams = Vec::new();
    let mut addr_ops: Vec<OpId> = Vec::new();
    for id in dfg.schedulable_ops() {
        meter.charge(Phase::StreamSep, 1);
        let Some(op) = dfg.node(id).opcode() else {
            continue;
        };
        if !op.is_mem() {
            continue;
        }
        if dfg.node(id).stream.is_some() {
            // Already annotated (pre-separated kernels mixed into a full
            // graph): give the access its own entry in the unified table.
            let dir = if op == Opcode::Load {
                StreamDir::Load
            } else {
                StreamDir::Store
            };
            let idx = streams.len() as u16;
            streams.push(MemStream {
                dir,
                stride: 1,
                addr_node: id,
            });
            out.node_mut(id).stream = Some(idx);
            continue;
        }
        let addr = dfg
            .pred_edges(id)
            .map(|e| e.src)
            .find(|&p| is_addr_generator(dfg, p))
            .ok_or(SeparationError::ComplexAddress(id))?;
        meter.charge(Phase::StreamSep, 4);
        let dir = if op == Opcode::Load {
            StreamDir::Load
        } else {
            StreamDir::Store
        };
        let stream_idx = streams.len() as u16;
        streams.push(MemStream {
            dir,
            stride: stride_of(dfg, addr),
            addr_node: addr,
        });
        out.node_mut(id).stream = Some(stream_idx);
        if !addr_ops.contains(&addr) {
            addr_ops.push(addr);
        }
    }

    // Address generators must only feed memory ports, themselves, or the
    // control compare; otherwise they are also compute values and must stay.
    addr_ops.retain(|&a| {
        dfg.succ_edges(a).all(|e| {
            e.dst == a || e.dst == cmp || dfg.node(e.dst).opcode().is_some_and(Opcode::is_mem)
        })
    });

    // Also strip the address edges feeding memory ops so removed generators
    // don't leave dangling references, then remove the separated nodes.
    let mut removed: Vec<OpId> = control_ops.clone();
    removed.extend(addr_ops.iter().copied());
    out.remove_nodes(&removed);
    meter.charge(Phase::StreamSep, removed.len() as u64 * 2);

    Ok(SeparatedLoop {
        dfg: out,
        streams,
        control_ops,
        addr_ops,
    })
}

/// The data-oriented separation pass: classification runs over the flat
/// opcode array of the CSR [`crate::dfg::Adjacency`] (one byte per node
/// instead of a [`NodeKind`] dereference), and the output graph is
/// assembled in a single fused pass — annotate, tombstone, filter —
/// instead of cloning and then rebuilding. Charge sites mirror
/// [`separate_reference`] one for one, including on every error path, so
/// the per-phase breakdown is byte-identical.
fn separate_fast(dfg: &Dfg, meter: &mut CostMeter) -> Result<SeparatedLoop, SeparationError> {
    let adj = dfg.adjacency();
    let opcs = adj.opcodes();
    let edges = dfg.edges();
    let no_op = crate::dfg::Adjacency::NO_OP;
    let enc_br = Opcode::Br.encode();
    let enc_brcond = Opcode::BrCond.encode();
    let enc_call = Opcode::Call.encode();

    // --- 1. Find the loop's control slice. ---------------------------------
    let mut branch = None;
    let mut num_branches = 0usize;
    for (i, &o) in opcs.iter().enumerate() {
        if o == no_op {
            continue;
        }
        meter.charge(Phase::StreamSep, 1);
        if o == enc_brcond || o == enc_br {
            num_branches += 1;
            if branch.is_none() {
                branch = Some(OpId::new(i));
            }
        } else if o == enc_call {
            return Err(SeparationError::CallInLoop);
        }
    }

    let Some(branch) = branch else {
        // Pre-separated graph: accept as-is if every memory op already has a
        // stream; otherwise the address pattern is unanalyzable.
        for (i, &o) in opcs.iter().enumerate() {
            if o == no_op {
                continue;
            }
            let id = OpId::new(i);
            if Opcode::decode(o).is_some_and(Opcode::is_mem) && dfg.node(id).stream.is_none() {
                return Err(SeparationError::ComplexAddress(id));
            }
        }
        let streams = collect_existing_streams(dfg);
        return Ok(SeparatedLoop {
            dfg: dfg.clone(),
            streams,
            control_ops: Vec::new(),
            addr_ops: Vec::new(),
        });
    };
    if num_branches > 1 {
        return Err(SeparationError::MultipleBranches);
    }
    if opcs[branch.index()] != enc_brcond {
        return Err(SeparationError::NoBackBranch);
    }

    // Follow the backward slice of the branch: BrCond <- Cmp <- induction.
    let mut cmp = None;
    for &e in adj.pred_edge_ids(branch.index()) {
        meter.charge(Phase::StreamSep, 1);
        let src = edges[e as usize].src;
        let op = dfg.node(src).opcode();
        if matches!(
            op,
            Some(Opcode::CmpEq | Opcode::CmpNe | Opcode::CmpLt | Opcode::CmpLe)
        ) {
            if cmp.is_some() {
                return Err(SeparationError::ComplexControl);
            }
            cmp = Some(src);
        } else {
            return Err(SeparationError::ComplexControl);
        }
    }
    let cmp = cmp.ok_or(SeparationError::ComplexControl)?;

    // The compare reads the induction variable and a bound.
    let mut induction = None;
    for &e in adj.pred_edge_ids(cmp.index()) {
        meter.charge(Phase::StreamSep, 1);
        let src = edges[e as usize].src;
        match &dfg.node(src).kind {
            NodeKind::Const(_) | NodeKind::LiveIn => {}
            NodeKind::Op(_) if is_addr_generator(dfg, src) => {
                if induction.replace(src).is_some() {
                    return Err(SeparationError::ComplexControl);
                }
            }
            NodeKind::Op(_) => return Err(SeparationError::ComplexControl),
        }
    }
    let induction = induction.ok_or(SeparationError::ComplexControl)?;

    let mut control_ops = vec![branch, cmp];
    // The induction increment moves to the loop-control hardware only if the
    // computation does not read it.
    let induction_feeds_compute = adj
        .succ_edge_ids(induction.index())
        .iter()
        .any(|&e| edges[e as usize].dst != induction && edges[e as usize].dst != cmp);
    if !induction_feeds_compute {
        control_ops.push(induction);
    }

    // --- 2. Identify memory streams. ---------------------------------------
    // The output node table is cloned up front so stream annotations land
    // directly on it (the reference annotates its cloned graph the same
    // way); an error return simply drops the clone.
    let mut nodes = dfg.nodes.clone();
    let mut streams = Vec::new();
    let mut addr_ops: Vec<OpId> = Vec::new();
    for (i, &o) in opcs.iter().enumerate() {
        if o == no_op {
            continue;
        }
        meter.charge(Phase::StreamSep, 1);
        let op = Opcode::decode(o).expect("schedulable slot has a valid opcode");
        if !op.is_mem() {
            continue;
        }
        let id = OpId::new(i);
        let dir = if op == Opcode::Load {
            StreamDir::Load
        } else {
            StreamDir::Store
        };
        if nodes[i].stream.is_some() {
            // Already annotated (pre-separated kernels mixed into a full
            // graph): give the access its own entry in the unified table.
            let idx = streams.len() as u16;
            streams.push(MemStream {
                dir,
                stride: 1,
                addr_node: id,
            });
            nodes[i].stream = Some(idx);
            continue;
        }
        let addr = adj
            .pred_edge_ids(i)
            .iter()
            .map(|&e| edges[e as usize].src)
            .find(|&p| is_addr_generator(dfg, p))
            .ok_or(SeparationError::ComplexAddress(id))?;
        meter.charge(Phase::StreamSep, 4);
        let stream_idx = streams.len() as u16;
        streams.push(MemStream {
            dir,
            stride: stride_of(dfg, addr),
            addr_node: addr,
        });
        nodes[i].stream = Some(stream_idx);
        if !addr_ops.contains(&addr) {
            addr_ops.push(addr);
        }
    }

    // Address generators must only feed memory ports, themselves, or the
    // control compare; otherwise they are also compute values and must stay.
    addr_ops.retain(|&a| {
        adj.succ_edge_ids(a.index()).iter().all(|&e| {
            let dst = edges[e as usize].dst;
            dst == a || dst == cmp || Opcode::decode(opcs[dst.index()]).is_some_and(Opcode::is_mem)
        })
    });

    // Fused output construction: tombstone the separated nodes and
    // drop/canonicalize their edges in one pass — semantically the
    // clone + `node_mut` + `remove_nodes` sequence of the reference.
    let mut removed: Vec<OpId> = control_ops.clone();
    removed.extend(addr_ops.iter().copied());
    for &r in &removed {
        nodes[r.index()].dead = true;
    }
    let mut out_edges: Vec<crate::dfg::DfgEdge> = Vec::with_capacity(edges.len());
    out_edges.extend(
        edges
            .iter()
            .copied()
            .filter(|e| !nodes[e.src.index()].dead && !nodes[e.dst.index()].dead),
    );
    // A filtered subset of the canonically sorted input edge array is still
    // strictly sorted, so the re-sort is skipped exactly as in the
    // reference's `rebuild_edges_excluding_dead` (which this fused pass
    // mirrors); only a non-canonical input pays the sort.
    let key = |e: &crate::dfg::DfgEdge| (e.src, e.dst, e.distance, e.kind as u8);
    if !out_edges.is_sorted_by(|a, b| key(a) < key(b)) {
        Dfg::sort_dedup_edges(&mut out_edges);
    }
    let out = Dfg::from_parts(nodes, out_edges);
    meter.charge(Phase::StreamSep, removed.len() as u64 * 2);

    Ok(SeparatedLoop {
        dfg: out,
        streams,
        control_ops,
        addr_ops,
    })
}

fn collect_existing_streams(dfg: &Dfg) -> Vec<MemStream> {
    let mut max_idx: Option<u16> = None;
    for id in dfg.schedulable_ops() {
        if let (Some(op), Some(s)) = (dfg.node(id).opcode(), dfg.node(id).stream) {
            if op.is_mem() {
                max_idx = Some(max_idx.map_or(s, |m: u16| m.max(s)));
            }
        }
    }
    let Some(max_idx) = max_idx else {
        return Vec::new();
    };
    let mut streams = vec![
        MemStream {
            dir: StreamDir::Load,
            stride: 1,
            addr_node: OpId::new(0),
        };
        max_idx as usize + 1
    ];
    for id in dfg.schedulable_ops() {
        if let (Some(op), Some(s)) = (dfg.node(id).opcode(), dfg.node(id).stream) {
            if op.is_mem() {
                streams[s as usize] = MemStream {
                    dir: if op == Opcode::Load {
                        StreamDir::Load
                    } else {
                        StreamDir::Store
                    },
                    stride: 1,
                    addr_node: id,
                };
            }
        }
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    /// Builds the full form of `for i { b[i] = a[i] + k }`.
    fn full_loop() -> Dfg {
        let mut b = DfgBuilder::new();
        let four = b.constant(4);
        let a_addr = b.op(Opcode::Add, &[four]);
        b.loop_carried(a_addr, a_addr, 1);
        let x = b.op(Opcode::Load, &[a_addr]);
        let k = b.live_in();
        let sum = b.op(Opcode::Add, &[x, k]);
        let b_addr = b.op(Opcode::Add, &[four]);
        b.loop_carried(b_addr, b_addr, 1);
        b.op(Opcode::Store, &[sum, b_addr]);
        let one = b.constant(1);
        let i = b.op(Opcode::Add, &[one]);
        b.loop_carried(i, i, 1);
        let n = b.live_in();
        let c = b.op(Opcode::CmpLt, &[i, n]);
        b.op(Opcode::BrCond, &[c]);
        b.finish()
    }

    #[test]
    fn separates_simple_loop() {
        let dfg = full_loop();
        let mut m = CostMeter::new();
        let sep = separate(&dfg, &mut m).expect("separates");
        assert_eq!(
            sep.summary(),
            StreamSummary {
                loads: 1,
                stores: 1
            }
        );
        // Compute view: load, add, store.
        assert_eq!(sep.dfg.schedulable_ops().count(), 3);
        // Control: brc + cmp + induction (unused by compute).
        assert_eq!(sep.control_ops.len(), 3);
        assert_eq!(sep.addr_ops.len(), 2);
        assert!(m.breakdown().get(Phase::StreamSep) > 0);
    }

    #[test]
    fn stream_strides_extracted() {
        let dfg = full_loop();
        let mut m = CostMeter::new();
        let sep = separate(&dfg, &mut m).unwrap();
        assert!(sep.streams.iter().all(|s| s.stride == 4));
    }

    #[test]
    fn induction_feeding_compute_stays() {
        // b[i] = i * 2 — the induction value is a compute input.
        let mut b = DfgBuilder::new();
        let one = b.constant(1);
        let i = b.op(Opcode::Add, &[one]);
        b.loop_carried(i, i, 1);
        let two = b.constant(2);
        let v = b.op(Opcode::Mul, &[i, two]);
        let four = b.constant(4);
        let b_addr = b.op(Opcode::Add, &[four]);
        b.loop_carried(b_addr, b_addr, 1);
        b.op(Opcode::Store, &[v, b_addr]);
        let n = b.live_in();
        let c = b.op(Opcode::CmpLt, &[i, n]);
        b.op(Opcode::BrCond, &[c]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let sep = separate(&dfg, &mut m).expect("separates");
        // i stays: mul, store, i-add remain.
        assert_eq!(sep.dfg.schedulable_ops().count(), 3);
        assert_eq!(sep.control_ops.len(), 2); // brc + cmp only
    }

    #[test]
    fn side_exit_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let c1 = b.op(Opcode::CmpLt, &[x, x]);
        b.op(Opcode::BrCond, &[c1]);
        let c2 = b.op(Opcode::CmpEq, &[x, x]);
        b.op(Opcode::BrCond, &[c2]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        assert_eq!(
            separate(&dfg, &mut m).unwrap_err(),
            SeparationError::MultipleBranches
        );
    }

    #[test]
    fn call_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        b.op(Opcode::Call, &[x]);
        let one = b.constant(1);
        let i = b.op(Opcode::Add, &[one]);
        b.loop_carried(i, i, 1);
        let n = b.live_in();
        let c = b.op(Opcode::CmpLt, &[i, n]);
        b.op(Opcode::BrCond, &[c]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        assert_eq!(
            separate(&dfg, &mut m).unwrap_err(),
            SeparationError::CallInLoop
        );
    }

    #[test]
    fn non_affine_address_rejected() {
        // Address computed by a multiply: not a recognized stream pattern.
        let mut b = DfgBuilder::new();
        let one = b.constant(1);
        let i = b.op(Opcode::Add, &[one]);
        b.loop_carried(i, i, 1);
        let addr = b.op(Opcode::Mul, &[i, i]);
        let ld = b.op(Opcode::Load, &[addr]);
        b.mark_live_out(ld);
        let n = b.live_in();
        let c = b.op(Opcode::CmpLt, &[i, n]);
        b.op(Opcode::BrCond, &[c]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        assert!(matches!(
            separate(&dfg, &mut m).unwrap_err(),
            SeparationError::ComplexAddress(_)
        ));
    }

    #[test]
    fn preseparated_graph_passes_through() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        let sep = separate(&dfg, &mut m).expect("pre-separated ok");
        assert_eq!(
            sep.summary(),
            StreamSummary {
                loads: 1,
                stores: 1
            }
        );
        assert_eq!(sep.dfg.schedulable_ops().count(), 3);
    }

    #[test]
    fn while_loop_shape_rejected() {
        // Branch condition computed from loaded data, not an induction
        // pattern: a while-loop, needs speculation support.
        let mut b = DfgBuilder::new();
        let four = b.constant(4);
        let a = b.op(Opcode::Add, &[four]);
        b.loop_carried(a, a, 1);
        let x = b.op(Opcode::Load, &[a]);
        let zero = b.constant(0);
        let c = b.op(Opcode::CmpNe, &[x, zero]);
        b.op(Opcode::BrCond, &[c]);
        let dfg = b.finish();
        let mut m = CostMeter::new();
        assert_eq!(
            separate(&dfg, &mut m).unwrap_err(),
            SeparationError::ComplexControl
        );
    }
}
