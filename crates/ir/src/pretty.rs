//! Pretty printers for dataflow graphs.

use crate::dfg::{Dfg, NodeKind};
use std::fmt::Write as _;

/// Renders a [`Dfg`] as indented text, one node per line with its inputs,
/// in the style of the paper's Figure 9 listings.
///
/// # Example
///
/// ```
/// use veal_ir::{DfgBuilder, Opcode};
/// use veal_ir::pretty::render_dfg;
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// let y = b.op(Opcode::Add, &[x, x]);
/// let _ = y;
/// let text = render_dfg(&b.finish());
/// assert!(text.contains("ld"));
/// assert!(text.contains("add"));
/// ```
#[must_use]
pub fn render_dfg(dfg: &Dfg) -> String {
    let mut out = String::new();
    for id in dfg.live_ids() {
        let node = dfg.node(id);
        match &node.kind {
            NodeKind::LiveIn => {
                let _ = writeln!(out, "{id}: live-in");
            }
            NodeKind::Const(v) => {
                let _ = writeln!(out, "{id}: const #{v}");
            }
            NodeKind::Op(op) => {
                let _ = write!(out, "{id}: {op}");
                if let Some(s) = node.stream {
                    let _ = write!(out, " [stream {s}]");
                }
                let inputs: Vec<String> = dfg
                    .pred_edges(id)
                    .map(|e| {
                        if e.distance == 0 {
                            format!("{}", e.src)
                        } else {
                            format!("{}@{}", e.src, e.distance)
                        }
                    })
                    .collect();
                if !inputs.is_empty() {
                    let _ = write!(out, " <- {}", inputs.join(", "));
                }
                if !node.cca_members.is_empty() {
                    let members: Vec<String> =
                        node.cca_members.iter().map(|m| format!("{m}")).collect();
                    let _ = write!(out, " {{{}}}", members.join(" "));
                }
                if node.live_out {
                    let _ = write!(out, " (live-out)");
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::opcode::Opcode;

    #[test]
    fn renders_live_ins_consts_and_distances() {
        let mut b = DfgBuilder::new();
        let li = b.live_in();
        let k = b.constant(5);
        let s = b.op(Opcode::Add, &[li, k]);
        b.loop_carried(s, s, 2);
        b.mark_live_out(s);
        let text = render_dfg(&b.finish());
        assert!(text.contains("live-in"));
        assert!(text.contains("const #5"));
        assert!(text.contains("@2"));
        assert!(text.contains("(live-out)"));
    }

    #[test]
    fn renders_cca_members() {
        let mut b = DfgBuilder::new();
        let x = b.op(Opcode::And, &[]);
        let y = b.op(Opcode::Xor, &[x]);
        let mut dfg = b.finish();
        dfg.collapse(&[x, y]);
        let text = render_dfg(&dfg);
        assert!(text.contains("cca"));
        assert!(text.contains('{'));
    }

    #[test]
    fn renders_stream_annotation() {
        let mut b = DfgBuilder::new();
        b.load_stream(3);
        let text = render_dfg(&b.finish());
        assert!(text.contains("[stream 3]"));
    }
}
