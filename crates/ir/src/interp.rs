//! A functional interpreter for loop-body dataflow graphs.
//!
//! Executes the *semantics* of a loop (as opposed to its timing): each
//! iteration evaluates the compute nodes in dependence order, loop-carried
//! operands read values produced `distance` iterations earlier, loads pull
//! from per-stream input vectors and stores push to per-stream output
//! vectors. The transformation passes use this to prove semantic
//! equivalence (an inlined/re-rolled/unrolled loop must compute the same
//! values), and the kernel library uses it for golden-value tests.
//!
//! Control ops (`br`, `brc`, `cmp` feeding them) are evaluated like any
//! other value op but have no side effects; trip counts come from the
//! caller, exactly as the accelerator's loop-control hardware would drive
//! them.

use crate::dfg::{Dfg, NodeKind};
use crate::opcode::Opcode;
use crate::types::OpId;
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value: integers and doubles, coerced per consuming op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A double-precision float.
    Fp(f64),
}

impl Value {
    /// The value as an integer (floats truncate).
    #[must_use]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Fp(v) => v as i64,
        }
    }

    /// The value as a double (integers convert exactly when possible).
    #[must_use]
    pub fn as_fp(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Fp(v) => v,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Fp(v)
    }
}

/// Inputs to an interpretation run.
#[derive(Debug, Clone, Default)]
pub struct Inputs {
    /// Per-stream input data for `Load` ops (indexed by iteration; an
    /// exhausted or missing stream reads as `Int(0)`).
    pub streams: BTreeMap<u16, Vec<Value>>,
    /// Values of `LiveIn` nodes (missing live-ins read as `Int(0)`).
    pub live_ins: BTreeMap<OpId, Value>,
    /// Initial values for loop-carried reads that reach before iteration 0
    /// (missing entries read as `Int(0)`).
    pub initials: BTreeMap<OpId, Value>,
}

/// The observable results of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecResult {
    /// Values written per store stream, in iteration order.
    pub stores: BTreeMap<u16, Vec<Value>>,
    /// Final value of every live-out node.
    pub live_outs: BTreeMap<OpId, Value>,
}

/// Why interpretation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The distance-0 subgraph is cyclic.
    CyclicGraph,
    /// The graph contains an op with no executable semantics here
    /// (`Call` into an unknown callee, or a collapsed `Cca` whose member
    /// subgraph no longer exists).
    Opaque(OpId),
    /// An op that reads operands has none: the DFG is arity-malformed.
    /// Trailing operands still default to `Int(0)` (compare-against-zero
    /// and accumulate-from-zero idioms rely on it), but an op with *no*
    /// inputs at all can only be a broken graph, and silently evaluating
    /// it would produce a plausible-but-wrong result.
    Arity(OpId),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::CyclicGraph => write!(f, "distance-0 subgraph is cyclic"),
            InterpError::Opaque(op) => write!(f, "{op} has no interpretable semantics"),
            InterpError::Arity(op) => write!(f, "{op} reads operands but has none"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Whether `op` at node `v` reads its operand list at all. Ops that
/// ignore operands (immediates, control transfers, stream-engine loads
/// whose address comes from the hardware cursor) may legitimately have
/// none; anything else with an empty operand list is a malformed graph.
/// `Call`/`Cca` are excluded so [`InterpError::Opaque`] keeps precedence.
///
/// Public so executable backends (`veal-exec`) reject arity-malformed
/// graphs with exactly the same rule instead of a drifting copy.
#[must_use]
pub fn reads_operands(dfg: &Dfg, v: OpId, op: Opcode) -> bool {
    match op {
        Opcode::LoadImm
        | Opcode::Br
        | Opcode::BrCond
        | Opcode::Ret
        | Opcode::Call
        | Opcode::Cca => false,
        Opcode::Load => dfg.node(v).stream.is_none(),
        _ => true,
    }
}

/// Interprets `dfg` for `iterations` iterations.
///
/// # Errors
///
/// See [`InterpError`].
///
/// # Example
///
/// ```
/// use veal_ir::interp::{interpret, Inputs, Value};
/// use veal_ir::{DfgBuilder, Opcode};
///
/// # fn main() -> Result<(), veal_ir::interp::InterpError> {
/// // acc += x[i] * 2
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// let two = b.constant(2);
/// let p = b.op(Opcode::Mul, &[x, two]);
/// let acc = b.op(Opcode::Add, &[p]);
/// b.loop_carried(acc, acc, 1);
/// b.mark_live_out(acc);
/// let dfg = b.finish();
///
/// let mut inputs = Inputs::default();
/// inputs.streams.insert(0, vec![1i64.into(), 2i64.into(), 3i64.into()]);
/// let out = interpret(&dfg, 3, &inputs)?;
/// assert_eq!(out.live_outs[&acc], Value::Int(12)); // 2 + 4 + 6
/// # Ok(())
/// # }
/// ```
pub fn interpret(dfg: &Dfg, iterations: u64, inputs: &Inputs) -> Result<ExecResult, InterpError> {
    let order = dfg.topo_order().map_err(|_| InterpError::CyclicGraph)?;
    // History ring: value of each node for the last `max_distance`
    // iterations plus the current one.
    let max_dist = dfg.edges().iter().map(|e| e.distance).max().unwrap_or(0) as usize;
    let depth = max_dist + 1;
    let n = dfg.len();
    let mut history: Vec<Vec<Value>> = vec![vec![Value::Int(0); n]; depth];
    // Seed initial values into every pre-loop slot.
    for slot in &mut history {
        for (&id, &v) in &inputs.initials {
            slot[id.index()] = v;
        }
    }

    let mut result = ExecResult::default();
    for iter in 0..iterations {
        let cur = (iter as usize) % depth;
        // Start the row from pseudo-node values.
        for id in dfg.live_ids() {
            match &dfg.node(id).kind {
                NodeKind::Const(c) => history[cur][id.index()] = Value::Int(*c),
                NodeKind::LiveIn => {
                    history[cur][id.index()] =
                        inputs.live_ins.get(&id).copied().unwrap_or(Value::Int(0));
                }
                NodeKind::Op(_) => {}
            }
        }
        for &v in &order {
            let Some(op) = dfg.node(v).opcode() else {
                continue;
            };
            // Operand values, in edge-insertion order.
            let mut args: Vec<Value> = Vec::new();
            for e in dfg.pred_edges(v) {
                let d = e.distance as usize;
                if d > iter as usize {
                    args.push(
                        inputs
                            .initials
                            .get(&e.src)
                            .copied()
                            .unwrap_or(Value::Int(0)),
                    );
                } else {
                    let slot = (iter as usize - d) % depth;
                    args.push(history[slot][e.src.index()]);
                }
            }
            let value = eval(dfg, v, op, &args, iter, inputs, &mut result)?;
            history[cur][v.index()] = value;
        }
        for id in dfg.live_out_ids() {
            result.live_outs.insert(id, history[cur][id.index()]);
        }
    }
    Ok(result)
}

fn eval(
    dfg: &Dfg,
    v: OpId,
    op: Opcode,
    args: &[Value],
    iter: u64,
    inputs: &Inputs,
    result: &mut ExecResult,
) -> Result<Value, InterpError> {
    if args.is_empty() && reads_operands(dfg, v, op) {
        return Err(InterpError::Arity(v));
    }
    let a = |i: usize| args.get(i).copied().unwrap_or(Value::Int(0));
    let ai = |i: usize| a(i).as_int();
    let af = |i: usize| a(i).as_fp();
    // Shift amounts are masked like real hardware.
    let sh = |i: usize| (ai(i) & 63) as u32;
    use Opcode::*;
    Ok(match op {
        Add => Value::Int(ai(0).wrapping_add(ai(1))),
        Sub => Value::Int(ai(0).wrapping_sub(ai(1))),
        And => Value::Int(ai(0) & ai(1)),
        Or => Value::Int(ai(0) | ai(1)),
        Xor => Value::Int(ai(0) ^ ai(1)),
        Not => Value::Int(!ai(0)),
        Neg => Value::Int(ai(0).wrapping_neg()),
        Min => Value::Int(ai(0).min(ai(1))),
        Max => Value::Int(ai(0).max(ai(1))),
        Abs => Value::Int(ai(0).wrapping_abs()),
        CmpEq => Value::Int(i64::from(ai(0) == ai(1))),
        CmpNe => Value::Int(i64::from(ai(0) != ai(1))),
        CmpLt => Value::Int(i64::from(ai(0) < ai(1))),
        CmpLe => Value::Int(i64::from(ai(0) <= ai(1))),
        Select => {
            if ai(0) != 0 {
                a(1)
            } else {
                a(2)
            }
        }
        Mov => a(0),
        LoadImm => Value::Int(0),
        Shl => Value::Int(ai(0).wrapping_shl(sh(1))),
        Shr => Value::Int((ai(0) as u64).wrapping_shr(sh(1)) as i64),
        Sra => Value::Int(ai(0).wrapping_shr(sh(1))),
        Mul => Value::Int(ai(0).wrapping_mul(ai(1))),
        Div => Value::Int(ai(0).checked_div(ai(1)).unwrap_or(0)),
        Rem => Value::Int(ai(0).checked_rem(ai(1)).unwrap_or(0)),
        FAdd => Value::Fp(af(0) + af(1)),
        FSub => Value::Fp(af(0) - af(1)),
        FMul => Value::Fp(af(0) * af(1)),
        FDiv => Value::Fp(af(0) / af(1)),
        FNeg => Value::Fp(-af(0)),
        FAbs => Value::Fp(af(0).abs()),
        FMin => Value::Fp(af(0).min(af(1))),
        FMax => Value::Fp(af(0).max(af(1))),
        FCmpLt => Value::Int(i64::from(af(0) < af(1))),
        ItoF => Value::Fp(ai(0) as f64),
        FtoI => Value::Int(af(0) as i64),
        FMac => Value::Fp(af(0) * af(1) + af(2)),
        FSqrt => Value::Fp(af(0).abs().sqrt()),
        Load => {
            if let Some(s) = dfg.node(v).stream {
                inputs
                    .streams
                    .get(&s)
                    .and_then(|data| data.get(iter as usize))
                    .copied()
                    .unwrap_or(Value::Int(0))
            } else {
                // A full-form load addressed by a generator: model a simple
                // content function of the address *and* the load site, so
                // distinct arrays hold distinct data even when their
                // address sequences coincide.
                Value::Int(
                    ai(0)
                        .wrapping_mul(31)
                        .wrapping_add(7)
                        .wrapping_add(v.index() as i64 * 17),
                )
            }
        }
        Store => {
            let value = a(0);
            let s = dfg.node(v).stream.unwrap_or(u16::MAX);
            result.stores.entry(s).or_default().push(value);
            value
        }
        Br | BrCond | Ret => Value::Int(0),
        Call | Cca => return Err(InterpError::Opaque(v)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn streaming_copy() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        b.store_stream(1, x);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[4, 5, 6]));
        let out = interpret(&dfg, 3, &inputs).unwrap();
        assert_eq!(out.stores[&1], ints(&[4, 5, 6]));
    }

    #[test]
    fn accumulator_with_initial_value() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let acc = b.op(Opcode::Add, &[x]);
        b.loop_carried(acc, acc, 1);
        b.mark_live_out(acc);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[1, 2, 3, 4]));
        inputs.initials.insert(acc, Value::Int(100));
        let out = interpret(&dfg, 4, &inputs).unwrap();
        assert_eq!(out.live_outs[&acc], Value::Int(110));
    }

    #[test]
    fn distance_two_reads_two_back() {
        // y_i = x_i + y_{i-2}: two interleaved sums.
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x]);
        b.loop_carried(y, y, 2);
        b.store_stream(1, y);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[1, 10, 2, 20]));
        let out = interpret(&dfg, 4, &inputs).unwrap();
        assert_eq!(out.stores[&1], ints(&[1, 10, 3, 30]));
    }

    #[test]
    fn select_and_clamp_semantics() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let hi = b.constant(10);
        let c = b.op(Opcode::CmpLt, &[x, hi]);
        let sel = b.op(Opcode::Select, &[c, x, hi]);
        b.store_stream(1, sel);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[3, 30, 10]));
        let out = interpret(&dfg, 3, &inputs).unwrap();
        assert_eq!(out.stores[&1], ints(&[3, 10, 10]));
    }

    #[test]
    fn fp_dot_product_golden() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.load_stream(1);
        let p = b.op(Opcode::FMul, &[x, y]);
        let acc = b.op(Opcode::FAdd, &[p]);
        b.loop_carried(acc, acc, 1);
        b.mark_live_out(acc);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs
            .streams
            .insert(0, vec![1.0f64.into(), 2.0f64.into(), 3.0f64.into()]);
        inputs
            .streams
            .insert(1, vec![4.0f64.into(), 5.0f64.into(), 6.0f64.into()]);
        let out = interpret(&dfg, 3, &inputs).unwrap();
        assert_eq!(out.live_outs[&acc], Value::Fp(32.0));
    }

    #[test]
    fn live_in_values_flow() {
        let mut b = DfgBuilder::new();
        let k = b.live_in();
        let x = b.load_stream(0);
        let m = b.op(Opcode::Mul, &[x, k]);
        b.store_stream(1, m);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[1, 2]));
        inputs.live_ins.insert(k, Value::Int(7));
        let out = interpret(&dfg, 2, &inputs).unwrap();
        assert_eq!(out.stores[&1], ints(&[7, 14]));
    }

    #[test]
    fn call_is_opaque() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        let c = b.op(Opcode::Call, &[x]);
        b.mark_live_out(c);
        let dfg = b.finish();
        assert_eq!(
            interpret(&dfg, 1, &Inputs::default()).unwrap_err(),
            InterpError::Opaque(c)
        );
    }

    #[test]
    fn truncated_operands_are_an_arity_error() {
        // An `Add` with no inputs at all used to evaluate as 0 + 0 and
        // fold into a plausible checksum; now it is a typed error.
        let mut b = DfgBuilder::new();
        let a = b.op(Opcode::Add, &[]);
        b.mark_live_out(a);
        let dfg = b.finish();
        assert_eq!(
            interpret(&dfg, 1, &Inputs::default()).unwrap_err(),
            InterpError::Arity(a)
        );
    }

    #[test]
    fn trailing_operand_defaults_still_apply() {
        // One operand present, second defaults to zero: cmp-against-zero
        // idiom used by the kernel library must keep working.
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let c = b.op(Opcode::CmpLt, &[x]);
        b.mark_live_out(c);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[-3]));
        let out = interpret(&dfg, 1, &inputs).unwrap();
        assert_eq!(out.live_outs[&c], Value::Int(1));
    }

    #[test]
    fn operand_free_ops_are_not_arity_errors() {
        // Stream loads, immediates and control ops legitimately read no
        // operands; they must not trip the arity check.
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let imm = b.op(Opcode::LoadImm, &[]);
        let s = b.op(Opcode::Add, &[x, imm]);
        b.mark_live_out(s);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[41]));
        let out = interpret(&dfg, 1, &inputs).unwrap();
        assert_eq!(out.live_outs[&s], Value::Int(41));
    }

    #[test]
    fn division_by_zero_is_zero() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let z = b.constant(0);
        let d = b.op(Opcode::Div, &[x, z]);
        b.mark_live_out(d);
        let dfg = b.finish();
        let mut inputs = Inputs::default();
        inputs.streams.insert(0, ints(&[9]));
        let out = interpret(&dfg, 1, &inputs).unwrap();
        assert_eq!(out.live_outs[&d], Value::Int(0));
    }
}
