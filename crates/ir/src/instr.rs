//! Instructions of the baseline ISA.

use crate::opcode::Opcode;
use crate::types::{FuncId, VReg};
use std::fmt;

/// A source operand of an [`Instruction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// An immediate constant.
    Imm(i64),
}

impl Operand {
    /// Returns the register if this operand is one.
    #[must_use]
    pub fn reg(self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate if this operand is one.
    #[must_use]
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// One instruction of the baseline instruction set.
///
/// Instructions are the unit the CFG stores and the binary module format
/// encodes; the loop extractor turns the instructions of an innermost loop
/// into a [`crate::Dfg`].
///
/// # Example
///
/// ```
/// use veal_ir::{Instruction, Opcode, Operand, VReg};
///
/// let add = Instruction::new(Opcode::Add, Some(VReg::new(2)),
///                            vec![VReg::new(0).into(), VReg::new(1).into()]);
/// assert_eq!(add.to_string(), "add v2, v0, v1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation performed.
    pub opcode: Opcode,
    /// The destination register, for opcodes that produce one.
    pub dest: Option<VReg>,
    /// Source operands.
    pub srcs: Vec<Operand>,
    /// Callee, for `Call` instructions.
    pub callee: Option<FuncId>,
}

impl Instruction {
    /// Creates a new instruction.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is inconsistent with the opcode ([`Opcode::has_dest`]).
    #[must_use]
    pub fn new(opcode: Opcode, dest: Option<VReg>, srcs: Vec<Operand>) -> Self {
        assert_eq!(
            dest.is_some(),
            opcode.has_dest(),
            "dest presence must match opcode {opcode}"
        );
        Instruction {
            opcode,
            dest,
            srcs,
            callee: None,
        }
    }

    /// Creates a `Call` instruction to `callee` with the given arguments.
    #[must_use]
    pub fn call(dest: VReg, callee: FuncId, srcs: Vec<Operand>) -> Self {
        Instruction {
            opcode: Opcode::Call,
            dest: Some(dest),
            srcs,
            callee: Some(callee),
        }
    }

    /// Iterates over the register sources of this instruction.
    pub fn src_regs(&self) -> impl Iterator<Item = VReg> + '_ {
        self.srcs.iter().filter_map(|o| o.reg())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        if let Some(d) = self.dest {
            write!(f, " {d}")?;
            first = false;
        }
        for s in &self.srcs {
            if first {
                write!(f, " {s}")?;
                first = false;
            } else {
                write!(f, ", {s}")?;
            }
        }
        if let Some(c) = self.callee {
            write!(f, " @{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let r: Operand = VReg::new(4).into();
        assert_eq!(r.reg(), Some(VReg::new(4)));
        assert_eq!(r.imm(), None);
        let i: Operand = 42i64.into();
        assert_eq!(i.imm(), Some(42));
        assert_eq!(i.reg(), None);
    }

    #[test]
    fn display_store() {
        let st = Instruction::new(
            Opcode::Store,
            None,
            vec![VReg::new(1).into(), VReg::new(2).into()],
        );
        assert_eq!(st.to_string(), "str v1, v2");
    }

    #[test]
    fn display_imm() {
        let ldi = Instruction::new(Opcode::LoadImm, Some(VReg::new(0)), vec![7i64.into()]);
        assert_eq!(ldi.to_string(), "ldi v0, #7");
    }

    #[test]
    fn call_carries_callee() {
        let c = Instruction::call(VReg::new(3), FuncId::new(1), vec![VReg::new(0).into()]);
        assert_eq!(c.callee, Some(FuncId::new(1)));
        assert_eq!(c.to_string(), "brl v3, v0 @fn1");
    }

    #[test]
    #[should_panic(expected = "dest presence")]
    fn dest_mismatch_panics() {
        let _ = Instruction::new(Opcode::Add, None, vec![]);
    }

    #[test]
    fn src_regs_skips_immediates() {
        let i = Instruction::new(
            Opcode::Add,
            Some(VReg::new(5)),
            vec![VReg::new(1).into(), 9i64.into()],
        );
        let regs: Vec<_> = i.src_regs().collect();
        assert_eq!(regs, vec![VReg::new(1)]);
    }
}
