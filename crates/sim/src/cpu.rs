//! In-order CPU timing models.

use std::collections::HashMap;
use veal_ir::dfg::{Dfg, NodeKind};
use veal_ir::OpId;

/// An in-order processor model.
///
/// Loop bodies are timed with a dependence-accurate scoreboard: ops issue
/// in program order, up to `issue_width` per cycle, stalling until their
/// operands are ready; loop-carried operands come from the previous
/// iteration's completion times. Acyclic code is timed with an
/// ILP-bounded IPC model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Model name for reports.
    pub name: &'static str,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Cycles lost on each taken back branch.
    pub branch_penalty: u32,
    /// Die area in mm² (90 nm), for the Figure 10 comparison.
    pub area_mm2: f64,
    /// Fraction of peak issue attainable on acyclic code (front-end,
    /// cache, and branch losses).
    pub issue_efficiency: f64,
}

impl CpuModel {
    /// ARM 11-like single-issue baseline (paper §3.2: 4.34 mm²).
    #[must_use]
    pub fn arm11() -> Self {
        CpuModel {
            name: "ARM11 (1-issue)",
            issue_width: 1,
            branch_penalty: 1,
            area_mm2: veal_accel::ARM11_AREA_MM2,
            issue_efficiency: 0.85,
        }
    }

    /// Cortex A8-like dual-issue CPU (~10.2 mm²).
    #[must_use]
    pub fn cortex_a8() -> Self {
        CpuModel {
            name: "Cortex A8 (2-issue)",
            issue_width: 2,
            branch_penalty: 1,
            area_mm2: veal_accel::CORTEX_A8_AREA_MM2,
            issue_efficiency: 0.85,
        }
    }

    /// Hypothetical quad-issue CPU with larger L2 (~14.0 mm²).
    #[must_use]
    pub fn quad_issue() -> Self {
        CpuModel {
            name: "hypothetical 4-issue",
            issue_width: 4,
            branch_penalty: 1,
            area_mm2: veal_accel::QUAD_ISSUE_AREA_MM2,
            issue_efficiency: 0.85,
        }
    }

    /// Steady-state cycles per loop iteration for `dfg` (the full loop
    /// body, control and address ops included).
    ///
    /// Simulates several iterations through the scoreboard and returns the
    /// converged per-iteration delta.
    #[must_use]
    pub fn loop_cycles_per_iter(&self, dfg: &Dfg) -> f64 {
        const WARMUP: usize = 4;
        const MEASURE: usize = 4;
        let ops: Vec<OpId> = dfg.schedulable_ops().collect();
        if ops.is_empty() {
            return 1.0;
        }
        // Completion time of each node's most recent value.
        let mut done: HashMap<OpId, u64> = HashMap::new();
        for id in dfg.live_ids() {
            if matches!(dfg.node(id).kind, NodeKind::LiveIn | NodeKind::Const(_)) {
                done.insert(id, 0);
            }
        }
        let mut cycle: u64 = 0;
        let mut t_after_warmup = 0u64;
        for iter in 0..WARMUP + MEASURE {
            let mut issued_this_cycle = 0u32;
            let mut new_done: Vec<(OpId, u64)> = Vec::with_capacity(ops.len());
            for &v in &ops {
                // Operand readiness: values from this iteration for
                // distance-0 producers already issued this iteration
                // (their completion recorded in `done` via new_done flush
                // below — so flush per op), from previous iterations for
                // loop-carried ones.
                let ready = dfg
                    .pred_edges(v)
                    .map(|e| done.get(&e.src).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                // In-order issue: stall until operands ready.
                if ready > cycle {
                    cycle = ready;
                    issued_this_cycle = 0;
                }
                if issued_this_cycle >= self.issue_width {
                    cycle += 1;
                    issued_this_cycle = 0;
                }
                issued_this_cycle += 1;
                let lat = dfg
                    .node(v)
                    .opcode()
                    .map_or(1, veal_ir::Opcode::default_latency);
                new_done.push((v, cycle + u64::from(lat)));
                done.insert(v, cycle + u64::from(lat));
            }
            // Taken back branch.
            cycle += u64::from(self.branch_penalty) + 1;
            issued_this_cycle = 0;
            let _ = issued_this_cycle;
            let _ = new_done;
            if iter + 1 == WARMUP {
                t_after_warmup = cycle;
            }
        }
        (cycle - t_after_warmup) as f64 / MEASURE as f64
    }

    /// Total cycles to run a loop for `trips` iterations.
    #[must_use]
    pub fn loop_cycles(&self, dfg: &Dfg, trips: u64) -> u64 {
        (self.loop_cycles_per_iter(dfg) * trips as f64).ceil() as u64
    }

    /// Cycles for `instrs` dynamic instructions of acyclic code whose
    /// available ILP is `ilp`.
    #[must_use]
    pub fn acyclic_cycles(&self, instrs: u64, ilp: f64) -> u64 {
        let ipc = (f64::from(self.issue_width) * self.issue_efficiency).min(ilp.max(0.1));
        (instrs as f64 / ipc).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{DfgBuilder, Opcode};

    fn chain(n: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        let mut prev = b.op(Opcode::Add, &[]);
        for _ in 1..n {
            prev = b.op(Opcode::Add, &[prev]);
        }
        b.finish()
    }

    fn independent(n: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        for _ in 0..n {
            b.op(Opcode::Add, &[]);
        }
        b.finish()
    }

    #[test]
    fn single_issue_chain_costs_n_per_iter() {
        let cpu = CpuModel::arm11();
        let per = cpu.loop_cycles_per_iter(&chain(10));
        // 10 dependent 1-cycle adds + branch overhead ≈ 12.
        assert!((10.0..=14.0).contains(&per), "per-iter {per}");
    }

    #[test]
    fn wider_issue_helps_independent_ops() {
        let dfg = independent(8);
        let narrow = CpuModel::arm11().loop_cycles_per_iter(&dfg);
        let wide = CpuModel::quad_issue().loop_cycles_per_iter(&dfg);
        assert!(wide < narrow, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn wider_issue_cannot_help_chains() {
        let dfg = chain(12);
        let narrow = CpuModel::arm11().loop_cycles_per_iter(&dfg);
        let wide = CpuModel::quad_issue().loop_cycles_per_iter(&dfg);
        assert!(wide >= narrow - 2.0, "chains are latency bound");
    }

    #[test]
    fn multiply_latency_stalls_consumer() {
        let mut b = DfgBuilder::new();
        let m = b.op(Opcode::Mul, &[]);
        let a = b.op(Opcode::Add, &[m]);
        let _ = a;
        let dfg = b.finish();
        let per = CpuModel::arm11().loop_cycles_per_iter(&dfg);
        // mul issue + 3-cycle latency before the add + branch.
        assert!(per >= 5.0, "per {per}");
    }

    #[test]
    fn loop_carried_recurrence_bounds_per_iter() {
        // acc = acc * acc (3-cycle mul, self loop): >= 3 cycles/iter even
        // on a wide machine.
        let mut b = DfgBuilder::new();
        let m = b.op(Opcode::Mul, &[]);
        b.loop_carried(m, m, 1);
        let dfg = b.finish();
        let per = CpuModel::quad_issue().loop_cycles_per_iter(&dfg);
        assert!(per >= 3.0, "per {per}");
    }

    #[test]
    fn acyclic_ipc_bounded_by_ilp() {
        let narrow = CpuModel::arm11().acyclic_cycles(10_000, 1.3);
        let wide2 = CpuModel::cortex_a8().acyclic_cycles(10_000, 1.3);
        let wide4 = CpuModel::quad_issue().acyclic_cycles(10_000, 1.3);
        assert!(wide2 < narrow);
        // ILP 1.3 caps both wide machines at the same IPC.
        assert_eq!(wide2, wide4);
    }

    #[test]
    fn loop_cycles_scale_with_trips() {
        let dfg = chain(6);
        let cpu = CpuModel::arm11();
        let c100 = cpu.loop_cycles(&dfg, 100);
        let c200 = cpu.loop_cycles(&dfg, 200);
        assert!((c200 as f64 / c100 as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn models_have_expected_areas() {
        assert!(CpuModel::arm11().area_mm2 < CpuModel::cortex_a8().area_mm2);
        assert!(CpuModel::cortex_a8().area_mm2 < CpuModel::quad_issue().area_mm2);
    }
}
