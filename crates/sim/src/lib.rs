//! Timing simulation and the whole-application speedup engine.
//!
//! Reproduces the paper's measurement methodology: "All speedups reported
//! in this paper are for entire applications, not just loop bodies, and
//! include synchronization overheads from copying results to and from the
//! accelerator over a 10 cycle system bus" (§3).
//!
//! * [`cpu`] — in-order scalar/superscalar CPU timing models (ARM 11-like
//!   single issue, Cortex A8-like dual issue, hypothetical quad issue) with
//!   a dependence-accurate scoreboard for loop bodies;
//! * [`accel_time`] — accelerator invocation timing:
//!   `(SC + trips − 1)·II` plus bus synchronization overheads;
//! * [`speedup`] — runs an [`veal_workloads::Application`] through a VM
//!   session against a system configuration and reports whole-application
//!   cycles (the engine behind Figures 2, 6, 7, and 10);
//! * [`dse`] — the design-space-exploration harness (fraction of
//!   infinite-resource speedup, Figures 3 and 4);
//! * [`sweep`] — the parallel, memoized sweep engine the figure drivers
//!   run on ([`sweep::SweepContext`]);
//! * [`overhead`] — the translation-overhead sweep (Figure 6).

pub mod accel_time;
pub mod cpu;
pub mod dse;
pub mod overhead;
pub mod report;
pub mod speedup;
pub mod sweep;
pub mod trace;

pub use accel_time::{accel_invocation_cycles, invocation_overhead, BUS_LATENCY};
pub use cpu::CpuModel;
pub use dse::{fraction_of_infinite, fraction_of_infinite_with, DseResult};
pub use overhead::{overhead_sweep, OverheadPoint};
pub use report::{phase_table, speedup_table};
pub use speedup::{run_application, AccelSetup, AppRun, LoopRun};
pub use sweep::{dse_setup, SweepContext};
pub use trace::{FrameTrace, TraceLoop, TraceRun};
