//! Interleaved invocation traces.
//!
//! The whole-application engine ([`crate::run_application`]) invokes each
//! loop's calls back to back, which no realistic code cache ever misses.
//! Real media applications interleave: every *frame* walks the same set of
//! hot loops in order. [`FrameTrace`] models that pattern and is what the
//! code-cache ablation drives; the paper's 16-entry sizing (§4.3) is about
//! exactly this working-set behaviour.

use crate::accel_time::accel_invocation_cycles;
use crate::cpu::CpuModel;
use veal_ir::LoopBody;
use veal_vm::{StaticHints, VmSession};

/// One loop slot within a frame.
#[derive(Debug, Clone)]
pub struct TraceLoop {
    /// Stable identity (the VM's cache key).
    pub key: u64,
    /// The loop body.
    pub body: LoopBody,
    /// Iterations per invocation.
    pub trips: u64,
    /// Static hints carried by the binary, if any.
    pub hints: StaticHints,
}

/// Outcome of running a [`FrameTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRun {
    /// Total cycles (execution + translation).
    pub cycles: u64,
    /// Cycles spent translating (including retranslation after eviction).
    pub translation_cycles: u64,
    /// Translations performed.
    pub translations: u64,
}

/// A frame-structured invocation trace: `frames` passes over the loop
/// list, each invoking every loop once in order.
#[derive(Debug, Clone, Default)]
pub struct FrameTrace {
    /// The loops of one frame, in invocation order.
    pub loops: Vec<TraceLoop>,
    /// Number of frames to run.
    pub frames: u64,
}

impl FrameTrace {
    /// Runs the trace through `session`, timing CPU fallbacks on `cpu`.
    pub fn run(&self, session: &mut VmSession, cpu: &CpuModel) -> TraceRun {
        let mut cycles = 0u64;
        let mut translation = 0u64;
        for _ in 0..self.frames {
            for l in &self.loops {
                let inv = session.invoke(l.key, &l.body, &l.hints);
                translation += inv.translation_cycles;
                cycles += inv.translation_cycles;
                match inv.translated {
                    Some(t) => cycles += accel_invocation_cycles(&t, l.trips),
                    None => {
                        cycles += cpu.loop_cycles(&l.body.dfg, l.trips);
                    }
                }
            }
        }
        TraceRun {
            cycles,
            translation_cycles: translation,
            translations: session.stats().translations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_accel::AcceleratorConfig;
    use veal_cca::CcaSpec;
    use veal_ir::{DfgBuilder, Opcode};
    use veal_vm::{CodeCache, TranslationPolicy, Translator};

    fn trace(n_loops: usize, frames: u64) -> FrameTrace {
        let loops = (0..n_loops)
            .map(|i| {
                let mut b = DfgBuilder::new();
                let x = b.load_stream(0);
                let k = b.constant(i as i64 + 2);
                let y = b.op(Opcode::Mul, &[x, k]);
                let z = b.op(Opcode::Add, &[y, x]);
                b.store_stream(1, z);
                TraceLoop {
                    key: i as u64,
                    body: veal_ir::LoopBody::new(format!("t{i}"), b.finish()),
                    trips: 64,
                    hints: StaticHints::none(),
                }
            })
            .collect();
        FrameTrace { loops, frames }
    }

    fn session(entries: usize) -> VmSession {
        VmSession::with_cache(
            Translator::new(
                AcceleratorConfig::paper_design(),
                Some(CcaSpec::paper()),
                TranslationPolicy::fully_dynamic(),
            ),
            CodeCache::new(entries),
        )
    }

    #[test]
    fn big_cache_translates_each_loop_once() {
        let t = trace(8, 20);
        let mut s = session(16);
        let run = t.run(&mut s, &CpuModel::arm11());
        assert_eq!(run.translations, 8);
    }

    #[test]
    fn thrashing_cache_retranslates_every_frame() {
        let t = trace(8, 20);
        let mut s = session(4);
        let run = t.run(&mut s, &CpuModel::arm11());
        // LRU + round robin over 8 keys with 4 slots: every access misses.
        assert_eq!(run.translations, 8 * 20);
    }

    #[test]
    fn thrashing_costs_real_cycles() {
        let cpu = CpuModel::arm11();
        let t = trace(8, 20);
        let mut big = session(16);
        let mut small = session(4);
        let run_big = t.run(&mut big, &cpu);
        let run_small = t.run(&mut small, &cpu);
        assert!(run_small.translation_cycles > 10 * run_big.translation_cycles);
        assert!(run_small.cycles > run_big.cycles);
    }
}
