//! Parallel, memoized design-space sweeps.
//!
//! The figure drivers evaluate dozens of `(AcceleratorConfig, CcaSpec)`
//! points over the whole application suite, and every point re-translates
//! the same loop bodies. [`SweepContext`] packages the three optimizations
//! that make those sweeps fast without changing a single reported number:
//!
//! 1. **Parallelism** — applications (and, via [`SweepContext::eval_points`],
//!    whole sweep points) are evaluated on worker threads through
//!    [`veal_par::par_map_with`], which returns results in input order.
//!    Every reduction then runs sequentially over that ordered output, so
//!    floating-point sums associate exactly as in the serial code and the
//!    results are **bit-identical** to a single-threaded run.
//! 2. **Memoized translation** — a shared [`TranslationMemo`] keyed on
//!    `(loop content hash, translator fingerprint, hints fingerprint)`
//!    caches per-loop translation results across apps, points, and figure
//!    rows. Memo hits replay the original phase breakdown, so simulated
//!    costs are unchanged (see [`veal_vm::VmSession::with_memo`]).
//! 3. **A cached infinite-resource baseline** — Figures 3 and 4 divide
//!    every row by the same infinite-resource mean speedup; the context
//!    computes it once per suite.
//!
//! Thread count comes from [`veal_par::thread_count`] (override with the
//! `VEAL_THREADS` environment variable; `VEAL_THREADS=1` forces the serial
//! path).

use crate::cpu::CpuModel;
use crate::speedup::{run_application, AccelSetup, AppRun};
use std::sync::{Arc, OnceLock};
use veal_accel::{AcceleratorConfig, AcceleratorFamily};
use veal_cca::CcaSpec;
use veal_obs::{metrics, Event, Histogram, Trace};
use veal_vm::{MemoStats, TranslationMemo, TranslationPolicy};
use veal_workloads::Application;

fn point_wall_ns() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| metrics::histogram("sim.sweep.point_wall_ns"))
}

/// The translation-free setup the design-space exploration runs under
/// (paper §3.1: the DSE studies hardware, not translation).
#[must_use]
pub fn dse_setup(config: AcceleratorConfig, cca: Option<CcaSpec>) -> AccelSetup {
    AccelSetup {
        config,
        cca,
        // Fully dynamic mapping (so the CCA is actually exercised without
        // needing hint sections), with translation declared free.
        policy: TranslationPolicy::fully_dynamic(),
        translation_free: true,
        hints_in_binary: false,
        static_transforms: true,
        cache_entries: 1 << 20,
        memo: None,
        family: None,
        trace: Trace::null(),
    }
}

/// Shared state for one design-space sweep: the application suite, the CPU
/// baseline, a translation memo, the cached infinite-resource baseline,
/// and the worker-thread budget.
///
/// Cloning is cheap and shares the memo and the cached baseline, so a
/// context can be fanned out across point-level workers.
///
/// # Example
///
/// ```
/// use veal_sim::sweep::SweepContext;
/// use veal_sim::CpuModel;
/// use veal_accel::AcceleratorConfig;
/// use veal_cca::CcaSpec;
///
/// let apps = veal_workloads::application("rawcaudio").into_iter().collect();
/// let ctx = SweepContext::new(apps, CpuModel::arm11());
/// let f = ctx.fraction_of_infinite(&AcceleratorConfig::paper_design(), Some(&CcaSpec::paper()));
/// assert!(f > 0.0 && f <= 1.001);
/// ```
#[derive(Debug, Clone)]
pub struct SweepContext {
    apps: Arc<Vec<Application>>,
    cpu: CpuModel,
    memo: Option<Arc<TranslationMemo>>,
    family: Option<Arc<AcceleratorFamily>>,
    threads: usize,
    infinite: Arc<OnceLock<f64>>,
    trace: Trace,
}

impl SweepContext {
    /// Creates a context over `apps` with a fresh memo and the default
    /// thread budget ([`veal_par::thread_count`]).
    #[must_use]
    pub fn new(apps: Vec<Application>, cpu: CpuModel) -> Self {
        SweepContext {
            apps: Arc::new(apps),
            cpu,
            memo: Some(Arc::new(TranslationMemo::new())),
            family: None,
            threads: veal_par::thread_count(),
            infinite: Arc::new(OnceLock::new()),
            trace: Trace::null(),
        }
    }

    /// Attaches a trace handle. Every [`AccelSetup`] the context builds —
    /// and therefore every VM session under it — shares the handle's sink,
    /// and [`SweepContext::eval_points`] brackets each point with
    /// `point_start`/`point_end` events. Event order across points is only
    /// deterministic with a thread budget of one (`VEAL_THREADS=1`).
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Overrides the worker-thread budget (`1` forces the serial path).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Detaches the translation memo: every run re-translates from scratch.
    /// Used by benchmarks to measure the unmemoized baseline.
    #[must_use]
    pub fn without_memo(mut self) -> Self {
        self.memo = None;
        self
    }

    /// Switches the sweep to **symbolic family mode**: every point whose
    /// configuration lies inside `family` shares one family-keyed memo
    /// entry per loop and concretizes it locally, collapsing the memo-miss
    /// count from `points × loops` to `loops`. Points outside the family
    /// (and contexts without a memo) keep the point-keyed path. Reported
    /// numbers are bit-identical either way.
    #[must_use]
    pub fn with_family(mut self, family: Arc<AcceleratorFamily>) -> Self {
        self.family = Some(family);
        self
    }

    /// The application suite under study.
    #[must_use]
    pub fn apps(&self) -> &[Application] {
        &self.apps
    }

    /// The baseline CPU model.
    #[must_use]
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// The worker-thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Memo hit/miss counters (zeroes when the memo is detached).
    #[must_use]
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.as_ref().map(|m| m.stats()).unwrap_or_default()
    }

    /// Builds the DSE run setup for one sweep point, attaching the shared
    /// memo when present.
    #[must_use]
    pub fn setup(&self, config: &AcceleratorConfig, cca: Option<&CcaSpec>) -> AccelSetup {
        let mut setup = dse_setup(config.clone(), cca.cloned());
        setup.memo = self.memo.clone();
        setup.family = self.family.clone();
        setup.trace = self.trace.clone();
        setup
    }

    /// Runs every application under `setup`, in suite order, fanning the
    /// apps across the thread budget. The returned runs are in the same
    /// order as [`SweepContext::apps`] regardless of thread count.
    #[must_use]
    pub fn run_suite(&self, setup: &AccelSetup) -> Vec<AppRun> {
        veal_par::par_map_with(&self.apps, self.threads, |_, app| {
            run_application(app, &self.cpu, setup)
        })
    }

    /// Mean whole-application speedup of the suite under `config`
    /// (translation-free DSE setup). Parallel across apps; the mean is a
    /// sequential reduction over the ordered runs, so the value is
    /// bit-identical to the serial computation.
    #[must_use]
    pub fn mean_speedup(&self, config: &AcceleratorConfig, cca: Option<&CcaSpec>) -> f64 {
        let runs = self.run_suite(&self.setup(config, cca));
        let sum: f64 = runs.iter().map(AppRun::speedup).sum();
        sum / self.apps.len().max(1) as f64
    }

    /// Mean speedup of the infinite-resource accelerator (the Figures 3/4
    /// denominator), computed once per context and cached; clones made
    /// before the first call share the cached value.
    #[must_use]
    pub fn infinite_mean(&self) -> f64 {
        *self.infinite.get_or_init(|| {
            self.mean_speedup(&AcceleratorConfig::infinite(), Some(&CcaSpec::paper()))
        })
    }

    /// Fraction of the infinite-resource speedup attained by `config`
    /// (the y-axes of Figures 3 and 4).
    #[must_use]
    pub fn fraction_of_infinite(&self, config: &AcceleratorConfig, cca: Option<&CcaSpec>) -> f64 {
        self.mean_speedup(config, cca) / self.infinite_mean()
    }

    /// Evaluates many sweep points in parallel, returning results in point
    /// order.
    ///
    /// Each worker receives a clone of this context with a thread budget of
    /// one (the parallelism lives at the point level; nesting would
    /// oversubscribe the host), sharing the memo and the cached infinite
    /// baseline. The baseline cell is a [`OnceLock`], so even when the
    /// first caller races in from a worker, every point divides by the one
    /// cached value. Sweeps that divide by [`SweepContext::infinite_mean`]
    /// can force it before the fan-out to compute it with the full thread
    /// budget.
    #[must_use]
    pub fn eval_points<P, R, F>(&self, points: &[P], f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&SweepContext, &P) -> R + Sync,
    {
        let inner = self.clone().with_threads(1);
        veal_par::par_map_with(points, self.threads, |i, p| {
            inner.trace.emit(|| Event::PointStart { index: i as u64 });
            let _wall = inner.trace.timer(point_wall_ns());
            let r = f(&inner, p);
            inner.trace.emit(|| Event::PointEnd { index: i as u64 });
            r
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_workloads::application;

    fn small_suite() -> Vec<Application> {
        ["rawcaudio", "cjpeg", "171.swim"]
            .iter()
            .filter_map(|n| application(n))
            .collect()
    }

    fn configs() -> Vec<AcceleratorConfig> {
        (1..=4)
            .map(|n| AcceleratorConfig::builder().int_units(n).build())
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(1);
        let parallel = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(4);
        for config in configs() {
            let a = serial.fraction_of_infinite(&config, Some(&CcaSpec::paper()));
            let b = parallel.fraction_of_infinite(&config, Some(&CcaSpec::paper()));
            assert_eq!(a.to_bits(), b.to_bits(), "config {config}");
        }
    }

    #[test]
    fn memoized_matches_unmemoized_bit_for_bit() {
        let plain = SweepContext::new(small_suite(), CpuModel::arm11())
            .with_threads(1)
            .without_memo();
        let memoized = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(1);
        for config in configs() {
            let a = plain.mean_speedup(&config, Some(&CcaSpec::paper()));
            let b = memoized.mean_speedup(&config, Some(&CcaSpec::paper()));
            assert_eq!(a.to_bits(), b.to_bits(), "config {config}");
        }
        // Re-evaluating a config answers every translation from the memo
        // and still reproduces the exact value.
        let la = &configs()[0];
        let before = memoized.memo_stats();
        let again = memoized.mean_speedup(la, Some(&CcaSpec::paper()));
        let after = memoized.memo_stats();
        assert!(after.hits > before.hits, "{before:?} -> {after:?}");
        assert_eq!(after.entries, before.entries);
        assert_eq!(
            again.to_bits(),
            plain.mean_speedup(la, Some(&CcaSpec::paper())).to_bits()
        );
    }

    #[test]
    fn repeated_evaluation_hits_the_memo() {
        let ctx = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(1);
        let la = AcceleratorConfig::paper_design();
        let first = ctx.run_suite(&ctx.setup(&la, Some(&CcaSpec::paper())));
        let before = ctx.memo_stats();
        let second = ctx.run_suite(&ctx.setup(&la, Some(&CcaSpec::paper())));
        let after = ctx.memo_stats();
        // Second pass is answered entirely from the memo...
        assert!(after.hits > before.hits);
        assert_eq!(after.entries, before.entries);
        // ...and replays identical numbers.
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.system_cycles, b.system_cycles);
            assert_eq!(a.translation_cycles, b.translation_cycles);
            assert_eq!(a.translations, b.translations);
            assert_eq!(a.breakdown, b.breakdown);
        }
    }

    #[test]
    fn family_mode_matches_point_mode_and_collapses_misses() {
        let points = configs();
        let family = Arc::new(AcceleratorFamily::spanning(&points).unwrap());

        let point_ctx = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(1);
        let family_ctx = SweepContext::new(small_suite(), CpuModel::arm11())
            .with_threads(1)
            .with_family(Arc::clone(&family));
        for config in &points {
            let a = point_ctx.mean_speedup(config, Some(&CcaSpec::paper()));
            let b = family_ctx.mean_speedup(config, Some(&CcaSpec::paper()));
            assert_eq!(a.to_bits(), b.to_bits(), "config {config}");
        }
        let point_stats = point_ctx.memo_stats();
        let family_stats = family_ctx.memo_stats();
        // Point mode pays one miss per (loop, config); family mode pays one
        // per loop and answers the other configs with hits + concretize.
        assert!(
            family_stats.misses * 2 <= point_stats.misses,
            "family {family_stats:?} vs point {point_stats:?}"
        );
        assert!(family_stats.hits > point_stats.hits);

        // The per-app runs record the concretizations that replaced those
        // misses (first config's run concretizes on its own misses too).
        let runs = family_ctx.run_suite(&family_ctx.setup(&points[1], Some(&CcaSpec::paper())));
        assert!(runs.iter().map(|r| r.concretizations).sum::<u64>() > 0);
    }

    #[test]
    fn eval_points_preserves_order_and_values() {
        let ctx = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(4);
        let points = configs();
        let fanned = ctx.eval_points(&points, |c, config| {
            c.fraction_of_infinite(config, Some(&CcaSpec::paper()))
        });
        let serial = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(1);
        for (config, &got) in points.iter().zip(&fanned) {
            let want = serial.fraction_of_infinite(config, Some(&CcaSpec::paper()));
            assert_eq!(want.to_bits(), got.to_bits(), "config {config}");
        }
    }

    #[test]
    fn infinite_mean_cached_once() {
        let ctx = SweepContext::new(small_suite(), CpuModel::arm11()).with_threads(1);
        let a = ctx.infinite_mean();
        let miss_after_first = ctx.memo_stats().misses;
        let b = ctx.infinite_mean();
        assert_eq!(a.to_bits(), b.to_bits());
        // Cached: the second call does not touch the memo at all.
        assert_eq!(ctx.memo_stats().misses, miss_after_first);
    }
}
