//! Accelerator invocation timing.

use veal_vm::{TranslatedLoop, TranslationOutcome};

/// System-bus latency between the processor and the accelerator, in cycles
/// (paper §3: "a 10 cycle system bus", same as the L2 access time).
pub const BUS_LATENCY: u64 = 10;

/// Per-invocation synchronization overhead: starting the accelerator and
/// copying scalar live-ins in and live-outs back over the bus. The bulk
/// data streams directly through the address generators, so this cost is
/// per *invocation*, not per iteration ("this latency is largely
/// irrelevant given the streaming nature of the target applications",
/// §4.3).
#[must_use]
pub fn invocation_overhead(translated: &TranslatedLoop) -> u64 {
    let live_values = (translated.scheduled.registers.pinned_int
        + translated.scheduled.registers.pinned_fp) as u64;
    // Start command + live-in writes (pipelined over the bus) + completion
    // poll + live-out reads.
    2 * BUS_LATENCY + 2 * live_values
}

/// Total accelerator cycles for one invocation running `trips` iterations:
/// software-pipeline fill/drain and kernel time plus the bus overhead.
#[must_use]
pub fn accel_invocation_cycles(translated: &TranslatedLoop, trips: u64) -> u64 {
    translated.kernel_cycles(trips) + invocation_overhead(translated)
}

/// Total accelerator cycles for one invocation, or `None` when the
/// translation failed (RecMII past the II cap, unsupported loop shape,
/// …) — the caller then takes the CPU path. Total over any outcome, so
/// sweep code never has to unwrap a `result` it did not match on.
#[must_use]
pub fn try_invocation_cycles(outcome: &TranslationOutcome, trips: u64) -> Option<u64> {
    outcome
        .result
        .as_ref()
        .ok()
        .map(|t| accel_invocation_cycles(t, trips))
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_accel::AcceleratorConfig;
    use veal_ir::{CostMeter, DfgBuilder, LoopBody, Opcode};
    use veal_vm::{StaticHints, TranslationPolicy, Translator};

    fn translated() -> TranslatedLoop {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let k = b.live_in();
        let y = b.op(Opcode::Mul, &[x, k]);
        b.store_stream(1, y);
        let body = LoopBody::new("t", b.finish());
        let t = Translator::new(
            AcceleratorConfig::paper_design(),
            None,
            TranslationPolicy::fully_dynamic(),
        );
        let _ = CostMeter::new();
        // Test-only unwrap: this fixture loop is known to translate on the
        // paper design; library code goes through `try_invocation_cycles`.
        t.translate(&body, &StaticHints::none()).result.unwrap()
    }

    #[test]
    fn overhead_includes_bus_round_trip() {
        let t = translated();
        assert!(invocation_overhead(&t) >= 2 * BUS_LATENCY);
    }

    #[test]
    fn cycles_scale_with_trips_at_ii() {
        let t = translated();
        let c1000 = accel_invocation_cycles(&t, 1000);
        let c2000 = accel_invocation_cycles(&t, 2000);
        let per_iter = (c2000 - c1000) as f64 / 1000.0;
        assert!((per_iter - f64::from(t.scheduled.schedule.ii)).abs() < 1e-9);
    }

    #[test]
    fn short_trip_invocations_are_overhead_dominated() {
        let t = translated();
        let c4 = accel_invocation_cycles(&t, 4);
        assert!(c4 > t.kernel_cycles(4));
    }

    /// A tight multiply recurrence whose RecMII exceeds the configured II
    /// cap: scheduling must fail at every II the escalation tries.
    fn recmii_over_cap() -> (LoopBody, AcceleratorConfig) {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let mut v = b.op(Opcode::Mul, &[x, x]);
        let first = v;
        for _ in 0..4 {
            v = b.op(Opcode::Mul, &[v, v]);
        }
        b.loop_carried(v, first, 1);
        b.store_stream(1, v);
        let body = LoopBody::new("recmii-bomb", b.finish());
        let la = AcceleratorConfig::builder().max_ii(1).build();
        (body, la)
    }

    #[test]
    fn untranslatable_loop_yields_none_not_panic() {
        // Regression: the sweep path used to unwrap `translate().result`,
        // so a loop whose RecMII exceeds `max_ii` panicked the whole sweep
        // instead of falling back to the CPU.
        let (body, la) = recmii_over_cap();
        let t = Translator::new(la, None, TranslationPolicy::fully_dynamic());
        let outcome = t.translate(&body, &StaticHints::none());
        assert!(outcome.result.is_err(), "RecMII must exceed the II cap");
        assert_eq!(try_invocation_cycles(&outcome, 1000), None);
        // And the translatable fixture still reports a total.
        let ok = Translator::new(
            AcceleratorConfig::paper_design(),
            None,
            TranslationPolicy::fully_dynamic(),
        )
        .translate(
            &{
                let mut b = DfgBuilder::new();
                let x = b.load_stream(0);
                let y = b.op(Opcode::Add, &[x, x]);
                b.store_stream(1, y);
                LoopBody::new("ok", b.finish())
            },
            &StaticHints::none(),
        );
        assert!(try_invocation_cycles(&ok, 1000).is_some());
    }

    #[test]
    fn session_falls_back_to_cpu_on_recmii_overflow() {
        use veal_vm::VmSession;
        let (body, la) = recmii_over_cap();
        let mut s = VmSession::new(Translator::new(
            la,
            None,
            TranslationPolicy::fully_dynamic(),
        ));
        let inv = s.invoke(1, &body, &StaticHints::none());
        assert!(inv.translated.is_none(), "loop must run on the CPU");
        assert!(inv.translation_cycles > 0, "the failed attempt is charged");
        assert_eq!(s.stats().failures, 1);
    }
}
