//! Accelerator invocation timing.

use veal_vm::TranslatedLoop;

/// System-bus latency between the processor and the accelerator, in cycles
/// (paper §3: "a 10 cycle system bus", same as the L2 access time).
pub const BUS_LATENCY: u64 = 10;

/// Per-invocation synchronization overhead: starting the accelerator and
/// copying scalar live-ins in and live-outs back over the bus. The bulk
/// data streams directly through the address generators, so this cost is
/// per *invocation*, not per iteration ("this latency is largely
/// irrelevant given the streaming nature of the target applications",
/// §4.3).
#[must_use]
pub fn invocation_overhead(translated: &TranslatedLoop) -> u64 {
    let live_values = (translated.scheduled.registers.pinned_int
        + translated.scheduled.registers.pinned_fp) as u64;
    // Start command + live-in writes (pipelined over the bus) + completion
    // poll + live-out reads.
    2 * BUS_LATENCY + 2 * live_values
}

/// Total accelerator cycles for one invocation running `trips` iterations:
/// software-pipeline fill/drain and kernel time plus the bus overhead.
#[must_use]
pub fn accel_invocation_cycles(translated: &TranslatedLoop, trips: u64) -> u64 {
    translated.kernel_cycles(trips) + invocation_overhead(translated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_accel::AcceleratorConfig;
    use veal_ir::{CostMeter, DfgBuilder, LoopBody, Opcode};
    use veal_vm::{StaticHints, TranslationPolicy, Translator};

    fn translated() -> TranslatedLoop {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let k = b.live_in();
        let y = b.op(Opcode::Mul, &[x, k]);
        b.store_stream(1, y);
        let body = LoopBody::new("t", b.finish());
        let t = Translator::new(
            AcceleratorConfig::paper_design(),
            None,
            TranslationPolicy::fully_dynamic(),
        );
        let _ = CostMeter::new();
        t.translate(&body, &StaticHints::none()).result.unwrap()
    }

    #[test]
    fn overhead_includes_bus_round_trip() {
        let t = translated();
        assert!(invocation_overhead(&t) >= 2 * BUS_LATENCY);
    }

    #[test]
    fn cycles_scale_with_trips_at_ii() {
        let t = translated();
        let c1000 = accel_invocation_cycles(&t, 1000);
        let c2000 = accel_invocation_cycles(&t, 2000);
        let per_iter = (c2000 - c1000) as f64 / 1000.0;
        assert!((per_iter - f64::from(t.scheduled.schedule.ii)).abs() < 1e-9);
    }

    #[test]
    fn short_trip_invocations_are_overhead_dominated() {
        let t = translated();
        let c4 = accel_invocation_cycles(&t, 4);
        assert!(c4 > t.kernel_cycles(4));
    }
}
