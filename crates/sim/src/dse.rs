//! Design-space exploration support (paper §3.1, Figures 3 and 4).
//!
//! "The baseline architecture in our design space exploration assumes a
//! hypothetical LA with infinite resources … Architectural parameters were
//! then individually varied to determine what fraction of the
//! infinite-resources speedup was attainable using finite resources."
//!
//! These free functions are the stable single-point API; sweeps over many
//! points should use [`crate::sweep::SweepContext`], which adds
//! parallelism, translation memoization, and a cached infinite-resource
//! baseline while producing bit-identical numbers.

use crate::cpu::CpuModel;
use crate::sweep::SweepContext;
use veal_accel::AcceleratorConfig;
use veal_cca::CcaSpec;
use veal_workloads::Application;

/// One point of a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseResult {
    /// The swept parameter's value.
    pub x: usize,
    /// Mean fraction of infinite-resource speedup attained.
    pub fraction: f64,
}

/// Mean speedup of `apps` under `config` (translation-free).
#[must_use]
pub fn mean_speedup(
    apps: &[Application],
    cpu: &CpuModel,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
) -> f64 {
    SweepContext::new(apps.to_vec(), cpu.clone())
        .without_memo()
        .with_threads(1)
        .mean_speedup(config, cca)
}

/// Fraction of the infinite-resource speedup attained by `config`.
///
/// Both runs are translation-free; the fraction is the ratio of mean
/// speedups, matching the y-axes of Figures 3 and 4. Recomputes the
/// infinite baseline on every call — inside a sweep, use
/// [`fraction_of_infinite_with`] or a [`SweepContext`] so the baseline is
/// computed once.
#[must_use]
pub fn fraction_of_infinite(
    apps: &[Application],
    cpu: &CpuModel,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
) -> f64 {
    let infinite = mean_speedup(
        apps,
        cpu,
        &AcceleratorConfig::infinite(),
        Some(&CcaSpec::paper()),
    );
    fraction_of_infinite_with(apps, cpu, config, cca, infinite)
}

/// [`fraction_of_infinite`] against a precomputed infinite-resource mean
/// speedup (obtained from [`mean_speedup`] of
/// [`AcceleratorConfig::infinite`], or [`SweepContext::infinite_mean`]).
#[must_use]
pub fn fraction_of_infinite_with(
    apps: &[Application],
    cpu: &CpuModel,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
    infinite_mean: f64,
) -> f64 {
    mean_speedup(apps, cpu, config, cca) / infinite_mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_workloads::application;

    fn small_suite() -> Vec<Application> {
        ["rawcaudio", "cjpeg", "171.swim"]
            .iter()
            .filter_map(|n| application(n))
            .collect()
    }

    #[test]
    fn infinite_fraction_is_one() {
        let apps = small_suite();
        let cpu = CpuModel::arm11();
        let f = fraction_of_infinite(
            &apps,
            &cpu,
            &AcceleratorConfig::infinite(),
            Some(&CcaSpec::paper()),
        );
        assert!((f - 1.0).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn paper_design_attains_large_fraction() {
        let apps = small_suite();
        let cpu = CpuModel::arm11();
        let f = fraction_of_infinite(
            &apps,
            &cpu,
            &AcceleratorConfig::paper_design(),
            Some(&CcaSpec::paper()),
        );
        assert!(f > 0.5, "fraction {f}");
        assert!(f <= 1.001, "fraction {f}");
    }

    #[test]
    fn starving_resources_lowers_fraction() {
        let apps = small_suite();
        let cpu = CpuModel::arm11();
        let starved = AcceleratorConfig::builder()
            .int_units(1)
            .fp_units(1)
            .cca_units(0)
            .load_streams(2)
            .store_streams(1)
            .load_addr_gens(1)
            .store_addr_gens(1)
            .max_ii(4)
            .build();
        let f_starved = fraction_of_infinite(&apps, &cpu, &starved, None);
        let f_paper = fraction_of_infinite(
            &apps,
            &cpu,
            &AcceleratorConfig::paper_design(),
            Some(&CcaSpec::paper()),
        );
        assert!(f_starved < f_paper, "starved {f_starved} paper {f_paper}");
    }

    #[test]
    fn precomputed_baseline_matches_recomputed() {
        let apps = small_suite();
        let cpu = CpuModel::arm11();
        let infinite = mean_speedup(
            &apps,
            &cpu,
            &AcceleratorConfig::infinite(),
            Some(&CcaSpec::paper()),
        );
        let la = AcceleratorConfig::paper_design();
        let a = fraction_of_infinite(&apps, &cpu, &la, Some(&CcaSpec::paper()));
        let b = fraction_of_infinite_with(&apps, &cpu, &la, Some(&CcaSpec::paper()), infinite);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
