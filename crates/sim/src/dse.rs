//! Design-space exploration support (paper §3.1, Figures 3 and 4).
//!
//! "The baseline architecture in our design space exploration assumes a
//! hypothetical LA with infinite resources … Architectural parameters were
//! then individually varied to determine what fraction of the
//! infinite-resources speedup was attainable using finite resources."

use crate::cpu::CpuModel;
use crate::speedup::{run_application, AccelSetup};
use veal_accel::AcceleratorConfig;
use veal_cca::CcaSpec;
use veal_vm::TranslationPolicy;
use veal_workloads::Application;

/// One point of a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseResult {
    /// The swept parameter's value.
    pub x: usize,
    /// Mean fraction of infinite-resource speedup attained.
    pub fraction: f64,
}

fn dse_setup(config: AcceleratorConfig, cca: Option<CcaSpec>) -> AccelSetup {
    AccelSetup {
        config,
        cca,
        // Fully dynamic mapping (so the CCA is actually exercised without
        // needing hint sections), with translation declared free: the DSE
        // studies hardware, not translation.
        policy: TranslationPolicy::fully_dynamic(),
        translation_free: true,
        hints_in_binary: false,
        static_transforms: true,
        cache_entries: 1 << 20,
    }
}

/// Mean speedup of `apps` under `config` (translation-free).
#[must_use]
pub fn mean_speedup(
    apps: &[Application],
    cpu: &CpuModel,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
) -> f64 {
    let setup = dse_setup(config.clone(), cca.cloned());
    let sum: f64 = apps
        .iter()
        .map(|a| run_application(a, cpu, &setup).speedup())
        .sum();
    sum / apps.len().max(1) as f64
}

/// Fraction of the infinite-resource speedup attained by `config`.
///
/// Both runs are translation-free; the fraction is the ratio of mean
/// speedups, matching the y-axes of Figures 3 and 4.
#[must_use]
pub fn fraction_of_infinite(
    apps: &[Application],
    cpu: &CpuModel,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
) -> f64 {
    let infinite = mean_speedup(apps, cpu, &AcceleratorConfig::infinite(), Some(&CcaSpec::paper()));
    let finite = mean_speedup(apps, cpu, config, cca);
    finite / infinite
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_workloads::application;

    fn small_suite() -> Vec<Application> {
        ["rawcaudio", "cjpeg", "171.swim"]
            .iter()
            .filter_map(|n| application(n))
            .collect()
    }

    #[test]
    fn infinite_fraction_is_one() {
        let apps = small_suite();
        let cpu = CpuModel::arm11();
        let f = fraction_of_infinite(
            &apps,
            &cpu,
            &AcceleratorConfig::infinite(),
            Some(&CcaSpec::paper()),
        );
        assert!((f - 1.0).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn paper_design_attains_large_fraction() {
        let apps = small_suite();
        let cpu = CpuModel::arm11();
        let f = fraction_of_infinite(
            &apps,
            &cpu,
            &AcceleratorConfig::paper_design(),
            Some(&CcaSpec::paper()),
        );
        assert!(f > 0.5, "fraction {f}");
        assert!(f <= 1.001, "fraction {f}");
    }

    #[test]
    fn starving_resources_lowers_fraction() {
        let apps = small_suite();
        let cpu = CpuModel::arm11();
        let starved = AcceleratorConfig::builder()
            .int_units(1)
            .fp_units(1)
            .cca_units(0)
            .load_streams(2)
            .store_streams(1)
            .load_addr_gens(1)
            .store_addr_gens(1)
            .max_ii(4)
            .build();
        let f_starved = fraction_of_infinite(&apps, &cpu, &starved, None);
        let f_paper = fraction_of_infinite(
            &apps,
            &cpu,
            &AcceleratorConfig::paper_design(),
            Some(&CcaSpec::paper()),
        );
        assert!(
            f_starved < f_paper,
            "starved {f_starved} paper {f_paper}"
        );
    }
}
