//! Human-readable summaries of simulation results.

use crate::speedup::AppRun;
use std::fmt::Write as _;
use veal_ir::Phase;

/// Formats a set of application runs as an aligned speedup table with a
/// mean row, mirroring the layout of the paper's Figure 10.
///
/// # Example
///
/// ```
/// use veal_sim::{run_application, AccelSetup, CpuModel};
/// use veal_sim::report::speedup_table;
/// use veal_vm::TranslationPolicy;
///
/// // Doc-example unwrap: "rawcaudio" is a suite app that always exists.
/// let app = veal_workloads::application("rawcaudio").unwrap();
/// let run = run_application(&app, &CpuModel::arm11(),
///                           &AccelSetup::paper(TranslationPolicy::fully_dynamic()));
/// let table = speedup_table(&[run]);
/// assert!(table.contains("rawcaudio"));
/// assert!(table.contains("MEAN"));
/// ```
#[must_use]
pub fn speedup_table(runs: &[AppRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>12} {:>13} {:>9}",
        "app", "speedup", "translations", "trans cycles", "hit rate"
    );
    let mut sum = 0.0;
    for r in runs {
        sum += r.speedup();
        let _ = writeln!(
            out,
            "{:<14} {:>7.2}x {:>12} {:>13} {:>8.1}%",
            r.name,
            r.speedup(),
            r.translations,
            r.translation_cycles,
            100.0 * r.cache.hit_rate()
        );
    }
    if !runs.is_empty() {
        let _ = writeln!(out, "{:<14} {:>7.2}x", "MEAN", sum / runs.len() as f64);
    }
    out
}

/// Formats one run's translation-phase breakdown (a per-app slice of
/// Figure 8).
#[must_use]
pub fn phase_table(run: &AppRun) -> String {
    let mut out = String::new();
    let total = run.breakdown.total().max(1);
    let _ = writeln!(
        out,
        "{}: {} translations, {} abstract instructions",
        run.name, run.translations, total
    );
    for &p in veal_ir::meter::ALL_PHASES {
        let c = run.breakdown.get(p);
        if c == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<12} {:>10}  ({:>5.1}%)",
            p.name(),
            c,
            100.0 * run.breakdown.fraction(p)
        );
    }
    let _ = p_dominates(run, &mut out);
    out
}

fn p_dominates(run: &AppRun, out: &mut String) -> std::fmt::Result {
    if run.breakdown.fraction(Phase::Priority) > 0.5 {
        writeln!(
            out,
            "  (priority dominates — the phase VEAL encodes statically)"
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::{run_application, AccelSetup};
    use crate::CpuModel;
    use veal_vm::TranslationPolicy;

    fn one_run() -> AppRun {
        let app = veal_workloads::application("cjpeg").unwrap();
        run_application(
            &app,
            &CpuModel::arm11(),
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        )
    }

    #[test]
    fn speedup_table_has_mean_and_rows() {
        let run = one_run();
        let t = speedup_table(&[run.clone(), run]);
        assert_eq!(t.lines().count(), 4); // header + 2 rows + mean
        assert!(t.contains("cjpeg"));
    }

    #[test]
    fn empty_table_has_header_only() {
        let t = speedup_table(&[]);
        assert_eq!(t.lines().count(), 1);
    }

    #[test]
    fn phase_table_lists_dominant_phase() {
        let run = one_run();
        let t = phase_table(&run);
        assert!(t.contains("priority"));
        assert!(t.contains("cjpeg"));
    }
}
