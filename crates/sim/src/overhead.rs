//! The translation-overhead sweep (paper Figure 6).
//!
//! "This graph shows the average speedup across benchmarks when varying
//! the translation cost per loop … The various lines reflect how
//! frequently the translation penalty must be paid."

use crate::cpu::CpuModel;
use crate::speedup::{run_application, AccelSetup};
use veal_workloads::Application;

/// How often the translation penalty recurs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recurrence {
    /// Each loop is translated exactly once per run.
    Once,
    /// A fraction of invocations miss the code cache and re-translate.
    MissRate(f64),
}

impl Recurrence {
    /// Number of translations for a loop invoked `invocations` times.
    #[must_use]
    pub fn translations(&self, invocations: u64) -> f64 {
        match *self {
            Recurrence::Once => 1.0,
            Recurrence::MissRate(r) => 1.0 + r * invocations.saturating_sub(1) as f64,
        }
    }

    /// Label used in the Figure 6 table.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            Recurrence::Once => "translate once".to_owned(),
            Recurrence::MissRate(r) => format!("{:.1}% miss rate", r * 100.0),
        }
    }
}

/// One point of the Figure 6 surface.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadPoint {
    /// Hypothetical translation cost per loop, in cycles.
    pub penalty: u64,
    /// Recurrence model.
    pub recurrence: Recurrence,
    /// Mean whole-application speedup across the suite.
    pub mean_speedup: f64,
}

/// Sweeps hypothetical per-loop translation penalties × recurrence models
/// over `apps`, overlaying the cost on a translation-free accelerated run
/// (exactly how the paper built Figure 6: the execution time is measured
/// once, the translation penalty is an analytic overlay).
#[must_use]
pub fn overhead_sweep(
    apps: &[Application],
    cpu: &CpuModel,
    penalties: &[u64],
    recurrences: &[Recurrence],
) -> Vec<OverheadPoint> {
    // One translation-free run per app gives per-loop system cycles and
    // invocation counts. The runs are independent, so they fan out across
    // the worker threads; results come back in app order and the analytic
    // overlay below reduces sequentially (bit-identical to a serial run).
    let native = AccelSetup::native();
    let runs: Vec<_> = veal_par::par_map(apps, |_, a| run_application(a, cpu, &native));

    let mut out = Vec::new();
    for &rec in recurrences {
        for &penalty in penalties {
            let mut sum = 0.0;
            for run in &runs {
                let extra: f64 = run
                    .loops
                    .iter()
                    .filter(|l| l.accelerated)
                    .map(|l| rec.translations(l.invocations) * penalty as f64)
                    .sum();
                let total = run.system_cycles as f64 + extra;
                sum += run.cpu_only_cycles as f64 / total;
            }
            out.push(OverheadPoint {
                penalty,
                recurrence: rec,
                mean_speedup: sum / runs.len().max(1) as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_workloads::application;

    fn apps() -> Vec<Application> {
        ["rawcaudio", "mpeg2dec"]
            .iter()
            .filter_map(|n| application(n))
            .collect()
    }

    #[test]
    fn speedup_monotonically_decreases_with_penalty() {
        let apps = apps();
        let cpu = CpuModel::arm11();
        let pts = overhead_sweep(
            &apps,
            &cpu,
            &[0, 20_000, 100_000, 1_000_000],
            &[Recurrence::Once],
        );
        for w in pts.windows(2) {
            assert!(
                w[0].mean_speedup >= w[1].mean_speedup,
                "{:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn higher_miss_rate_hurts_more() {
        let apps = apps();
        let cpu = CpuModel::arm11();
        let pts = overhead_sweep(
            &apps,
            &cpu,
            &[100_000],
            &[
                Recurrence::Once,
                Recurrence::MissRate(0.01),
                Recurrence::MissRate(0.10),
            ],
        );
        assert!(pts[0].mean_speedup >= pts[1].mean_speedup);
        assert!(pts[1].mean_speedup >= pts[2].mean_speedup);
    }

    #[test]
    fn zero_penalty_matches_native() {
        let apps = apps();
        let cpu = CpuModel::arm11();
        let pts = overhead_sweep(&apps, &cpu, &[0], &[Recurrence::Once]);
        let native: f64 = apps
            .iter()
            .map(|a| run_application(a, &cpu, &AccelSetup::native()).speedup())
            .sum::<f64>()
            / apps.len() as f64;
        assert!((pts[0].mean_speedup - native).abs() < 1e-9);
    }

    #[test]
    fn labels_are_readable() {
        assert_eq!(Recurrence::Once.label(), "translate once");
        assert_eq!(Recurrence::MissRate(0.01).label(), "1.0% miss rate");
    }
}
