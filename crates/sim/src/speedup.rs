//! The whole-application speedup engine.

use crate::accel_time::accel_invocation_cycles;
use crate::cpu::CpuModel;
use std::collections::HashMap;
use std::sync::Arc;
use veal_accel::{AcceleratorConfig, AcceleratorFamily};
use veal_cca::CcaSpec;
use veal_ir::{classify_loop, LoopClass, PhaseBreakdown};
use veal_obs::Trace;
use veal_opt::{legalize, LegalizedLoop, TransformLimits};
use veal_vm::{
    compute_hints, CacheStats, CodeCache, StaticHints, TranslationMemo, TranslationPolicy,
    Translator, VmSession,
};
use veal_workloads::Application;

/// How the accelerator-equipped system is configured for a run.
#[derive(Debug, Clone)]
pub struct AccelSetup {
    /// The accelerator hardware.
    pub config: AcceleratorConfig,
    /// Its CCA, if any.
    pub cca: Option<CcaSpec>,
    /// The VM's static/dynamic translation policy.
    pub policy: TranslationPolicy,
    /// Pretend translation is free — the statically-compiled-binary
    /// upper bound (Figure 10's left bars).
    pub translation_free: bool,
    /// Whether binaries carry the Figure 9 hint sections.
    pub hints_in_binary: bool,
    /// Whether the static compiler ran the loop transformations
    /// (inlining/predication/re-roll/fission); `false` reproduces
    /// Figure 7's "regular binaries".
    pub static_transforms: bool,
    /// Code-cache capacity in translated loops (paper: 16).
    pub cache_entries: usize,
    /// Optional shared translation memo ([`veal_vm::TranslationMemo`]):
    /// sweeps attach one so repeated `(loop, config, policy)` combinations
    /// translate once per process. Simulated numbers are unchanged — memo
    /// hits replay the original cost (see [`veal_vm::VmSession::with_memo`]).
    pub memo: Option<Arc<TranslationMemo>>,
    /// Optional accelerator family for symbolic translation: when present
    /// and it contains [`AccelSetup::config`], sessions memoize one
    /// [`veal_vm::SymbolicTranslation`] per loop under the **family**
    /// fingerprint and concretize per point (see
    /// [`veal_vm::VmSession::with_family`]). Simulated numbers are
    /// unchanged — concretization replays the exact point outcome.
    pub family: Option<Arc<AcceleratorFamily>>,
    /// Observability handle passed to every [`VmSession`] this setup
    /// creates. Disabled by default; never alters simulated numbers.
    pub trace: Trace,
}

impl AccelSetup {
    /// The paper's evaluation system around a given policy: design-point
    /// LA + CCA, hints present when the policy consumes them, transforms
    /// on, 16-entry cache.
    #[must_use]
    pub fn paper(policy: TranslationPolicy) -> Self {
        AccelSetup {
            config: AcceleratorConfig::paper_design(),
            cca: Some(CcaSpec::paper()),
            hints_in_binary: policy.static_cca || policy.static_priority,
            policy,
            translation_free: false,
            static_transforms: true,
            cache_entries: 16,
            memo: None,
            family: None,
            trace: Trace::null(),
        }
    }

    /// Attaches a shared translation memo (see [`AccelSetup::memo`]).
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<TranslationMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Attaches an accelerator family (see [`AccelSetup::family`]).
    #[must_use]
    pub fn with_family(mut self, family: Arc<AcceleratorFamily>) -> Self {
        self.family = Some(family);
        self
    }

    /// Attaches a trace handle (see [`AccelSetup::trace`]).
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The statically-compiled upper bound (no translation penalty).
    #[must_use]
    pub fn native() -> Self {
        AccelSetup {
            translation_free: true,
            ..Self::paper(TranslationPolicy::static_hints())
        }
    }
}

/// Per-loop outcome of a run.
#[derive(Debug, Clone)]
pub struct LoopRun {
    /// Loop name (post-transform part name).
    pub name: String,
    /// Whether it ran on the accelerator.
    pub accelerated: bool,
    /// Number of invocations over the run.
    pub invocations: u64,
    /// Cycles this loop contributes on the baseline CPU (whole run).
    pub cpu_cycles: u64,
    /// Cycles it contributes in the accelerated system (execution only).
    pub system_cycles: u64,
    /// Translation cycles charged to it over the run.
    pub translation_cycles: u64,
    /// Classification of the (possibly transformed) body.
    pub class: LoopClass,
}

/// Whole-application result.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application name.
    pub name: String,
    /// Everything on the baseline CPU.
    pub cpu_only_cycles: u64,
    /// Accelerated system total (loops + acyclic + translation).
    pub system_cycles: u64,
    /// Total translation cycles paid.
    pub translation_cycles: u64,
    /// Number of translations performed.
    pub translations: u64,
    /// Aggregated per-phase translation breakdown (Figure 8's data).
    pub breakdown: PhaseBreakdown,
    /// Code-cache statistics.
    pub cache: CacheStats,
    /// Family-mode concretizations performed (0 outside family mode).
    pub concretizations: u64,
    /// Host work charged to those concretizations, in abstract units.
    pub concretize_units: u64,
    /// Per-loop details.
    pub loops: Vec<LoopRun>,
    /// Baseline cycles in acyclic code.
    pub acyclic_cycles: u64,
}

impl AppRun {
    /// Whole-application speedup over the baseline CPU.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.cpu_only_cycles as f64 / self.system_cycles.max(1) as f64
    }

    /// Baseline cycle split by loop class (plus acyclic), for Figure 2:
    /// `[modulo-schedulable, needs-speculation, subroutine, acyclic]`.
    #[must_use]
    pub fn class_cycles(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for l in &self.loops {
            match l.class {
                LoopClass::ModuloSchedulable => out[0] += l.cpu_cycles,
                LoopClass::NeedsSpeculation => out[1] += l.cpu_cycles,
                LoopClass::Subroutine => out[2] += l.cpu_cycles,
            }
        }
        out[3] = self.acyclic_cycles;
        out
    }
}

/// Runs `app` on `cpu` with the accelerator described by `setup`.
///
/// The baseline (`cpu_only_cycles`) is always the *raw* binary on `cpu`;
/// the accelerated system runs the transformed binary through a
/// [`VmSession`], charging translation on every code-cache miss.
#[must_use]
pub fn run_application(app: &Application, cpu: &CpuModel, setup: &AccelSetup) -> AppRun {
    let translator = Translator::new(setup.config.clone(), setup.cca.clone(), setup.policy);
    let mut session = VmSession::with_cache(translator, CodeCache::new(setup.cache_entries))
        .with_trace(setup.trace.clone());
    if let Some(memo) = &setup.memo {
        session = session.with_memo(Arc::clone(memo));
    }
    if let Some(family) = &setup.family {
        session = session.with_family(Arc::clone(family));
    }
    let limits = TransformLimits {
        max_load_streams: setup.config.load_streams,
        max_store_streams: setup.config.store_streams,
    };

    let mut loops = Vec::new();
    let mut cpu_only = 0u64;
    let mut system = 0u64;
    let mut translation_total = 0u64;
    let mut key_counter = 0u64;
    let mut hint_cache: HashMap<String, StaticHints> = HashMap::new();

    for app_loop in &app.loops {
        // Baseline: the raw loop on the CPU.
        let raw_iter = cpu.loop_cycles_per_iter(&app_loop.raw.body.dfg);
        let base_cycles =
            (raw_iter * app_loop.profile.trip_count as f64 * app_loop.profile.invocations as f64)
                .ceil() as u64;
        cpu_only += base_cycles;

        // Accelerated system: transformed (or raw) parts through the VM.
        let parts: Vec<LegalizedLoop> = if setup.static_transforms {
            legalize(&app_loop.raw, &limits)
        } else {
            vec![LegalizedLoop {
                body: app_loop.raw.body.clone(),
                trip_multiplier: 1,
            }]
        };
        let n_parts = parts.len();
        for part in parts {
            let trips = app_loop.profile.trip_count * u64::from(part.trip_multiplier);
            let invocations = app_loop.profile.invocations;
            let key = {
                key_counter += 1;
                key_counter
            };
            let hints = if setup.hints_in_binary {
                hint_cache
                    .entry(part.body.name.clone())
                    .or_insert_with(|| compute_hints(&part.body, &setup.config, setup.cca.as_ref()))
                    .clone()
            } else {
                StaticHints::none()
            };

            let class = classify_loop(&part.body.dfg);
            let part_cpu_iter = cpu.loop_cycles_per_iter(&part.body.dfg);
            let part_cpu_invocation = (part_cpu_iter * trips as f64).ceil() as u64;

            let mut part_system = 0u64;
            let mut part_translation = 0u64;
            let mut accelerated = false;
            for _ in 0..invocations {
                let inv = session.invoke(key, &part.body, &hints);
                if !setup.translation_free {
                    part_translation += inv.translation_cycles;
                }
                match inv.translated {
                    Some(t) => {
                        accelerated = true;
                        part_system += accel_invocation_cycles(&t, trips);
                    }
                    None => {
                        part_system += part_cpu_invocation;
                    }
                }
            }
            system += part_system + part_translation;
            translation_total += part_translation;
            loops.push(LoopRun {
                name: part.body.name.clone(),
                accelerated,
                invocations,
                // Attribute a proportional share of the raw baseline to
                // each part so per-class splits stay consistent.
                cpu_cycles: base_cycles / n_parts as u64,
                system_cycles: part_system,
                translation_cycles: part_translation,
                class,
            });
        }
    }

    let acyclic = cpu.acyclic_cycles(app.acyclic_instrs, app.acyclic_ilp);
    cpu_only += acyclic;
    system += acyclic;

    let stats = session.stats();
    let concretize = session.concretize_stats();
    AppRun {
        name: app.name.clone(),
        cpu_only_cycles: cpu_only,
        system_cycles: system,
        translation_cycles: translation_total,
        translations: stats.translations,
        breakdown: stats.breakdown,
        cache: session.cache_stats(),
        concretizations: concretize.concretizations,
        concretize_units: concretize.units,
        loops,
        acyclic_cycles: acyclic,
    }
}

/// Runs `app` purely on `cpu` (no accelerator) and returns total cycles —
/// used for the 2-issue / 4-issue bars of Figure 10.
#[must_use]
pub fn cpu_only_cycles(app: &Application, cpu: &CpuModel) -> u64 {
    let mut total = cpu.acyclic_cycles(app.acyclic_instrs, app.acyclic_ilp);
    for l in &app.loops {
        let per = cpu.loop_cycles_per_iter(&l.raw.body.dfg);
        total += (per * l.profile.trip_count as f64 * l.profile.invocations as f64).ceil() as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_workloads::application;

    fn arm() -> CpuModel {
        CpuModel::arm11()
    }

    #[test]
    fn native_speedup_exceeds_one_on_media_app() {
        let app = application("rawcaudio").unwrap();
        let run = run_application(&app, &arm(), &AccelSetup::native());
        assert!(run.speedup() > 1.3, "speedup {}", run.speedup());
        assert_eq!(run.translation_cycles, 0);
    }

    #[test]
    fn fully_dynamic_is_slower_than_native() {
        let app = application("mpeg2dec").unwrap();
        let native = run_application(&app, &arm(), &AccelSetup::native());
        let dynamic = run_application(
            &app,
            &arm(),
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        );
        assert!(dynamic.translation_cycles > 0);
        assert!(dynamic.speedup() < native.speedup());
    }

    #[test]
    fn static_hints_beat_fully_dynamic_on_translation_cost() {
        let app = application("pegwitenc").unwrap();
        let dynamic = run_application(
            &app,
            &arm(),
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        );
        let hinted = run_application(
            &app,
            &arm(),
            &AccelSetup::paper(TranslationPolicy::static_hints()),
        );
        assert!(
            hinted.translation_cycles * 2 < dynamic.translation_cycles,
            "hinted {} dynamic {}",
            hinted.translation_cycles,
            dynamic.translation_cycles
        );
        assert!(hinted.speedup() >= dynamic.speedup());
    }

    #[test]
    fn no_transforms_hurts() {
        let app = application("mpeg2dec").unwrap();
        let with = run_application(&app, &arm(), &AccelSetup::native());
        let without = run_application(
            &app,
            &arm(),
            &AccelSetup {
                static_transforms: false,
                ..AccelSetup::native()
            },
        );
        assert!(
            without.speedup() < with.speedup(),
            "without {} with {}",
            without.speedup(),
            with.speedup()
        );
    }

    #[test]
    fn cache_hit_rate_is_high_for_suite_apps() {
        let app = application("cjpeg").unwrap();
        let run = run_application(
            &app,
            &arm(),
            &AccelSetup::paper(TranslationPolicy::fully_dynamic()),
        );
        assert!(
            run.cache.hit_rate() > 0.95,
            "hit rate {}",
            run.cache.hit_rate()
        );
    }

    #[test]
    fn class_cycles_sum_to_baseline() {
        let app = application("gsmencode").unwrap();
        let run = run_application(&app, &arm(), &AccelSetup::native());
        let sum: u64 = run.class_cycles().iter().sum();
        // Part-level integer division may drop a few cycles per loop.
        let diff = run.cpu_only_cycles.abs_diff(sum);
        assert!(
            (diff as f64) < run.cpu_only_cycles as f64 * 0.01,
            "diff {diff} of {}",
            run.cpu_only_cycles
        );
    }

    #[test]
    fn wider_cpu_helps_but_less_than_accelerator() {
        let app = application("171.swim").unwrap();
        let base = cpu_only_cycles(&app, &arm());
        let a8 = cpu_only_cycles(&app, &CpuModel::cortex_a8());
        let native = run_application(&app, &arm(), &AccelSetup::native());
        let a8_speedup = base as f64 / a8 as f64;
        assert!(a8_speedup > 1.0);
        assert!(native.speedup() > a8_speedup);
    }
}
