//! Static hint generation (the compiler half of paper §4.2).
//!
//! The static compiler runs the *same* CCA identification and Swing
//! priority algorithms the VM would run, then records their results in the
//! binary (Figure 9). The work happens offline, so none of it is charged to
//! the dynamic translation meter.

use veal_accel::AcceleratorConfig;
use veal_cca::{identify_groups, CcaSpec};
use veal_ir::streams::separate;
use veal_ir::{CostMeter, LoopBody, OpId};
use veal_sched::{rec_mii, res_mii, swing_order};

/// Statically computed, binary-encoded translation hints for one loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticHints {
    /// Scheduling order (Figure 9c): op ids of the separated-and-collapsed
    /// graph in scheduling order.
    pub priority: Option<Vec<OpId>>,
    /// CCA subgraphs (Figure 9b): member ids in the separated graph.
    pub cca_groups: Option<Vec<Vec<OpId>>>,
}

impl StaticHints {
    /// No hints: a plain legacy binary.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any hint is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.priority.is_none() && self.cca_groups.is_none()
    }

    /// Stable fingerprint over the hint payload, part of the memoized
    /// translation key (the same loop translated with different hints can
    /// legitimately produce different schedules).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = veal_ir::rng::Fnv64::new();
        match &self.priority {
            None => h.write_u8(0),
            Some(order) => {
                h.write_u8(1);
                h.write_u64(order.len() as u64);
                for id in order {
                    h.write_u64(id.index() as u64);
                }
            }
        }
        match &self.cca_groups {
            None => h.write_u8(0),
            Some(groups) => {
                h.write_u8(1);
                h.write_u64(groups.len() as u64);
                for g in groups {
                    h.write_u64(g.len() as u64);
                    for id in g {
                        h.write_u64(id.index() as u64);
                    }
                }
            }
        }
        h.finish()
    }
}

/// Computes the hints a static compiler would embed for `body`, targeting
/// `config` (for latencies/resources) and optionally a CCA.
///
/// The priority order is computed on the graph *after* applying the CCA
/// groups, exactly as the VM will see it when both hints are honored; the
/// paper notes that recurrence criticality (what the order captures) is
/// architecture independent as long as execution latencies stay consistent
/// (footnote 3).
///
/// Returns [`StaticHints::none`] for loops the static compiler cannot
/// separate (they will never reach the scheduler anyway).
#[must_use]
pub fn compute_hints(
    body: &LoopBody,
    config: &AcceleratorConfig,
    cca: Option<&CcaSpec>,
) -> StaticHints {
    // Offline work: metered into a scratch meter that is dropped.
    let mut scratch = CostMeter::new();
    let Ok(sep) = separate(&body.dfg, &mut scratch) else {
        return StaticHints::none();
    };
    let summary = sep.summary();
    let mut dfg = sep.dfg;
    let groups = match cca {
        Some(spec) => {
            let gs = identify_groups(&dfg, spec, &mut scratch);
            let mut members: Vec<Vec<OpId>> = Vec::new();
            for g in gs {
                // Drop groups that became illegal once earlier groups
                // collapsed (mutually dependent groups cannot both execute
                // atomically) — the VM applies the same sequential check.
                let cond = dfg.condensation();
                if veal_cca::is_legal_group(&dfg, spec, &g.members, &cond) {
                    dfg.collapse(&g.members);
                    members.push(g.members);
                }
            }
            Some(members)
        }
        None => None,
    };
    let mii = res_mii(&dfg, config, summary, &mut scratch).max(rec_mii(
        &dfg,
        &config.latencies,
        &mut scratch,
    ));
    let order = swing_order(
        &dfg,
        &config.latencies,
        mii.min(config.max_ii.max(1)),
        &mut scratch,
    );
    StaticHints {
        priority: Some(order),
        cca_groups: groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::{DfgBuilder, Opcode};

    fn body() -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let a = b.op(Opcode::And, &[x, x]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let m = b.op(Opcode::Mul, &[s, x]);
        b.store_stream(1, m);
        LoopBody::new("h", b.finish())
    }

    #[test]
    fn hints_cover_collapsed_graph() {
        let la = AcceleratorConfig::paper_design();
        let h = compute_hints(&body(), &la, Some(&CcaSpec::paper()));
        let order = h.priority.expect("priority present");
        let groups = h.cca_groups.expect("groups present");
        assert_eq!(groups.len(), 1);
        // Order covers: load, store, mul, and the collapsed CCA node = 4.
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn hints_without_cca_cover_all_ops() {
        let la = AcceleratorConfig::paper_design();
        let h = compute_hints(&body(), &la, None);
        assert_eq!(h.cca_groups, None);
        assert_eq!(h.priority.unwrap().len(), 5);
    }

    #[test]
    fn unseparable_loop_gets_no_hints() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        b.op(Opcode::Call, &[x]);
        let body = LoopBody::new("bad", b.finish());
        let la = AcceleratorConfig::paper_design();
        assert!(compute_hints(&body, &la, None).is_empty());
    }

    #[test]
    fn hints_are_deterministic() {
        let la = AcceleratorConfig::paper_design();
        let a = compute_hints(&body(), &la, Some(&CcaSpec::paper()));
        let b = compute_hints(&body(), &la, Some(&CcaSpec::paper()));
        assert_eq!(a, b);
    }
}
