//! The binary module format.
//!
//! Applications are shipped as modules of loop bodies expressed in the
//! baseline instruction set. Two optional, *advisory* hint sections encode
//! the statically computed translation results the paper recommends
//! off-loading (§4.2):
//!
//! * **priority** — "placing a single number for each operation in a data
//!   section before the loop itself" (Figure 9c): here a permutation of the
//!   loop's op ids;
//! * **CCA groups** — procedural abstraction (Figure 9b): each statically
//!   identified subgraph recorded as a member list (standing in for the
//!   `Brl`-delimited mini-function).
//!
//! A decoder that ignores both sections still reconstructs exactly the same
//! loop — that is the binary-compatibility property the paper's abstraction
//! relies on, and it is tested below.
//!
//! Layout (little endian): magic `VEAL`, version u16, loop count u32, then
//! per loop: name, node table, edge table, flagged hint sections.

use std::fmt;
use veal_ir::dfg::{Dfg, EdgeKind, NodeKind};
use veal_ir::{LoopBody, OpId, Opcode};

/// Format magic bytes.
pub const MAGIC: &[u8; 4] = b"VEAL";
/// Format version.
pub const VERSION: u16 = 1;

/// One loop as it appears in a binary module.
#[derive(Debug, Clone)]
pub struct EncodedLoop {
    /// The loop body (full graph, control ops included).
    pub body: LoopBody,
    /// Static priority hint: op ids in scheduling order.
    pub priority_hint: Option<Vec<OpId>>,
    /// Static CCA subgraph hint: member lists.
    pub cca_hint: Option<Vec<Vec<OpId>>>,
}

/// A decoded binary module.
#[derive(Debug, Clone, Default)]
pub struct BinaryModule {
    /// The loops, in program order.
    pub loops: Vec<EncodedLoop>,
}

/// Errors produced by [`decode_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic bytes are wrong.
    BadMagic,
    /// The version is unsupported.
    BadVersion(u16),
    /// The byte stream ended early.
    Truncated,
    /// An opcode byte is invalid.
    BadOpcode(u8),
    /// A node kind tag is invalid.
    BadNodeKind(u8),
    /// An edge references a node out of range.
    BadEdge,
    /// A hint references a node out of range.
    BadHint,
    /// A string is not valid UTF-8.
    BadString,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a VEAL module (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported module version {v}"),
            DecodeError::Truncated => write!(f, "module truncated"),
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#x}"),
            DecodeError::BadNodeKind(b) => write!(f, "invalid node kind {b:#x}"),
            DecodeError::BadEdge => write!(f, "edge references missing node"),
            DecodeError::BadHint => write!(f, "hint references missing node"),
            DecodeError::BadString => write!(f, "invalid UTF-8 string"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
    }
}

const KIND_OP: u8 = 0;
const KIND_LIVE_IN: u8 = 1;
const KIND_CONST: u8 = 2;
const KIND_DEAD: u8 = 3;

/// Serializes a module.
///
/// # Example
///
/// ```
/// use veal_ir::{DfgBuilder, LoopBody, Opcode};
/// use veal_vm::{decode_module, encode_module, EncodedLoop};
///
/// # fn main() -> Result<(), veal_vm::DecodeError> {
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// b.store_stream(1, x);
/// let module = veal_vm::BinaryModule {
///     loops: vec![EncodedLoop {
///         body: LoopBody::new("copy", b.finish()),
///         priority_hint: None,
///         cca_hint: None,
///     }],
/// };
/// let bytes = encode_module(&module);
/// let back = decode_module(&bytes)?;
/// assert_eq!(back.loops.len(), 1);
/// assert_eq!(back.loops[0].body.name, "copy");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn encode_module(module: &BinaryModule) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.u32(module.loops.len() as u32);
    for l in &module.loops {
        w.str(&l.body.name);
        let dfg = &l.body.dfg;
        w.u32(dfg.len() as u32);
        for i in 0..dfg.len() {
            let id = OpId::new(i);
            let node = dfg.node(id);
            if node.is_dead() {
                w.u8(KIND_DEAD);
                continue;
            }
            match &node.kind {
                NodeKind::Op(op) => {
                    w.u8(KIND_OP);
                    w.u8(op.encode());
                    w.u16(node.stream.map_or(u16::MAX, |s| s));
                    w.u8(u8::from(node.live_out));
                }
                NodeKind::LiveIn => w.u8(KIND_LIVE_IN),
                NodeKind::Const(v) => {
                    w.u8(KIND_CONST);
                    w.i64(*v);
                }
            }
        }
        let edges: Vec<_> = dfg.edges().to_vec();
        w.u32(edges.len() as u32);
        for e in &edges {
            w.u32(e.src.index() as u32);
            w.u32(e.dst.index() as u32);
            w.u32(e.distance);
            w.u8(match e.kind {
                EdgeKind::Data => 0,
                EdgeKind::Mem => 1,
            });
        }
        // Hint sections, flagged.
        match &l.priority_hint {
            Some(order) => {
                w.u8(1);
                w.u32(order.len() as u32);
                for &op in order {
                    w.u32(op.index() as u32);
                }
            }
            None => w.u8(0),
        }
        match &l.cca_hint {
            Some(groups) => {
                w.u8(1);
                w.u32(groups.len() as u32);
                for g in groups {
                    w.u32(g.len() as u32);
                    for &m in g {
                        w.u32(m.index() as u32);
                    }
                }
            }
            None => w.u8(0),
        }
    }
    w.buf
}

/// Deserializes a module.
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed input.
pub fn decode_module(bytes: &[u8]) -> Result<BinaryModule, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let nloops = r.u32()? as usize;
    let mut loops = Vec::with_capacity(nloops.min(1 << 16));
    for _ in 0..nloops {
        let name = r.str()?;
        let nnodes = r.u32()? as usize;
        let mut dfg = Dfg::new();
        let mut dead_nodes = Vec::new();
        for _ in 0..nnodes {
            match r.u8()? {
                KIND_OP => {
                    let op = Opcode::decode(r.u8()?);
                    let stream = r.u16()?;
                    let live_out = r.u8()? != 0;
                    let op = op.ok_or(DecodeError::BadOpcode(0))?;
                    let id = dfg.add_node(NodeKind::Op(op));
                    if stream != u16::MAX {
                        dfg.node_mut(id).stream = Some(stream);
                    }
                    dfg.node_mut(id).live_out = live_out;
                }
                KIND_LIVE_IN => {
                    dfg.add_node(NodeKind::LiveIn);
                }
                KIND_CONST => {
                    let v = r.i64()?;
                    dfg.add_node(NodeKind::Const(v));
                }
                KIND_DEAD => {
                    // Preserve the slot so ids stay stable.
                    let id = dfg.add_node(NodeKind::LiveIn);
                    dead_nodes.push(id);
                }
                b => return Err(DecodeError::BadNodeKind(b)),
            }
        }
        let nedges = r.u32()? as usize;
        for _ in 0..nedges {
            let src = r.u32()? as usize;
            let dst = r.u32()? as usize;
            let distance = r.u32()?;
            let kind = match r.u8()? {
                0 => EdgeKind::Data,
                1 => EdgeKind::Mem,
                _ => return Err(DecodeError::BadEdge),
            };
            if src >= nnodes || dst >= nnodes {
                return Err(DecodeError::BadEdge);
            }
            dfg.add_edge(OpId::new(src), OpId::new(dst), distance, kind);
        }
        if !dead_nodes.is_empty() {
            dfg.remove_nodes(&dead_nodes);
        }
        let priority_hint = if r.u8()? == 1 {
            let n = r.u32()? as usize;
            let mut order = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let idx = r.u32()? as usize;
                order.push(OpId::new(idx));
            }
            Some(order)
        } else {
            None
        };
        let cca_hint = if r.u8()? == 1 {
            let g = r.u32()? as usize;
            let mut groups = Vec::with_capacity(g.min(1 << 16));
            for _ in 0..g {
                let n = r.u32()? as usize;
                let mut members = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let idx = r.u32()? as usize;
                    if idx >= nnodes {
                        return Err(DecodeError::BadHint);
                    }
                    members.push(OpId::new(idx));
                }
                groups.push(members);
            }
            Some(groups)
        } else {
            None
        };
        // A priority order may reference the pseudo-ops created by
        // collapsing the CCA hint groups: each group adds exactly one node
        // beyond the loop body (paper Figure 9's `Brl CCA` entries appear
        // in the priority data section too).
        let n_groups = cca_hint.as_ref().map_or(0, Vec::len);
        if let Some(order) = &priority_hint {
            if order.iter().any(|o| o.index() >= nnodes + n_groups) {
                return Err(DecodeError::BadHint);
            }
        }
        loops.push(EncodedLoop {
            body: LoopBody::new(name, dfg),
            priority_hint,
            cca_hint,
        });
    }
    Ok(BinaryModule { loops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_ir::DfgBuilder;

    fn sample_loop() -> LoopBody {
        let mut b = DfgBuilder::new();
        let k = b.constant(7);
        let li = b.live_in();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Mul, &[x, k]);
        let z = b.op(Opcode::Add, &[y, li]);
        b.loop_carried(z, z, 1);
        b.mark_live_out(z);
        b.store_stream(1, z);
        LoopBody::new("sample", b.finish())
    }

    fn round_trip(m: &BinaryModule) -> BinaryModule {
        decode_module(&encode_module(m)).expect("round trip")
    }

    #[test]
    fn round_trip_preserves_structure() {
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: None,
                cca_hint: None,
            }],
        };
        let back = round_trip(&m);
        let a = &m.loops[0].body.dfg;
        let b = &back.loops[0].body.dfg;
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges(), b.edges());
        for i in 0..a.len() {
            let id = OpId::new(i);
            assert_eq!(a.node(id).kind, b.node(id).kind);
            assert_eq!(a.node(id).stream, b.node(id).stream);
            assert_eq!(a.node(id).live_out, b.node(id).live_out);
        }
    }

    #[test]
    fn round_trip_preserves_hints() {
        let body = sample_loop();
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body,
                priority_hint: Some(vec![OpId::new(4), OpId::new(3)]),
                cca_hint: Some(vec![vec![OpId::new(3), OpId::new(4)]]),
            }],
        };
        let back = round_trip(&m);
        assert_eq!(
            back.loops[0].priority_hint,
            Some(vec![OpId::new(4), OpId::new(3)])
        );
        assert_eq!(back.loops[0].cca_hint.as_ref().unwrap()[0].len(), 2);
    }

    #[test]
    fn hints_are_optional_and_ignorable() {
        // The same loop with and without hints decodes to the same graph:
        // binary compatibility of the hint encoding.
        let with = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: Some(vec![OpId::new(0)]),
                cca_hint: None,
            }],
        };
        let without = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: None,
                cca_hint: None,
            }],
        };
        let a = round_trip(&with);
        let b = round_trip(&without);
        assert_eq!(a.loops[0].body.dfg.edges(), b.loops[0].body.dfg.edges());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode_module(b"NOPE"), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: None,
                cca_hint: None,
            }],
        };
        let bytes = encode_module(&m);
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_module(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_hint_index_rejected() {
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: Some(vec![OpId::new(9999)]),
                cca_hint: None,
            }],
        };
        let bytes = encode_module(&m);
        assert_eq!(decode_module(&bytes).unwrap_err(), DecodeError::BadHint);
    }

    #[test]
    fn empty_module_round_trips() {
        let back = round_trip(&BinaryModule::default());
        assert!(back.loops.is_empty());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_module(&BinaryModule::default());
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::BadVersion(0xFFFF)
        );
    }
}
