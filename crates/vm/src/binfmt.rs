//! The binary module format.
//!
//! Applications are shipped as modules of loop bodies expressed in the
//! baseline instruction set. Three optional, *advisory* hint sections
//! encode the statically computed translation results the paper recommends
//! off-loading (§4.2):
//!
//! * **priority** — "placing a single number for each operation in a data
//!   section before the loop itself" (Figure 9c): here a permutation of the
//!   loop's op ids;
//! * **CCA groups** — procedural abstraction (Figure 9b): each statically
//!   identified subgraph recorded as a member list (standing in for the
//!   `Brl`-delimited mini-function);
//! * **family** — the fingerprint of the accelerator family
//!   (`veal_accel::AcceleratorFamily::fingerprint`) the producer computed
//!   the hints under. A VM serving symbolic family-keyed translations
//!   compares it against its own family to decide whether the shipped
//!   payload keys straight into its memo; any mismatch simply means the
//!   hints are re-derived, never that the loop fails to load.
//!
//! A decoder that ignores both sections still reconstructs exactly the same
//! loop — that is the binary-compatibility property the paper's abstraction
//! relies on, and it is tested below.
//!
//! # Trust boundary
//!
//! The bytes of a module are **untrusted**: they may come from a stale
//! binary, a different compiler, a truncated download, or an adversary
//! (DESIGN.md §9). The decoder therefore
//!
//! * frames every per-loop payload as a *tagged section* carrying its own
//!   FNV-1a checksum, so silent corruption is caught before any structure
//!   is built;
//! * skips unknown section tags (forward compatibility: a newer compiler
//!   can ship new hint kinds without breaking old VMs);
//! * rejects duplicate known sections, out-of-range op references, and
//!   counts that cannot fit in their section;
//! * never panics on malformed input — every failure is a typed
//!   [`DecodeError`].
//!
//! Layout (little endian): magic `VEAL`, version u16, loop count u32, then
//! per loop: name, and a section stream `tag u8, len u32, checksum u64,
//! payload` terminated by [`SEC_END`]. Known tags are [`SEC_NODES`],
//! [`SEC_EDGES`], [`SEC_PRIORITY`], [`SEC_CCA`], [`SEC_FAMILY`].

use std::fmt;
use std::ops::Range;
use veal_ir::dfg::{Dfg, EdgeKind, NodeKind};
use veal_ir::rng::Fnv64;
use veal_ir::{LoopBody, OpId, Opcode};

/// Format magic bytes.
pub const MAGIC: &[u8; 4] = b"VEAL";
/// Format version (2: checksummed tagged sections).
pub const VERSION: u16 = 2;

/// Section-stream terminator.
pub const SEC_END: u8 = 0;
/// Node table section (required).
pub const SEC_NODES: u8 = 1;
/// Edge table section (required).
pub const SEC_EDGES: u8 = 2;
/// Priority hint section (Figure 9c, optional).
pub const SEC_PRIORITY: u8 = 3;
/// CCA subgraph hint section (Figure 9b, optional).
pub const SEC_CCA: u8 = 4;
/// Accelerator-family fingerprint hint section (optional): the family the
/// static hints were computed under, for symbolic-memo key matching.
pub const SEC_FAMILY: u8 = 5;

/// One loop as it appears in a binary module.
#[derive(Debug, Clone)]
pub struct EncodedLoop {
    /// The loop body (full graph, control ops included).
    pub body: LoopBody,
    /// Static priority hint: op ids in scheduling order.
    pub priority_hint: Option<Vec<OpId>>,
    /// Static CCA subgraph hint: member lists.
    pub cca_hint: Option<Vec<Vec<OpId>>>,
    /// Advisory fingerprint of the accelerator family
    /// (`veal_accel::AcceleratorFamily::fingerprint`) the producer computed
    /// the hints under; `None` for point-tuned or legacy modules. Not part
    /// of [`StaticHints`](crate::hints::StaticHints), so its presence or
    /// absence never changes a hint fingerprint or a translation.
    pub family_hint: Option<u64>,
}

impl EncodedLoop {
    /// The loop's hint sections as the translator consumes them.
    #[must_use]
    pub fn hints(&self) -> crate::hints::StaticHints {
        crate::hints::StaticHints {
            priority: self.priority_hint.clone(),
            cca_groups: self.cca_hint.clone(),
        }
    }

    /// Whether the shipped family hint matches `family` — i.e. whether
    /// this loop's static hints were produced under exactly the family a
    /// symbolic-memo consumer is about to key them with. `false` when no
    /// hint was shipped.
    #[must_use]
    pub fn family_hint_matches(&self, family: &veal_accel::AcceleratorFamily) -> bool {
        self.family_hint == Some(family.fingerprint())
    }
}

/// A decoded binary module.
#[derive(Debug, Clone, Default)]
pub struct BinaryModule {
    /// The loops, in program order.
    pub loops: Vec<EncodedLoop>,
}

/// Errors produced by [`decode_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic bytes are wrong.
    BadMagic,
    /// The version is unsupported.
    BadVersion(u16),
    /// The byte stream ended early.
    Truncated,
    /// An opcode byte is invalid.
    BadOpcode(u8),
    /// A node kind tag is invalid.
    BadNodeKind(u8),
    /// An edge references a node out of range, or its kind byte is invalid.
    BadEdge,
    /// A hint references a node out of range.
    BadHint,
    /// A string is not valid UTF-8.
    BadString,
    /// A section's payload does not match its stored checksum.
    SectionChecksum(u8),
    /// A known section tag appears twice in one loop.
    DuplicateSection(u8),
    /// A required section (nodes or edges) is absent.
    MissingSection(u8),
    /// A section payload has bytes left over after its declared contents.
    SectionTrailing(u8),
    /// A declared element count cannot fit in its section.
    BadCount,
    /// The decoded graph violates structural invariants (distance-0 cycle,
    /// edge to a dead node, …) — bytes that frame correctly can still
    /// describe a program that cannot execute, and the scheduler must
    /// never see one.
    BadGraph(veal_ir::VerifyError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a VEAL module (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported module version {v}"),
            DecodeError::Truncated => write!(f, "module truncated"),
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#x}"),
            DecodeError::BadNodeKind(b) => write!(f, "invalid node kind {b:#x}"),
            DecodeError::BadEdge => write!(f, "edge references missing node"),
            DecodeError::BadHint => write!(f, "hint references missing node"),
            DecodeError::BadString => write!(f, "invalid UTF-8 string"),
            DecodeError::SectionChecksum(t) => {
                write!(f, "section {t:#x} payload fails its checksum")
            }
            DecodeError::DuplicateSection(t) => write!(f, "duplicate section {t:#x}"),
            DecodeError::MissingSection(t) => write!(f, "required section {t:#x} missing"),
            DecodeError::SectionTrailing(t) => {
                write!(f, "section {t:#x} has trailing bytes")
            }
            DecodeError::BadCount => write!(f, "declared count exceeds section size"),
            DecodeError::BadGraph(e) => write!(f, "decoded graph is malformed: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a checksum of one section payload, as stored in the section header.
#[must_use]
pub fn section_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(payload);
    h.finish()
}

/// Little-endian byte-stream writer shared by the module encoder, the
/// warm-state snapshot encoder (`crate::snapshot`), and the serving wire
/// protocol (`veal-serve`), so every on-disk and on-wire artifact speaks
/// the same framing dialect.
pub struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a u32-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Appends raw bytes verbatim.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    /// Appends a checksummed section frame: `tag u8, len u32,
    /// checksum u64, payload`.
    pub fn section(&mut self, tag: u8, payload: &[u8]) {
        self.u8(tag);
        self.u32(payload.len() as u32);
        self.u64(section_checksum(payload));
        self.buf.extend_from_slice(payload);
    }
    /// The bytes written so far.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
    /// Consumes the writer, yielding its bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader; every over-read is a typed
/// [`DecodeError::Truncated`], never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }
    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    /// Reads a little-endian u16.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    /// Reads a little-endian i64.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }
    /// Reads a u32-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] or [`DecodeError::BadString`].
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
    }
}

const KIND_OP: u8 = 0;
const KIND_LIVE_IN: u8 = 1;
const KIND_CONST: u8 = 2;
const KIND_DEAD: u8 = 3;

/// Bytes one encoded edge occupies (src, dst, distance u32s + kind byte).
const EDGE_BYTES: usize = 13;

fn encode_nodes(dfg: &Dfg) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(dfg.len() as u32);
    for i in 0..dfg.len() {
        let id = OpId::new(i);
        let node = dfg.node(id);
        if node.is_dead() {
            w.u8(KIND_DEAD);
            continue;
        }
        match &node.kind {
            NodeKind::Op(op) => {
                w.u8(KIND_OP);
                w.u8(op.encode());
                w.u16(node.stream.map_or(u16::MAX, |s| s));
                w.u8(u8::from(node.live_out));
            }
            NodeKind::LiveIn => w.u8(KIND_LIVE_IN),
            NodeKind::Const(v) => {
                w.u8(KIND_CONST);
                w.i64(*v);
            }
        }
    }
    w.buf
}

fn encode_edges(dfg: &Dfg) -> Vec<u8> {
    let mut w = Writer::new();
    let edges = dfg.edges();
    w.u32(edges.len() as u32);
    for e in edges {
        w.u32(e.src.index() as u32);
        w.u32(e.dst.index() as u32);
        w.u32(e.distance);
        w.u8(match e.kind {
            EdgeKind::Data => 0,
            EdgeKind::Mem => 1,
        });
    }
    w.buf
}

/// Serializes a module.
///
/// # Example
///
/// ```
/// use veal_ir::{DfgBuilder, LoopBody, Opcode};
/// use veal_vm::{decode_module, encode_module, EncodedLoop};
///
/// # fn main() -> Result<(), veal_vm::DecodeError> {
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// b.store_stream(1, x);
/// let module = veal_vm::BinaryModule {
///     loops: vec![EncodedLoop {
///         body: LoopBody::new("copy", b.finish()),
///         priority_hint: None,
///         cca_hint: None,
///         family_hint: None,
///     }],
/// };
/// let bytes = encode_module(&module);
/// let back = decode_module(&bytes)?;
/// assert_eq!(back.loops.len(), 1);
/// assert_eq!(back.loops[0].body.name, "copy");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn encode_module(module: &BinaryModule) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.u32(module.loops.len() as u32);
    for l in &module.loops {
        w.str(&l.body.name);
        let dfg = &l.body.dfg;
        w.section(SEC_NODES, &encode_nodes(dfg));
        w.section(SEC_EDGES, &encode_edges(dfg));
        if let Some(order) = &l.priority_hint {
            let mut p = Writer::new();
            p.u32(order.len() as u32);
            for &op in order {
                p.u32(op.index() as u32);
            }
            w.section(SEC_PRIORITY, &p.buf);
        }
        if let Some(groups) = &l.cca_hint {
            let mut p = Writer::new();
            p.u32(groups.len() as u32);
            for g in groups {
                p.u32(g.len() as u32);
                for &m in g {
                    p.u32(m.index() as u32);
                }
            }
            w.section(SEC_CCA, &p.buf);
        }
        if let Some(fp) = l.family_hint {
            let mut p = Writer::new();
            p.u64(fp);
            w.section(SEC_FAMILY, &p.buf);
        }
        w.u8(SEC_END);
    }
    w.buf
}

fn decode_nodes(payload: &[u8]) -> Result<(Dfg, usize, Vec<OpId>), DecodeError> {
    let mut r = Reader::new(payload);
    let nnodes = r.u32()? as usize;
    // Every node occupies at least one byte; a count beyond that is lying.
    if nnodes > r.remaining() {
        return Err(DecodeError::BadCount);
    }
    let mut dfg = Dfg::new();
    let mut dead_nodes = Vec::new();
    for _ in 0..nnodes {
        match r.u8()? {
            KIND_OP => {
                let op_byte = r.u8()?;
                let stream = r.u16()?;
                let live_out = r.u8()? != 0;
                let op = Opcode::decode(op_byte).ok_or(DecodeError::BadOpcode(op_byte))?;
                let id = dfg.add_node(NodeKind::Op(op));
                if stream != u16::MAX {
                    dfg.node_mut(id).stream = Some(stream);
                }
                dfg.node_mut(id).live_out = live_out;
            }
            KIND_LIVE_IN => {
                dfg.add_node(NodeKind::LiveIn);
            }
            KIND_CONST => {
                let v = r.i64()?;
                dfg.add_node(NodeKind::Const(v));
            }
            KIND_DEAD => {
                // Preserve the slot so ids stay stable.
                let id = dfg.add_node(NodeKind::LiveIn);
                dead_nodes.push(id);
            }
            b => return Err(DecodeError::BadNodeKind(b)),
        }
    }
    if !r.is_done() {
        return Err(DecodeError::SectionTrailing(SEC_NODES));
    }
    Ok((dfg, nnodes, dead_nodes))
}

fn decode_edges(payload: &[u8], dfg: &mut Dfg, nnodes: usize) -> Result<(), DecodeError> {
    let mut r = Reader::new(payload);
    let nedges = r.u32()? as usize;
    if nedges > r.remaining() / EDGE_BYTES {
        return Err(DecodeError::BadCount);
    }
    for _ in 0..nedges {
        let src = r.u32()? as usize;
        let dst = r.u32()? as usize;
        let distance = r.u32()?;
        let kind = match r.u8()? {
            0 => EdgeKind::Data,
            1 => EdgeKind::Mem,
            _ => return Err(DecodeError::BadEdge),
        };
        if src >= nnodes || dst >= nnodes {
            return Err(DecodeError::BadEdge);
        }
        dfg.add_edge(OpId::new(src), OpId::new(dst), distance, kind);
    }
    if !r.is_done() {
        return Err(DecodeError::SectionTrailing(SEC_EDGES));
    }
    Ok(())
}

fn decode_priority(payload: &[u8]) -> Result<Vec<OpId>, DecodeError> {
    let mut r = Reader::new(payload);
    let n = r.u32()? as usize;
    if n > r.remaining() / 4 {
        return Err(DecodeError::BadCount);
    }
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        order.push(OpId::new(r.u32()? as usize));
    }
    if !r.is_done() {
        return Err(DecodeError::SectionTrailing(SEC_PRIORITY));
    }
    Ok(order)
}

fn decode_family(payload: &[u8]) -> Result<u64, DecodeError> {
    let mut r = Reader::new(payload);
    let fp = r.u64()?;
    if !r.is_done() {
        return Err(DecodeError::SectionTrailing(SEC_FAMILY));
    }
    Ok(fp)
}

fn decode_cca(payload: &[u8], nnodes: usize) -> Result<Vec<Vec<OpId>>, DecodeError> {
    let mut r = Reader::new(payload);
    let g = r.u32()? as usize;
    if g > r.remaining() / 4 {
        return Err(DecodeError::BadCount);
    }
    let mut groups = Vec::with_capacity(g);
    for _ in 0..g {
        let n = r.u32()? as usize;
        if n > r.remaining() / 4 {
            return Err(DecodeError::BadCount);
        }
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.u32()? as usize;
            if idx >= nnodes {
                return Err(DecodeError::BadHint);
            }
            members.push(OpId::new(idx));
        }
        groups.push(members);
    }
    if !r.is_done() {
        return Err(DecodeError::SectionTrailing(SEC_CCA));
    }
    Ok(groups)
}

/// Deserializes a module.
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed input — never panics, whatever
/// the bytes.
pub fn decode_module(bytes: &[u8]) -> Result<BinaryModule, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let nloops = r.u32()? as usize;
    // Each loop needs at least a name length, two section frames, and an
    // end tag; one byte per loop is a safe lower bound.
    if nloops > r.remaining() {
        return Err(DecodeError::BadCount);
    }
    let mut loops = Vec::with_capacity(nloops.min(1 << 16));
    for _ in 0..nloops {
        let name = r.str()?;
        // Scan the section stream: verify checksums, slot the known tags,
        // skip unknown ones (forward compatibility).
        let mut slots: [Option<&[u8]>; 5] = [None; 5];
        loop {
            let tag = r.u8()?;
            if tag == SEC_END {
                break;
            }
            let len = r.u32()? as usize;
            let checksum = r.u64()?;
            let payload = r.take(len)?;
            if section_checksum(payload) != checksum {
                return Err(DecodeError::SectionChecksum(tag));
            }
            if (SEC_NODES..=SEC_FAMILY).contains(&tag) {
                let slot = &mut slots[(tag - 1) as usize];
                if slot.is_some() {
                    return Err(DecodeError::DuplicateSection(tag));
                }
                *slot = Some(payload);
            }
        }
        let nodes_payload = slots[0].ok_or(DecodeError::MissingSection(SEC_NODES))?;
        let edges_payload = slots[1].ok_or(DecodeError::MissingSection(SEC_EDGES))?;

        let (mut dfg, nnodes, dead_nodes) = decode_nodes(nodes_payload)?;
        decode_edges(edges_payload, &mut dfg, nnodes)?;
        if !dead_nodes.is_empty() {
            dfg.remove_nodes(&dead_nodes);
        }
        // Structural invariants: a byte stream can frame correctly yet
        // describe an unexecutable graph (a distance-0 cycle would hang
        // RecMII). Reject it here, before the translator can touch it.
        veal_ir::verify_dfg(&dfg).map_err(DecodeError::BadGraph)?;
        let priority_hint = slots[2].map(decode_priority).transpose()?;
        let cca_hint = slots[3].map(|p| decode_cca(p, nnodes)).transpose()?;
        let family_hint = slots[4].map(decode_family).transpose()?;

        // A priority order may reference the pseudo-ops created by
        // collapsing the CCA hint groups: each group adds exactly one node
        // beyond the loop body (paper Figure 9's `Brl CCA` entries appear
        // in the priority data section too).
        let n_groups = cca_hint.as_ref().map_or(0, Vec::len);
        if let Some(order) = &priority_hint {
            if order.iter().any(|o| o.index() >= nnodes + n_groups) {
                return Err(DecodeError::BadHint);
            }
        }
        loops.push(EncodedLoop {
            body: LoopBody::new(name, dfg),
            priority_hint,
            cca_hint,
            family_hint,
        });
    }
    Ok(BinaryModule { loops })
}

/// Location of one section within an encoded module, as byte ranges.
///
/// Used by the fault-injection harness ([`crate::faults`]) to corrupt
/// specific sections and by tooling that patches modules in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionRange {
    /// Index of the loop this section belongs to.
    pub loop_index: usize,
    /// The section tag.
    pub tag: u8,
    /// The whole frame: tag byte through the end of the payload.
    pub frame: Range<usize>,
    /// The 8 stored checksum bytes (little endian).
    pub checksum: Range<usize>,
    /// The payload bytes.
    pub payload: Range<usize>,
}

/// Walks an encoded module's framing and returns every section's location
/// without building any loop structure. Checksums are *not* verified here —
/// this is the map a patcher uses before resealing.
///
/// # Errors
///
/// Returns [`DecodeError`] if the framing itself is malformed.
pub fn section_ranges(bytes: &[u8]) -> Result<Vec<SectionRange>, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let nloops = r.u32()? as usize;
    let mut out = Vec::new();
    for loop_index in 0..nloops {
        let _name = r.str()?;
        loop {
            let start = r.pos;
            let tag = r.u8()?;
            if tag == SEC_END {
                break;
            }
            let len = r.u32()? as usize;
            let checksum = r.pos..r.pos + 8;
            r.u64()?;
            let payload_start = r.pos;
            r.take(len)?;
            out.push(SectionRange {
                loop_index,
                tag,
                frame: start..r.pos,
                checksum,
                payload: payload_start..r.pos,
            });
        }
    }
    Ok(out)
}

/// Recomputes and stores the checksum of `section` over its (possibly
/// edited) payload bytes, so a patched module decodes again. This is the
/// adversary's tool: the fault harness uses it to prove the *validator*
/// holds even when the transport checksum has been forged.
pub fn reseal_section(bytes: &mut [u8], section: &SectionRange) {
    let sum = section_checksum(&bytes[section.payload.clone()]);
    bytes[section.checksum.clone()].copy_from_slice(&sum.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use veal_accel::{AcceleratorConfig, AcceleratorFamily};
    use veal_ir::DfgBuilder;

    fn paper_family() -> AcceleratorFamily {
        AcceleratorFamily::point(&AcceleratorConfig::paper_design())
    }

    fn sample_loop() -> LoopBody {
        let mut b = DfgBuilder::new();
        let k = b.constant(7);
        let li = b.live_in();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Mul, &[x, k]);
        let z = b.op(Opcode::Add, &[y, li]);
        b.loop_carried(z, z, 1);
        b.mark_live_out(z);
        b.store_stream(1, z);
        LoopBody::new("sample", b.finish())
    }

    fn hinted_module() -> BinaryModule {
        BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: Some(vec![OpId::new(4), OpId::new(3)]),
                cca_hint: Some(vec![vec![OpId::new(3), OpId::new(4)]]),
                family_hint: Some(paper_family().fingerprint()),
            }],
        }
    }

    fn round_trip(m: &BinaryModule) -> BinaryModule {
        decode_module(&encode_module(m)).expect("round trip")
    }

    #[test]
    fn round_trip_preserves_structure() {
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            }],
        };
        let back = round_trip(&m);
        let a = &m.loops[0].body.dfg;
        let b = &back.loops[0].body.dfg;
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges(), b.edges());
        for i in 0..a.len() {
            let id = OpId::new(i);
            assert_eq!(a.node(id).kind, b.node(id).kind);
            assert_eq!(a.node(id).stream, b.node(id).stream);
            assert_eq!(a.node(id).live_out, b.node(id).live_out);
        }
    }

    #[test]
    fn round_trip_preserves_hints() {
        let back = round_trip(&hinted_module());
        assert_eq!(
            back.loops[0].priority_hint,
            Some(vec![OpId::new(4), OpId::new(3)])
        );
        assert_eq!(back.loops[0].cca_hint.as_ref().unwrap()[0].len(), 2);
        assert_eq!(
            back.loops[0].family_hint,
            Some(paper_family().fingerprint())
        );
        assert!(back.loops[0].family_hint_matches(&paper_family()));
    }

    #[test]
    fn family_hint_is_optional_and_outside_static_hints() {
        // A module without the family section decodes with family_hint
        // None, emits no SEC_FAMILY frame, and produces the same
        // StaticHints as one that ships the section: the fingerprint is
        // advisory memo metadata, never translation input.
        let mut with = hinted_module();
        let mut without = hinted_module();
        without.loops[0].family_hint = None;
        let bytes = encode_module(&without);
        let sections = section_ranges(&bytes).expect("framing walks");
        assert!(sections.iter().all(|s| s.tag != SEC_FAMILY));
        let back = decode_module(&bytes).expect("decodes");
        assert_eq!(back.loops[0].family_hint, None);
        assert!(!back.loops[0].family_hint_matches(&paper_family()));
        let a = round_trip(&with).loops[0].hints();
        let b = back.loops[0].hints();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Mismatched families do not "match" either.
        let other = AcceleratorFamily::point(&AcceleratorConfig::infinite());
        with.loops[0].family_hint = Some(other.fingerprint());
        let mismatched = round_trip(&with);
        assert!(!mismatched.loops[0].family_hint_matches(&paper_family()));
        assert!(mismatched.loops[0].family_hint_matches(&other));
    }

    #[test]
    fn family_section_corruption_detected() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let fam = sections
            .iter()
            .find(|s| s.tag == SEC_FAMILY)
            .expect("family section present")
            .clone();
        bytes[fam.payload.start] ^= 0x01;
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::SectionChecksum(SEC_FAMILY)
        );
        // Resealed wrong-size payload: transport passes, the sub-decoder
        // refuses the trailing bytes.
        let mut bytes = encode_module(&hinted_module());
        let mut sections = section_ranges(&bytes).expect("framing walks");
        let fam = sections
            .iter_mut()
            .find(|s| s.tag == SEC_FAMILY)
            .expect("family section present")
            .clone();
        bytes.insert(fam.payload.end, 0xAB);
        let len_at = fam.frame.start + 1;
        bytes[len_at..len_at + 4].copy_from_slice(&9u32.to_le_bytes());
        let mut grown = fam.clone();
        grown.payload = fam.payload.start..fam.payload.end + 1;
        reseal_section(&mut bytes, &grown);
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::SectionTrailing(SEC_FAMILY)
        );
    }

    #[test]
    fn hints_are_optional_and_ignorable() {
        // The same loop with and without hints decodes to the same graph:
        // binary compatibility of the hint encoding.
        let with = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: Some(vec![OpId::new(0)]),
                cca_hint: None,
                family_hint: None,
            }],
        };
        let without = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            }],
        };
        let a = round_trip(&with);
        let b = round_trip(&without);
        assert_eq!(a.loops[0].body.dfg.edges(), b.loops[0].body.dfg.edges());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode_module(b"NOPE"), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_module(&hinted_module());
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_module(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_truncation_prefix_yields_a_clean_error() {
        let bytes = encode_module(&hinted_module());
        for k in 0..bytes.len() {
            let err = decode_module(&bytes[..k]).expect_err("prefix must not decode");
            // The error is a typed DecodeError by construction; the common
            // case for a clean cut is Truncated.
            let _ = err.to_string();
        }
    }

    #[test]
    fn bad_hint_index_rejected() {
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: Some(vec![OpId::new(9999)]),
                cca_hint: None,
                family_hint: None,
            }],
        };
        let bytes = encode_module(&m);
        assert_eq!(decode_module(&bytes).unwrap_err(), DecodeError::BadHint);
    }

    #[test]
    fn cca_member_out_of_range_rejected() {
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: sample_loop(),
                priority_hint: None,
                cca_hint: Some(vec![vec![OpId::new(9999)]]),
                family_hint: None,
            }],
        };
        let bytes = encode_module(&m);
        assert_eq!(decode_module(&bytes).unwrap_err(), DecodeError::BadHint);
    }

    #[test]
    fn empty_module_round_trips() {
        let back = round_trip(&BinaryModule::default());
        assert!(back.loops.is_empty());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_module(&BinaryModule::default());
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::BadVersion(0xFFFF)
        );
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let prio = sections
            .iter()
            .find(|s| s.tag == SEC_PRIORITY)
            .expect("priority section present");
        bytes[prio.payload.start + 4] ^= 0x40;
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::SectionChecksum(SEC_PRIORITY)
        );
    }

    #[test]
    fn resealed_corruption_passes_transport_and_reaches_the_validator() {
        // Forge: corrupt a priority id inside bounds, then recompute the
        // checksum. The *decoder* must accept it (transport integrity says
        // nothing about semantic validity) — catching it is vm::verify's
        // job, tested there and in the fault harness.
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let prio = sections
            .iter()
            .find(|s| s.tag == SEC_PRIORITY)
            .expect("priority section present")
            .clone();
        // First entry (offset 4 skips the count): point it at op 0.
        bytes[prio.payload.start + 4..prio.payload.start + 8].copy_from_slice(&0u32.to_le_bytes());
        reseal_section(&mut bytes, &prio);
        let back = decode_module(&bytes).expect("forged module decodes");
        assert_eq!(
            back.loops[0].priority_hint,
            Some(vec![OpId::new(0), OpId::new(3)])
        );
    }

    #[test]
    fn duplicate_hint_section_rejected() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let prio = sections
            .iter()
            .find(|s| s.tag == SEC_PRIORITY)
            .expect("priority section present")
            .clone();
        // Splice a second copy of the whole priority frame right after the
        // first one.
        let frame: Vec<u8> = bytes[prio.frame.clone()].to_vec();
        bytes.splice(prio.frame.end..prio.frame.end, frame);
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::DuplicateSection(SEC_PRIORITY)
        );
    }

    #[test]
    fn unknown_section_skipped_for_forward_compat() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let last = sections.last().expect("sections present").clone();
        // A future compiler appends a section this VM has never heard of.
        let payload = b"future hint kind";
        let mut frame = vec![0xEEu8];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&section_checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        bytes.splice(last.frame.end..last.frame.end, frame);
        let back = decode_module(&bytes).expect("unknown section is skipped");
        assert_eq!(
            back.loops[0].priority_hint,
            Some(vec![OpId::new(4), OpId::new(3)])
        );
        assert!(back.loops[0].cca_hint.is_some());
    }

    #[test]
    fn unknown_section_corruption_still_detected() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let last = sections.last().expect("sections present").clone();
        let payload = b"future hint kind";
        let mut frame = vec![0xEEu8];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&section_checksum(payload).to_le_bytes());
        frame.extend_from_slice(b"corrupted bytes!");
        bytes.splice(last.frame.end..last.frame.end, frame);
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::SectionChecksum(0xEE)
        );
    }

    #[test]
    fn missing_required_section_rejected() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let edges = sections
            .iter()
            .find(|s| s.tag == SEC_EDGES)
            .expect("edges present")
            .clone();
        bytes.drain(edges.frame);
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::MissingSection(SEC_EDGES)
        );
    }

    #[test]
    fn lying_count_rejected_without_allocation() {
        // A node count of u32::MAX in a tiny payload must fail fast with
        // BadCount, not attempt a huge decode.
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let nodes = sections
            .iter()
            .find(|s| s.tag == SEC_NODES)
            .expect("nodes present")
            .clone();
        bytes[nodes.payload.start..nodes.payload.start + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        reseal_section(&mut bytes, &nodes);
        assert_eq!(decode_module(&bytes).unwrap_err(), DecodeError::BadCount);
    }

    #[test]
    fn trailing_section_bytes_rejected() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let prio = sections
            .iter()
            .find(|s| s.tag == SEC_PRIORITY)
            .expect("priority present")
            .clone();
        // Shrink the declared entry count by one: the last id becomes a
        // trailing byte the sub-decoder must refuse.
        let count_at = prio.payload.start;
        let old = u32::from_le_bytes([
            bytes[count_at],
            bytes[count_at + 1],
            bytes[count_at + 2],
            bytes[count_at + 3],
        ]);
        bytes[count_at..count_at + 4].copy_from_slice(&(old - 1).to_le_bytes());
        reseal_section(&mut bytes, &prio);
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::SectionTrailing(SEC_PRIORITY)
        );
    }

    #[test]
    fn unexecutable_graph_rejected_at_decode() {
        // Frame-valid bytes describing a distance-0 cycle: the scheduler
        // must never see this graph.
        let mut dfg = Dfg::new();
        let a = dfg.add_node(NodeKind::Op(Opcode::Add));
        let b = dfg.add_node(NodeKind::Op(Opcode::Sub));
        dfg.add_edge(a, b, 0, EdgeKind::Data);
        dfg.add_edge(b, a, 0, EdgeKind::Data);
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: LoopBody::new("cyclic", dfg),
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            }],
        };
        let bytes = encode_module(&m);
        assert!(matches!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::BadGraph(veal_ir::VerifyError::IntraIterationCycle(_))
        ));
    }

    #[test]
    fn bad_opcode_reports_the_byte() {
        let mut bytes = encode_module(&hinted_module());
        let sections = section_ranges(&bytes).expect("framing walks");
        let nodes = sections
            .iter()
            .find(|s| s.tag == SEC_NODES)
            .expect("nodes present")
            .clone();
        // Node 0 of sample_loop is a Const; node payload starts with the
        // u32 count, then kind bytes. Overwrite the first kind byte with an
        // invalid kind tag.
        bytes[nodes.payload.start + 4] = 0x7F;
        reseal_section(&mut bytes, &nodes);
        assert_eq!(
            decode_module(&bytes).unwrap_err(),
            DecodeError::BadNodeKind(0x7F)
        );
    }
}
