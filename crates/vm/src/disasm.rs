//! Disassembly of binary modules into the textual assembly format.

use crate::binfmt::BinaryModule;
use std::fmt::Write as _;
use veal_ir::asm::to_asm;

/// Renders a decoded module as human-readable assembly, one loop per
/// section, with the hint sections shown as comments.
///
/// # Example
///
/// ```
/// use veal_ir::{DfgBuilder, LoopBody, Opcode};
/// use veal_vm::{disassemble, BinaryModule, EncodedLoop};
///
/// let mut b = DfgBuilder::new();
/// let x = b.load_stream(0);
/// b.store_stream(1, x);
/// let m = BinaryModule {
///     loops: vec![EncodedLoop {
///         body: LoopBody::new("copy", b.finish()),
///         priority_hint: None,
///         cca_hint: None,
///         family_hint: None,
///     }],
/// };
/// let text = disassemble(&m);
/// assert!(text.contains("ld.s0"));
/// ```
#[must_use]
pub fn disassemble(module: &BinaryModule) -> String {
    let mut out = String::new();
    for (i, l) in module.loops.iter().enumerate() {
        let _ = writeln!(out, ";; loop {i}");
        if let Some(order) = &l.priority_hint {
            let ids: Vec<String> = order.iter().map(|o| format!("%{}", o.index())).collect();
            let _ = writeln!(out, ";; .priority {}", ids.join(" "));
        }
        if let Some(groups) = &l.cca_hint {
            for g in groups {
                let ids: Vec<String> = g.iter().map(|o| format!("%{}", o.index())).collect();
                let _ = writeln!(out, ";; .cca {}", ids.join(" "));
            }
        }
        if let Some(fp) = l.family_hint {
            let _ = writeln!(out, ";; .family {fp:#018x}");
        }
        let _ = write!(out, "{}", to_asm(&l.body));
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binfmt::EncodedLoop;
    use veal_ir::{DfgBuilder, LoopBody, OpId, Opcode};

    #[test]
    fn disassembly_shows_hints_and_ops() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: LoopBody::new("l", b.finish()),
                priority_hint: Some(vec![OpId::new(1), OpId::new(0), OpId::new(2)]),
                cca_hint: Some(vec![vec![OpId::new(1)]]),
                family_hint: Some(0xFA51),
            }],
        };
        let text = disassemble(&m);
        assert!(text.contains(";; .priority %1 %0 %2"));
        assert!(text.contains(";; .cca %1"));
        assert!(text.contains(";; .family 0x000000000000fa51"));
        assert!(text.contains("add"));
    }

    #[test]
    fn disassembled_body_reparses() {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let m1 = b.op(Opcode::Mul, &[x, x]);
        b.store_stream(1, m1);
        let body = LoopBody::new("sq", b.finish());
        let m = BinaryModule {
            loops: vec![EncodedLoop {
                body: body.clone(),
                priority_hint: None,
                cca_hint: None,
                family_hint: None,
            }],
        };
        let text = disassemble(&m);
        // Strip the ';;' header lines; the rest is valid assembly.
        let asm: String = text
            .lines()
            .filter(|l| !l.starts_with(";;"))
            .map(|l| format!("{l}\n"))
            .collect();
        let back = veal_ir::asm::parse_asm(&asm).expect("reparses");
        assert_eq!(back.dfg.edges(), body.dfg.edges());
    }
}
