//! A thread-safe translation memo table for the design-space sweep engine.
//!
//! Figure sweeps evaluate many `(AcceleratorConfig, CcaSpec, policy)`
//! points over the same application suite, and many applications share loop
//! bodies (the suite reuses kernels at different profiles, and legalized
//! parts repeat). The [`TranslationMemo`] caches per-loop translation
//! results keyed on the loop's *content* hash plus the translator's
//! fingerprint, so each distinct `(loop, configuration, policy, hints)`
//! combination is scheduled exactly once per sweep regardless of how many
//! apps, figure rows, or repeated runs touch it.
//!
//! Replay is exact: a memo hit hands back the original
//! [`TranslationOutcome`]'s result *and* phase breakdown, and
//! [`crate::VmSession`] charges its statistics from the stored breakdown
//! exactly as a fresh translation would — so memoized runs produce
//! bit-identical simulated numbers.

use crate::translator::{SymbolicTranslation, TranslatedLoop, TranslationError};
use crate::verify::HintVerdict;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use veal_ir::rng::Fnv64;
use veal_ir::PhaseBreakdown;
use veal_obs::{metrics, Counter};

/// Process-global hit/miss counters across *all* memo tables, so a sweep's
/// aggregate memo efficiency shows up in one metrics snapshot. Per-table
/// numbers stay in [`MemoStats`].
fn global_counters() -> (&'static Counter, &'static Counter) {
    static C: OnceLock<(&'static Counter, &'static Counter)> = OnceLock::new();
    *C.get_or_init(|| {
        (
            metrics::counter("vm.memo.hits"),
            metrics::counter("vm.memo.misses"),
        )
    })
}

/// Identity of one memoized translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// [`veal_ir::LoopBody::content_hash`] of the translated body.
    pub loop_hash: u64,
    /// [`crate::Translator::fingerprint`]: configuration ⊕ CCA ⊕ policy.
    pub translator_fp: u64,
    /// [`crate::StaticHints::fingerprint`] of the hints supplied.
    pub hints_fp: u64,
}

/// A stored translation outcome: shared translated loop (or the abort
/// reason) plus the phase breakdown the original translation charged.
#[derive(Debug, Clone)]
pub struct MemoizedOutcome {
    /// Mapped loop or abort reason, sharable across sessions and threads.
    pub result: Result<Arc<TranslatedLoop>, TranslationError>,
    /// The exact per-phase cost of the original translation.
    pub breakdown: PhaseBreakdown,
    /// The original translation's hint verdict, so replayed invocations
    /// count validations and degradations bit-identically to fresh ones.
    pub verdict: HintVerdict,
}

/// What a memo slot stores: a concrete outcome at one exact configuration
/// (the classic point entry), or a family-keyed symbolic translation that
/// each session concretizes at its own configuration.
///
/// The two kinds can never collide on a key: point keys carry
/// [`crate::Translator::fingerprint`] and family keys carry
/// [`crate::Translator::family_fingerprint`], which hash disjoint domains
/// (the family fingerprint leads with a domain tag).
#[derive(Debug, Clone)]
pub enum MemoEntry {
    /// A concrete outcome at one configuration.
    Point(MemoizedOutcome),
    /// One symbolic translation shared by every configuration in a family;
    /// `Arc` because concurrent sessions concretize it in place (its
    /// RecMII/priority caches are internally synchronized).
    Family(Arc<SymbolicTranslation>),
}

/// Hit/miss counters of a memo table, snapshot at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that missed (and were then translated and inserted).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl MemoStats {
    /// Fraction of lookups answered from the table.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memo table mapping [`MemoKey`] → [`MemoEntry`].
///
/// Shared across sessions (and worker threads) via `Arc`; see
/// [`crate::VmSession::with_memo`].
#[derive(Debug, Default)]
pub struct TranslationMemo {
    map: Mutex<HashMap<MemoKey, MemoEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TranslationMemo {
    /// Creates an empty memo table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, recording a hit or miss.
    ///
    /// A poisoned lock is recovered, not propagated: every entry is written
    /// atomically under the lock (insert-or-keep of an immutable value), so
    /// a sweep worker that panicked mid-translation can never have left the
    /// map half-updated — the surviving threads keep the memo.
    #[must_use]
    pub fn get(&self, key: &MemoKey) -> Option<MemoEntry> {
        let found = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned();
        let (hits, misses) = global_counters();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hits.inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            misses.inc();
        }
        found
    }

    /// Looks up `key` **without** touching the hit/miss counters. Used by
    /// the single-flight layer to re-check the table after the counted
    /// lookup already missed, so one logical lookup is counted exactly once.
    #[must_use]
    pub fn peek(&self, key: &MemoKey) -> Option<MemoEntry> {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// Stores an entry. First writer wins on a racing key (both computed
    /// the same deterministic result, so either is correct).
    pub fn insert(&self, key: MemoKey, outcome: MemoEntry) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(outcome);
    }

    /// Current hit/miss/size counters.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .map
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        }
    }

    /// Snapshot of every entry, sorted by key for a deterministic order
    /// (serializers depend on it: two snapshots of the same state must be
    /// byte-identical). Entries are cheap clones (`Arc` payloads).
    #[must_use]
    pub fn export_entries(&self) -> Vec<(MemoKey, MemoEntry)> {
        let mut out: Vec<(MemoKey, MemoEntry)> = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        out.sort_by_key(|(k, _)| (k.loop_hash, k.translator_fp, k.hints_fp));
        out
    }
}

/// Storage abstraction behind [`crate::VmSession`]'s memo slot.
///
/// [`TranslationMemo`] is the single-table backend the sweep engine uses;
/// [`ShardedMemo`] adds lock striping and single-flight for the serving
/// path. The session only calls [`MemoBackend::get_or_insert_with`], whose
/// default body reproduces the historical get → translate → insert sequence
/// exactly (including the order counters are bumped in), so swapping
/// backends never changes a session's statistics.
pub trait MemoBackend: fmt::Debug + Send + Sync {
    /// Looks up `key`, counting a hit or miss.
    fn get(&self, key: &MemoKey) -> Option<MemoEntry>;

    /// Stores an entry; first writer wins on a racing key.
    fn insert(&self, key: MemoKey, outcome: MemoEntry);

    /// Aggregate hit/miss/size counters.
    fn stats(&self) -> MemoStats;

    /// Snapshot of every entry in deterministic (key-sorted) order, for
    /// warm-state serialization.
    fn export_entries(&self) -> Vec<(MemoKey, MemoEntry)>;

    /// Returns the outcome for `key`, running `compute` on a miss and
    /// publishing its result. The flag is `true` when the table answered
    /// the (counted) lookup directly. Backends with a coalescing layer may
    /// return outcomes computed concurrently by another thread; callers
    /// must treat the outcome as authoritative either way.
    fn get_or_insert_with(
        &self,
        key: &MemoKey,
        compute: &mut dyn FnMut() -> MemoEntry,
    ) -> (MemoEntry, bool) {
        if let Some(hit) = self.get(key) {
            return (hit, true);
        }
        let outcome = compute();
        self.insert(*key, outcome.clone());
        (outcome, false)
    }
}

impl MemoBackend for TranslationMemo {
    fn get(&self, key: &MemoKey) -> Option<MemoEntry> {
        TranslationMemo::get(self, key)
    }

    fn insert(&self, key: MemoKey, outcome: MemoEntry) {
        TranslationMemo::insert(self, key, outcome);
    }

    fn stats(&self) -> MemoStats {
        TranslationMemo::stats(self)
    }

    fn export_entries(&self) -> Vec<(MemoKey, MemoEntry)> {
        TranslationMemo::export_entries(self)
    }
}

/// Process-global counters for the single-flight layer: translations the
/// leaders actually ran, and lookups that waited on (or arrived just
/// behind) another thread's in-flight translation.
fn flight_counters() -> (&'static Counter, &'static Counter) {
    static C: OnceLock<(&'static Counter, &'static Counter)> = OnceLock::new();
    *C.get_or_init(|| {
        (
            metrics::counter("vm.memo.computes"),
            metrics::counter("vm.memo.coalesced"),
        )
    })
}

/// The published state of one in-flight translation.
#[derive(Debug)]
enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader finished; waiters take the stored entry.
    Ready(MemoEntry),
    /// The leader panicked before publishing; waiters re-elect.
    Abandoned,
}

#[derive(Debug)]
struct InFlight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug)]
struct Shard {
    memo: TranslationMemo,
    /// Translations currently being computed for keys hashing here. An
    /// entry exists exactly while one leader runs the translator.
    inflight: Mutex<HashMap<MemoKey, Arc<InFlight>>>,
}

/// A lock-striped [`TranslationMemo`] with a single-flight layer, for the
/// multi-tenant serving path.
///
/// Lookups hash the [`MemoKey`] to one of N independent shards (N rounded
/// up to a power of two), so concurrent tenants contend only when their
/// keys collide, not on one global mutex. With single-flight enabled
/// (the default), K concurrent requests for the same untranslated key run
/// exactly one translation: the first becomes the *leader*, the other K−1
/// block on a [`Condvar`] and receive the leader's outcome. A leader that
/// panics publishes `Abandoned` from its drop guard and the waiters
/// re-elect, so a crashed worker can never wedge a key.
///
/// Single-threaded, the per-shard counters fold to exactly what one
/// [`TranslationMemo`] would have recorded on the same request sequence —
/// the stress tests assert this bit-for-bit.
#[derive(Debug)]
pub struct ShardedMemo {
    shards: Box<[Shard]>,
    mask: u64,
    single_flight: bool,
    computes: AtomicU64,
    coalesced: AtomicU64,
}

impl ShardedMemo {
    /// Creates a memo striped over `shards` locks (rounded up to a power of
    /// two, clamped to `1..=65536` — zero is a configuration accident that
    /// must not panic, and a count near `usize::MAX` would overflow
    /// `next_power_of_two`), with single-flight enabled.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.clamp(1, 1 << 16).next_power_of_two();
        ShardedMemo {
            shards: (0..n)
                .map(|_| Shard {
                    memo: TranslationMemo::new(),
                    inflight: Mutex::new(HashMap::new()),
                })
                .collect(),
            mask: (n - 1) as u64,
            single_flight: true,
            computes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Enables or disables the single-flight layer. Disabling it lets
    /// concurrent requests for one key translate redundantly (every racer
    /// computes; first insert wins) — the serving benchmark uses this to
    /// measure the duplicate work single-flight removes.
    #[must_use]
    pub fn with_single_flight(mut self, on: bool) -> Self {
        self.single_flight = on;
        self
    }

    /// Number of shards (a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Translations actually computed through this memo (leaders plus
    /// redundant racers when single-flight is off). With single-flight on
    /// and no panics this equals [`MemoStats::entries`]; the difference is
    /// the duplicate-translation count.
    #[must_use]
    pub fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }

    /// Lookups that received another thread's in-flight (or just-published)
    /// outcome instead of computing their own.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Translations computed redundantly: computes minus distinct keys
    /// stored. Zero under single-flight.
    #[must_use]
    pub fn duplicate_translations(&self) -> u64 {
        self.computes().saturating_sub(self.stats().entries as u64)
    }

    fn shard(&self, key: &MemoKey) -> &Shard {
        let mut h = Fnv64::new();
        h.write_u64(key.loop_hash);
        h.write_u64(key.translator_fp);
        h.write_u64(key.hints_fp);
        &self.shards[(h.finish() & self.mask) as usize]
    }

    fn record_compute(&self) {
        self.computes.fetch_add(1, Ordering::Relaxed);
        flight_counters().0.inc();
    }

    fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        flight_counters().1.inc();
    }
}

/// Publishes the leader's result (or `Abandoned`, if the leader panicked
/// before setting one) and removes the in-flight marker. Runs from `Drop`
/// so a panicking translator can never leave waiters blocked forever.
struct LeaderGuard<'a> {
    shard: &'a Shard,
    key: MemoKey,
    flight: Arc<InFlight>,
    outcome: Option<MemoEntry>,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        // Remove the marker first: a retrying waiter that wakes to
        // `Abandoned` must find the slot free so it can become the next
        // leader (and must never remove a successor's marker).
        self.shard
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.key);
        let mut state = self
            .flight
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *state = match self.outcome.take() {
            Some(outcome) => FlightState::Ready(outcome),
            None => FlightState::Abandoned,
        };
        self.flight.done.notify_all();
    }
}

impl MemoBackend for ShardedMemo {
    fn get(&self, key: &MemoKey) -> Option<MemoEntry> {
        self.shard(key).memo.get(key)
    }

    fn insert(&self, key: MemoKey, outcome: MemoEntry) {
        self.shard(&key).memo.insert(key, outcome);
    }

    /// Folds the per-shard counters. Single-threaded this matches the
    /// single-table [`TranslationMemo`] bit-for-bit on the same corpus.
    fn stats(&self) -> MemoStats {
        let mut folded = MemoStats::default();
        for s in &self.shards {
            let st = s.memo.stats();
            folded.hits += st.hits;
            folded.misses += st.misses;
            folded.entries += st.entries;
        }
        folded
    }

    /// Folds the per-shard maps into one key-sorted export, so the striping
    /// layout never leaks into a snapshot's byte stream.
    fn export_entries(&self) -> Vec<(MemoKey, MemoEntry)> {
        let mut out: Vec<(MemoKey, MemoEntry)> = self
            .shards
            .iter()
            .flat_map(|s| s.memo.export_entries())
            .collect();
        out.sort_by_key(|(k, _)| (k.loop_hash, k.translator_fp, k.hints_fp));
        out
    }

    fn get_or_insert_with(
        &self,
        key: &MemoKey,
        compute: &mut dyn FnMut() -> MemoEntry,
    ) -> (MemoEntry, bool) {
        let shard = self.shard(key);
        // Counted lookup, identical to the unsharded fast path.
        if let Some(hit) = shard.memo.get(key) {
            return (hit, true);
        }
        if !self.single_flight {
            let outcome = compute();
            self.record_compute();
            shard.memo.insert(*key, outcome.clone());
            return (outcome, false);
        }
        loop {
            enum Role {
                Leader(Arc<InFlight>),
                Follower(Arc<InFlight>),
            }
            let role = {
                let mut inflight = shard
                    .inflight
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // Re-check the table under the in-flight lock: a leader that
                // finished between our miss above and here has already
                // published. Non-counting — the miss was counted once.
                if let Some(done) = shard.memo.peek(key) {
                    self.record_coalesced();
                    return (done, false);
                }
                match inflight.get(key) {
                    Some(f) => Role::Follower(Arc::clone(f)),
                    None => {
                        let f = Arc::new(InFlight {
                            state: Mutex::new(FlightState::Pending),
                            done: Condvar::new(),
                        });
                        inflight.insert(*key, Arc::clone(&f));
                        Role::Leader(f)
                    }
                }
            };
            match role {
                Role::Leader(flight) => {
                    let mut guard = LeaderGuard {
                        shard,
                        key: *key,
                        flight,
                        outcome: None,
                    };
                    let outcome = compute(); // may panic → guard abandons
                    self.record_compute();
                    shard.memo.insert(*key, outcome.clone());
                    guard.outcome = Some(outcome.clone());
                    drop(guard);
                    return (outcome, false);
                }
                Role::Follower(flight) => {
                    let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
                    loop {
                        match &*state {
                            FlightState::Pending => {
                                state = flight
                                    .done
                                    .wait(state)
                                    .unwrap_or_else(PoisonError::into_inner);
                            }
                            FlightState::Ready(outcome) => {
                                // Counted only on a received outcome: a
                                // follower that wakes to `Abandoned`
                                // re-elects and records a compute instead,
                                // so counting on entry would overcount the
                                // panic path by one.
                                self.record_coalesced();
                                return (outcome.clone(), false);
                            }
                            FlightState::Abandoned => break,
                        }
                    }
                    // The leader died without publishing; re-elect.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> MemoKey {
        MemoKey {
            loop_hash: n,
            translator_fp: 7,
            hints_fp: 0,
        }
    }

    fn failed_outcome() -> MemoEntry {
        MemoEntry::Point(MemoizedOutcome {
            result: Err(crate::TranslationError::Unsupported(
                veal_ir::streams::SeparationError::CallInLoop,
            )),
            breakdown: PhaseBreakdown::default(),
            verdict: HintVerdict::default(),
        })
    }

    fn is_failed(entry: &MemoEntry) -> bool {
        matches!(entry, MemoEntry::Point(m) if m.result.is_err())
    }

    #[test]
    fn miss_then_hit() {
        let memo = TranslationMemo::new();
        assert!(memo.get(&key(1)).is_none());
        memo.insert(key(1), failed_outcome());
        assert!(memo.get(&key(1)).is_some());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_translators_do_not_collide() {
        let memo = TranslationMemo::new();
        let a = MemoKey {
            loop_hash: 1,
            translator_fp: 1,
            hints_fp: 0,
        };
        memo.insert(a, failed_outcome());
        let b = MemoKey {
            loop_hash: 1,
            translator_fp: 2,
            hints_fp: 0,
        };
        assert!(memo.get(&b).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let memo = Arc::new(TranslationMemo::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let memo = Arc::clone(&memo);
                s.spawn(move || {
                    for i in 0..64u64 {
                        memo.insert(key(i % 8 + t), failed_outcome());
                        let _ = memo.get(&key(i % 8));
                    }
                });
            }
        });
        assert!(memo.stats().entries <= 11);
    }

    #[test]
    fn default_get_or_insert_with_counts_like_the_session_did() {
        let memo = TranslationMemo::new();
        let backend: &dyn MemoBackend = &memo;
        let mut computed = 0;
        let (_, hit) = backend.get_or_insert_with(&key(1), &mut || {
            computed += 1;
            failed_outcome()
        });
        assert!(!hit);
        let (_, hit) = backend.get_or_insert_with(&key(1), &mut || {
            computed += 1;
            failed_outcome()
        });
        assert!(hit);
        assert_eq!(computed, 1);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn peek_does_not_count() {
        let memo = TranslationMemo::new();
        assert!(memo.peek(&key(1)).is_none());
        memo.insert(key(1), failed_outcome());
        assert!(memo.peek(&key(1)).is_some());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn sharded_counters_fold_like_one_table() {
        let single = TranslationMemo::new();
        let sharded = ShardedMemo::new(8);
        for i in 0..32u64 {
            let k = key(i % 10);
            let a = MemoBackend::get(&single, &k).is_some();
            let b = MemoBackend::get(&sharded, &k).is_some();
            assert_eq!(a, b);
            if !a {
                single.insert(k, failed_outcome());
                MemoBackend::insert(&sharded, k, failed_outcome());
            }
        }
        assert_eq!(
            TranslationMemo::stats(&single),
            MemoBackend::stats(&sharded)
        );
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(ShardedMemo::new(0).shard_count(), 1);
        assert_eq!(ShardedMemo::new(5).shard_count(), 8);
        assert_eq!(ShardedMemo::new(16).shard_count(), 16);
    }

    #[test]
    fn absurd_shard_counts_clamp_instead_of_overflowing() {
        // `usize::MAX.next_power_of_two()` panics in debug and wraps to 0
        // in release (a zero mask would alias every key to shard 0 after an
        // underflow); the constructor must clamp, not propagate.
        assert_eq!(ShardedMemo::new(usize::MAX).shard_count(), 1 << 16);
        assert_eq!(ShardedMemo::new((1 << 16) + 1).shard_count(), 1 << 16);
    }

    #[test]
    fn hit_rate_with_zero_lookups_is_finite() {
        let s = MemoStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert!(s.hit_rate().is_finite());
    }

    #[test]
    fn export_entries_is_sorted_and_complete() {
        let sharded = ShardedMemo::new(4);
        for i in [9u64, 2, 7, 4, 0] {
            MemoBackend::insert(&sharded, key(i), failed_outcome());
        }
        let entries = MemoBackend::export_entries(&sharded);
        assert_eq!(entries.len(), 5);
        let hashes: Vec<u64> = entries.iter().map(|(k, _)| k.loop_hash).collect();
        assert_eq!(hashes, vec![0, 2, 4, 7, 9]);
    }

    #[test]
    fn single_flight_runs_one_compute_for_concurrent_misses() {
        let memo = Arc::new(ShardedMemo::new(4));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let memo = Arc::clone(&memo);
                s.spawn(move || {
                    let (out, _) = memo.get_or_insert_with(&key(1), &mut || {
                        // Hold the flight open long enough for the other
                        // threads to arrive as followers.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        failed_outcome()
                    });
                    assert!(is_failed(&out));
                });
            }
        });
        assert_eq!(memo.computes(), 1, "exactly one leader translated");
        assert_eq!(memo.duplicate_translations(), 0);
        assert_eq!(MemoBackend::stats(&*memo).entries, 1);
    }

    #[test]
    fn abandoned_leader_lets_the_next_caller_take_over() {
        let memo = ShardedMemo::new(1);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_insert_with(&key(3), &mut || panic!("translator crash"))
        }));
        assert!(panicked.is_err());
        // The key is not wedged: the next caller becomes the leader.
        let (out, hit) = memo.get_or_insert_with(&key(3), &mut failed_outcome);
        assert!(!hit);
        assert!(is_failed(&out));
        assert_eq!(memo.computes(), 1);
        assert_eq!(MemoBackend::stats(&memo).entries, 1);
    }

    #[test]
    fn a_reelected_follower_counts_a_compute_not_a_coalesce() {
        // Regression: followers recorded `coalesced` before waiting, so a
        // follower whose leader panicked (Abandoned) was counted both as
        // coalesced and, after re-electing itself leader, as computing —
        // overcounting the panic path by one per re-elected follower.
        let memo = Arc::new(ShardedMemo::new(1));
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let m = Arc::clone(&memo);
            let b = &barrier;
            s.spawn(move || {
                let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    m.get_or_insert_with(&key(9), &mut || {
                        // The leader is registered in-flight by now; let
                        // the follower in, give it time to start waiting,
                        // then crash.
                        b.wait();
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("translator crash")
                    })
                }));
                assert!(crashed.is_err());
            });
            barrier.wait();
            let (out, hit) = memo.get_or_insert_with(&key(9), &mut failed_outcome);
            assert!(!hit);
            assert!(is_failed(&out));
        });
        assert_eq!(memo.computes(), 1, "the re-elected follower computed");
        assert_eq!(memo.coalesced(), 0, "no outcome was ever received");
        assert_eq!(memo.duplicate_translations(), 0);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging_the_sweep() {
        let memo = Arc::new(TranslationMemo::new());
        memo.insert(key(1), failed_outcome());
        // A worker thread panics while holding the lock.
        let poisoner = Arc::clone(&memo);
        let worker = std::thread::spawn(move || {
            let _guard = poisoner.map.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("simulated sweep-worker crash");
        });
        assert!(worker.join().is_err(), "worker must have panicked");
        // Surviving threads keep full use of the memo.
        assert!(memo.get(&key(1)).is_some());
        memo.insert(key(2), failed_outcome());
        assert_eq!(memo.stats().entries, 2);
    }
}
