//! A thread-safe translation memo table for the design-space sweep engine.
//!
//! Figure sweeps evaluate many `(AcceleratorConfig, CcaSpec, policy)`
//! points over the same application suite, and many applications share loop
//! bodies (the suite reuses kernels at different profiles, and legalized
//! parts repeat). The [`TranslationMemo`] caches per-loop translation
//! results keyed on the loop's *content* hash plus the translator's
//! fingerprint, so each distinct `(loop, configuration, policy, hints)`
//! combination is scheduled exactly once per sweep regardless of how many
//! apps, figure rows, or repeated runs touch it.
//!
//! Replay is exact: a memo hit hands back the original
//! [`TranslationOutcome`]'s result *and* phase breakdown, and
//! [`crate::VmSession`] charges its statistics from the stored breakdown
//! exactly as a fresh translation would — so memoized runs produce
//! bit-identical simulated numbers.

use crate::translator::{TranslatedLoop, TranslationError};
use crate::verify::HintVerdict;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use veal_ir::PhaseBreakdown;
use veal_obs::{metrics, Counter};

/// Process-global hit/miss counters across *all* memo tables, so a sweep's
/// aggregate memo efficiency shows up in one metrics snapshot. Per-table
/// numbers stay in [`MemoStats`].
fn global_counters() -> (&'static Counter, &'static Counter) {
    static C: OnceLock<(&'static Counter, &'static Counter)> = OnceLock::new();
    *C.get_or_init(|| {
        (
            metrics::counter("vm.memo.hits"),
            metrics::counter("vm.memo.misses"),
        )
    })
}

/// Identity of one memoized translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// [`veal_ir::LoopBody::content_hash`] of the translated body.
    pub loop_hash: u64,
    /// [`crate::Translator::fingerprint`]: configuration ⊕ CCA ⊕ policy.
    pub translator_fp: u64,
    /// [`crate::StaticHints::fingerprint`] of the hints supplied.
    pub hints_fp: u64,
}

/// A stored translation outcome: shared translated loop (or the abort
/// reason) plus the phase breakdown the original translation charged.
#[derive(Debug, Clone)]
pub struct MemoizedOutcome {
    /// Mapped loop or abort reason, sharable across sessions and threads.
    pub result: Result<Arc<TranslatedLoop>, TranslationError>,
    /// The exact per-phase cost of the original translation.
    pub breakdown: PhaseBreakdown,
    /// The original translation's hint verdict, so replayed invocations
    /// count validations and degradations bit-identically to fresh ones.
    pub verdict: HintVerdict,
}

/// Hit/miss counters of a memo table, snapshot at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that missed (and were then translated and inserted).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl MemoStats {
    /// Fraction of lookups answered from the table.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memo table mapping [`MemoKey`] → [`MemoizedOutcome`].
///
/// Shared across sessions (and worker threads) via `Arc`; see
/// [`crate::VmSession::with_memo`].
#[derive(Debug, Default)]
pub struct TranslationMemo {
    map: Mutex<HashMap<MemoKey, MemoizedOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TranslationMemo {
    /// Creates an empty memo table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, recording a hit or miss.
    ///
    /// A poisoned lock is recovered, not propagated: every entry is written
    /// atomically under the lock (insert-or-keep of an immutable value), so
    /// a sweep worker that panicked mid-translation can never have left the
    /// map half-updated — the surviving threads keep the memo.
    #[must_use]
    pub fn get(&self, key: &MemoKey) -> Option<MemoizedOutcome> {
        let found = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned();
        let (hits, misses) = global_counters();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hits.inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            misses.inc();
        }
        found
    }

    /// Stores an outcome. First writer wins on a racing key (both computed
    /// the same deterministic result, so either is correct).
    pub fn insert(&self, key: MemoKey, outcome: MemoizedOutcome) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(outcome);
    }

    /// Current hit/miss/size counters.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .map
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> MemoKey {
        MemoKey {
            loop_hash: n,
            translator_fp: 7,
            hints_fp: 0,
        }
    }

    fn failed_outcome() -> MemoizedOutcome {
        MemoizedOutcome {
            result: Err(crate::TranslationError::Unsupported(
                veal_ir::streams::SeparationError::CallInLoop,
            )),
            breakdown: PhaseBreakdown::default(),
            verdict: HintVerdict::default(),
        }
    }

    #[test]
    fn miss_then_hit() {
        let memo = TranslationMemo::new();
        assert!(memo.get(&key(1)).is_none());
        memo.insert(key(1), failed_outcome());
        assert!(memo.get(&key(1)).is_some());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_translators_do_not_collide() {
        let memo = TranslationMemo::new();
        let a = MemoKey {
            loop_hash: 1,
            translator_fp: 1,
            hints_fp: 0,
        };
        memo.insert(a, failed_outcome());
        let b = MemoKey {
            loop_hash: 1,
            translator_fp: 2,
            hints_fp: 0,
        };
        assert!(memo.get(&b).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let memo = Arc::new(TranslationMemo::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let memo = Arc::clone(&memo);
                s.spawn(move || {
                    for i in 0..64u64 {
                        memo.insert(key(i % 8 + t), failed_outcome());
                        let _ = memo.get(&key(i % 8));
                    }
                });
            }
        });
        assert!(memo.stats().entries <= 11);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging_the_sweep() {
        let memo = Arc::new(TranslationMemo::new());
        memo.insert(key(1), failed_outcome());
        // A worker thread panics while holding the lock.
        let poisoner = Arc::clone(&memo);
        let worker = std::thread::spawn(move || {
            let _guard = poisoner.map.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("simulated sweep-worker crash");
        });
        assert!(worker.join().is_err(), "worker must have panicked");
        // Surviving threads keep full use of the memo.
        assert!(memo.get(&key(1)).is_some());
        memo.insert(key(2), failed_outcome());
        assert_eq!(memo.stats().entries, 2);
    }
}
