//! Semantic validation of untrusted static hints (DESIGN.md §9).
//!
//! [`crate::binfmt`] guarantees *transport* integrity: sections are
//! checksummed and structurally well-formed. It cannot guarantee *semantic*
//! validity — a stale binary carries hints computed for a different CCA
//! generation, a hostile one carries hints crafted to break the scheduler.
//! The paper's compatibility story (§4.2) requires that such hints degrade
//! the translation to its dynamic path, never corrupt it.
//!
//! This module is that trust boundary. Each hint kind has a validator:
//!
//! * the **priority** order must be an exact permutation of the separated
//!   graph's schedulable ops — length, membership, and no duplicates (the
//!   modulo scheduler walks the order as-is, so a duplicate would schedule
//!   an op twice);
//! * each **CCA group** must be legal on the *current* [`CcaSpec`] via
//!   [`is_legal_group`], checked against a probe copy of the graph so the
//!   real graph is never mutated by a hint that later turns out bad.
//!
//! Validation is not free, and the paper's cost model must say so: every
//! check is charged to [`Phase::HintDecode`] on the caller's [`CostMeter`].
//! For *valid* hints the charges are exactly the decode charges the
//! translator always paid (`dfg.len() + 4` plus each group's length for
//! CCA, the order length for priority), so accepting a good hint costs the
//! same as before this boundary existed; rejection surfaces as extra
//! dynamic-phase cost in the Figure 10/11 accounting.

use std::collections::HashSet;
use std::fmt;
use veal_cca::{is_legal_group, is_legal_group_current, CcaSpec, LegalityScratch};
use veal_ir::dfg::Dfg;
use veal_ir::{data_oriented_enabled, CostMeter, OpId, Phase};

/// Why a hint failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HintError {
    /// The priority order's length differs from the schedulable-op count.
    PriorityWrongLength {
        /// Schedulable ops in the separated graph.
        expected: usize,
        /// Entries in the hint.
        got: usize,
    },
    /// The priority order names an op that is not schedulable here.
    PriorityUnknownOp(OpId),
    /// The priority order names an op twice.
    PriorityDuplicate(OpId),
    /// A CCA group is empty.
    CcaEmptyGroup,
    /// A CCA group member is outside the graph.
    CcaMemberOutOfRange(OpId),
    /// A CCA group member is not a schedulable op (dead, control, or
    /// already claimed by an earlier group).
    CcaMemberNotSchedulable(OpId),
    /// A CCA group lists the same member twice.
    CcaDuplicateMember(OpId),
    /// A CCA group is not executable as a unit on the current spec.
    CcaIllegalGroup {
        /// Index of the offending group within the hint.
        group: usize,
    },
}

impl fmt::Display for HintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HintError::PriorityWrongLength { expected, got } => {
                write!(
                    f,
                    "priority order has {got} entries, graph has {expected} ops"
                )
            }
            HintError::PriorityUnknownOp(op) => {
                write!(f, "priority order names unknown op {op}")
            }
            HintError::PriorityDuplicate(op) => {
                write!(f, "priority order names op {op} twice")
            }
            HintError::CcaEmptyGroup => write!(f, "empty CCA group"),
            HintError::CcaMemberOutOfRange(op) => {
                write!(f, "CCA group member {op} outside the graph")
            }
            HintError::CcaMemberNotSchedulable(op) => {
                write!(f, "CCA group member {op} is not schedulable")
            }
            HintError::CcaDuplicateMember(op) => {
                write!(f, "CCA group lists member {op} twice")
            }
            HintError::CcaIllegalGroup { group } => {
                write!(f, "CCA group {group} illegal on this spec")
            }
        }
    }
}

impl std::error::Error for HintError {}

/// Which translation step degraded to its dynamic path, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The priority hint failed; the scheduler recomputed the order
    /// dynamically (Swing or Height per policy).
    PriorityHint(HintError),
    /// The CCA hint failed; subgraphs were re-identified dynamically.
    CcaHint(HintError),
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::PriorityHint(e) => write!(f, "priority hint rejected: {e}"),
            DegradeReason::CcaHint(e) => write!(f, "CCA hint rejected: {e}"),
        }
    }
}

/// The outcome of hint validation for one translation.
///
/// `None` means the hint was never validated — absent from the binary, or
/// the policy/hardware does not consume it. That is *not* a degradation:
/// a legacy binary without hints runs the documented hint-less path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HintVerdict {
    /// Priority-hint validation result, if one ran.
    pub priority: Option<Result<(), HintError>>,
    /// CCA-hint validation result, if one ran.
    pub cca: Option<Result<(), HintError>>,
}

impl HintVerdict {
    /// How many hint validations ran.
    #[must_use]
    pub fn checks(&self) -> u64 {
        u64::from(self.priority.is_some()) + u64::from(self.cca.is_some())
    }

    /// Every per-step degradation this translation suffered.
    #[must_use]
    pub fn degradations(&self) -> Vec<DegradeReason> {
        let mut out = Vec::new();
        if let Some(Err(e)) = &self.cca {
            out.push(DegradeReason::CcaHint(e.clone()));
        }
        if let Some(Err(e)) = &self.priority {
            out.push(DegradeReason::PriorityHint(e.clone()));
        }
        out
    }

    /// True when any validated hint was rejected.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self.priority, Some(Err(_))) || matches!(self.cca, Some(Err(_)))
    }
}

/// Validates a CCA hint against `spec` and, only if *every* group is legal,
/// collapses the groups into `dfg`. On any failure `dfg` is untouched and
/// the caller should fall back to dynamic identification.
///
/// Legality is checked on a probe copy with the same sequential-collapse
/// discipline the dynamic identifier uses, so mutually dependent groups
/// cannot both pass, and a group made illegal by an earlier collapse
/// (convexity through a new pseudo-op, say) is caught before the real
/// graph changes. [`Dfg::collapse`] panics on malformed members by
/// contract; validation here is what makes that contract hold for
/// untrusted input.
///
/// # Errors
///
/// The first [`HintError`] encountered, in group order.
pub fn verify_and_apply_cca(
    dfg: &mut Dfg,
    spec: &CcaSpec,
    groups: &[Vec<OpId>],
    meter: &mut CostMeter,
) -> Result<usize, HintError> {
    // Decoding the procedural abstraction is a linear pass.
    meter.charge(Phase::HintDecode, dfg.len() as u64 + 4);
    let mut probe = dfg.clone();
    // Same legality verdict either way (see `is_legal_group_current`); the
    // scratch-based path skips rebuilding the probe's condensation after
    // every collapse. Neither kernel touches the meter, so charges stay
    // byte-identical across arms.
    let mut scratch = data_oriented_enabled().then(LegalityScratch::new);
    for (gi, g) in groups.iter().enumerate() {
        meter.charge(Phase::HintDecode, g.len() as u64);
        if g.is_empty() {
            return Err(HintError::CcaEmptyGroup);
        }
        let mut seen = HashSet::with_capacity(g.len());
        for &m in g {
            if m.index() >= probe.len() {
                return Err(HintError::CcaMemberOutOfRange(m));
            }
            if !probe.node(m).is_schedulable() {
                return Err(HintError::CcaMemberNotSchedulable(m));
            }
            if !seen.insert(m) {
                return Err(HintError::CcaDuplicateMember(m));
            }
        }
        let legal = match scratch.as_mut() {
            Some(s) => is_legal_group_current(&probe, spec, g, s),
            None => {
                let cond = probe.condensation();
                is_legal_group(&probe, spec, g, &cond)
            }
        };
        if !legal {
            return Err(HintError::CcaIllegalGroup { group: gi });
        }
        probe.collapse(g);
    }
    // Every group vetted. The probe went through exactly the collapse
    // sequence the caller asked for (collapse is deterministic and the
    // legality checks only read), so it IS the post-apply graph — move it
    // in rather than replaying the collapses a second time.
    *dfg = probe;
    Ok(groups.len())
}

/// Validates a priority hint: `order` must be an exact permutation of
/// `dfg`'s schedulable ops.
///
/// # Errors
///
/// The first [`HintError`] encountered, scanning the order left to right.
pub fn verify_priority(dfg: &Dfg, order: &[OpId], meter: &mut CostMeter) -> Result<(), HintError> {
    meter.charge(Phase::HintDecode, order.len() as u64);
    let expected: HashSet<OpId> = dfg.schedulable_ops().collect();
    if order.len() != expected.len() {
        return Err(HintError::PriorityWrongLength {
            expected: expected.len(),
            got: order.len(),
        });
    }
    let mut seen = HashSet::with_capacity(order.len());
    for &op in order {
        if !expected.contains(&op) {
            return Err(HintError::PriorityUnknownOp(op));
        }
        if !seen.insert(op) {
            return Err(HintError::PriorityDuplicate(op));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::compute_hints;
    use veal_accel::AcceleratorConfig;
    use veal_ir::streams::separate;
    use veal_ir::{DfgBuilder, LoopBody, Opcode};

    fn media_loop() -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let k = b.live_in();
        let m = b.op(Opcode::Mul, &[x, k]);
        let a = b.op(Opcode::And, &[m, k]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let o = b.op(Opcode::Xor, &[s, a]);
        b.store_stream(1, o);
        LoopBody::new("media", b.finish())
    }

    fn separated(body: &LoopBody) -> Dfg {
        let mut meter = CostMeter::new();
        separate(&body.dfg, &mut meter).expect("separable").dfg
    }

    #[test]
    fn valid_hints_pass_and_charge_exactly_the_decode_cost() {
        let la = AcceleratorConfig::paper_design();
        let spec = CcaSpec::paper();
        let body = media_loop();
        let hints = compute_hints(&body, &la, Some(&spec));
        let groups = hints.cca_groups.as_ref().expect("cca hint");
        let order = hints.priority.as_ref().expect("priority hint");

        let mut dfg = separated(&body);
        let pre_len = dfg.len();
        let mut meter = CostMeter::new();
        let n = verify_and_apply_cca(&mut dfg, &spec, groups, &mut meter)
            .expect("valid groups accepted");
        assert_eq!(n, groups.len());
        assert_eq!(dfg.len(), pre_len + groups.len(), "one pseudo-op per group");

        let expected_cca: u64 =
            pre_len as u64 + 4 + groups.iter().map(|g| g.len() as u64).sum::<u64>();
        assert_eq!(meter.breakdown().get(Phase::HintDecode), expected_cca);

        verify_priority(&dfg, order, &mut meter).expect("valid order accepted");
        assert_eq!(
            meter.breakdown().get(Phase::HintDecode),
            expected_cca + order.len() as u64
        );
        // Validation charges nothing outside HintDecode.
        assert_eq!(meter.total(), meter.breakdown().get(Phase::HintDecode));
    }

    #[test]
    fn priority_permutation_violations_each_get_their_variant() {
        let body = media_loop();
        let dfg = separated(&body);
        let mut order: Vec<OpId> = dfg.schedulable_ops().collect();
        let mut meter = CostMeter::new();

        let mut short = order.clone();
        short.pop();
        assert!(matches!(
            verify_priority(&dfg, &short, &mut meter),
            Err(HintError::PriorityWrongLength { .. })
        ));

        let mut dup = order.clone();
        let n = dup.len();
        dup[n - 1] = dup[0];
        assert!(matches!(
            verify_priority(&dfg, &dup, &mut meter),
            Err(HintError::PriorityDuplicate(_))
        ));

        let n = order.len();
        order[n - 1] = OpId::new(9999);
        assert!(matches!(
            verify_priority(&dfg, &order, &mut meter),
            Err(HintError::PriorityUnknownOp(_))
        ));
    }

    #[test]
    fn cca_violations_leave_the_graph_untouched() {
        let spec = CcaSpec::paper();
        let body = media_loop();
        let good = compute_hints(&body, &AcceleratorConfig::paper_design(), Some(&spec));
        let good_group = good.cca_groups.expect("cca hint").remove(0);

        let cases: Vec<(Vec<Vec<OpId>>, HintError)> = vec![
            (vec![vec![]], HintError::CcaEmptyGroup),
            (
                vec![vec![OpId::new(9999)]],
                HintError::CcaMemberOutOfRange(OpId::new(9999)),
            ),
            (
                vec![vec![good_group[0], good_group[0]]],
                HintError::CcaDuplicateMember(good_group[0]),
            ),
            // The same (legal) group twice: the second sees its members
            // tombstoned by the first collapse on the probe.
            (
                vec![good_group.clone(), good_group.clone()],
                HintError::CcaMemberNotSchedulable(good_group[0]),
            ),
        ];
        for (groups, want) in cases {
            let mut dfg = separated(&body);
            let pre_len = dfg.len();
            let pre_edges = dfg.edges().to_vec();
            let mut meter = CostMeter::new();
            let got = verify_and_apply_cca(&mut dfg, &spec, &groups, &mut meter)
                .expect_err("invalid hint rejected");
            assert_eq!(got, want);
            assert_eq!(dfg.len(), pre_len, "graph untouched on rejection");
            assert_eq!(dfg.edges(), &pre_edges[..]);
        }
    }

    #[test]
    fn cross_spec_group_is_illegal_not_a_panic() {
        // Hints computed for the wide paper CCA, validated on the narrow
        // one: the stale-binary case the paper's compatibility story is
        // about.
        let body = media_loop();
        let wide = compute_hints(
            &body,
            &AcceleratorConfig::paper_design(),
            Some(&CcaSpec::paper()),
        );
        let groups = wide.cca_groups.expect("cca hint");
        let mut dfg = separated(&body);
        let mut meter = CostMeter::new();
        let err = verify_and_apply_cca(&mut dfg, &CcaSpec::narrow(), &groups, &mut meter)
            .expect_err("wide group illegal on narrow spec");
        assert!(matches!(err, HintError::CcaIllegalGroup { .. }));
    }

    #[test]
    fn verdict_counts_checks_and_degradations() {
        let ok = HintVerdict {
            priority: Some(Ok(())),
            cca: Some(Ok(())),
        };
        assert_eq!(ok.checks(), 2);
        assert!(!ok.is_degraded());
        assert!(ok.degradations().is_empty());

        let mixed = HintVerdict {
            priority: Some(Err(HintError::PriorityDuplicate(OpId::new(1)))),
            cca: None,
        };
        assert_eq!(mixed.checks(), 1);
        assert!(mixed.is_degraded());
        assert_eq!(mixed.degradations().len(), 1);
        assert!(matches!(
            mixed.degradations()[0],
            DegradeReason::PriorityHint(HintError::PriorityDuplicate(_))
        ));

        let silent = HintVerdict::default();
        assert_eq!(silent.checks(), 0);
        assert!(!silent.is_degraded());
    }
}
