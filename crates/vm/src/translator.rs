//! The dynamic translation pipeline (paper §4.1 / §4.2).

use crate::hints::StaticHints;
use crate::verify::{verify_and_apply_cca, verify_priority, HintVerdict};
use std::fmt;
use std::sync::OnceLock;
use veal_accel::{AcceleratorConfig, AcceleratorFamily};
use veal_cca::{map_cca, CcaSpec};
use veal_ir::dfg::Dfg;
use veal_ir::meter::ALL_PHASES;
use veal_ir::streams::{separate, SeparationError, StreamSummary};
use veal_ir::{CostMeter, LoopBody, OpId, Phase, PhaseBreakdown};
use veal_obs::{metrics, Counter, Histogram, Trace};
use veal_sched::{
    modulo_schedule, PriorityKind, ScheduleError, ScheduleOptions, ScheduledLoop, SymbolicSchedule,
};

/// Wall-clock per [`Translator::translate`] call. Wall time lives only in
/// the metrics registry — never in trace events — and is only measured
/// when a sink is installed.
fn translate_wall_ns() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| metrics::histogram("vm.translate.wall_ns"))
}

/// Abstract units per translation (total across phases).
fn translate_units_hist() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| metrics::histogram("vm.translate.units"))
}

/// Cumulative abstract units per phase, in [`ALL_PHASES`] order. These are
/// always on (one relaxed add per non-zero phase per translation); they
/// read the finished meter and never feed it.
fn phase_unit_counters() -> &'static [&'static Counter; 10] {
    static C: OnceLock<[&'static Counter; 10]> = OnceLock::new();
    C.get_or_init(|| {
        [
            metrics::counter("vm.translate.units.loop-ident"),
            metrics::counter("vm.translate.units.stream-sep"),
            metrics::counter("vm.translate.units.cca-mapping"),
            metrics::counter("vm.translate.units.res-mii"),
            metrics::counter("vm.translate.units.rec-mii"),
            metrics::counter("vm.translate.units.priority"),
            metrics::counter("vm.translate.units.scheduling"),
            metrics::counter("vm.translate.units.reg-assign"),
            metrics::counter("vm.translate.units.hint-decode"),
            metrics::counter("vm.translate.units.concretize"),
        ]
    })
}

/// Wall-clock per [`Translator::concretize`] call (family-mode dispatch).
fn concretize_wall_ns() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| metrics::histogram("vm.concretize.wall_ns"))
}

/// Process-global count of [`Translator::concretize`] calls, always on
/// (benchmarks read the delta around a family-mode arm).
fn concretize_calls() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("vm.translate.concretizations"))
}

fn record_phase_units(breakdown: &PhaseBreakdown) {
    let counters = phase_unit_counters();
    debug_assert_eq!(counters.len(), ALL_PHASES.len());
    for (i, &p) in ALL_PHASES.iter().enumerate() {
        let units = breakdown.get(p);
        if units != 0 {
            counters[i].add(units);
        }
    }
    translate_units_hist().record(breakdown.total());
}

/// Which translation steps use statically encoded results (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationPolicy {
    /// Use CCA subgraphs from the binary's procedural-abstraction hints.
    pub static_cca: bool,
    /// Use the scheduling order from the binary's priority data section.
    pub static_priority: bool,
    /// Priority function when computing dynamically.
    pub priority: PriorityKind,
}

impl TranslationPolicy {
    /// Everything computed at runtime with the Swing priority — the paper's
    /// "Fully Dynamic" configuration.
    #[must_use]
    pub fn fully_dynamic() -> Self {
        TranslationPolicy {
            static_cca: false,
            static_priority: false,
            priority: PriorityKind::Swing,
        }
    }

    /// Fully dynamic with the cheaper height-based priority — the paper's
    /// "Fully Dynamic Height Priority" configuration.
    #[must_use]
    pub fn fully_dynamic_height() -> Self {
        TranslationPolicy {
            static_cca: false,
            static_priority: false,
            priority: PriorityKind::Height,
        }
    }

    /// CCA mapping and priority decoded from the binary — the paper's
    /// "Static CCA/Priority" configuration.
    #[must_use]
    pub fn static_hints() -> Self {
        TranslationPolicy {
            static_cca: true,
            static_priority: true,
            priority: PriorityKind::Swing,
        }
    }
}

impl Default for TranslationPolicy {
    fn default() -> Self {
        Self::fully_dynamic()
    }
}

/// A loop successfully mapped onto the accelerator.
#[derive(Debug, Clone)]
pub struct TranslatedLoop {
    /// The separated (and possibly CCA-collapsed) graph the schedule was
    /// built over — what an independent checker or differential oracle
    /// needs to audit the mapping.
    pub dfg: Dfg,
    /// The schedule and register assignment.
    pub scheduled: ScheduledLoop,
    /// Stream requirements.
    pub streams: StreamSummary,
    /// Size of the generated accelerator control, in 32-bit words.
    pub control_words: usize,
    /// Number of CCA subgraphs in use.
    pub cca_groups: usize,
    /// Ops executing on the accelerator (post-collapse).
    pub accel_ops: usize,
}

impl TranslatedLoop {
    /// Accelerator cycles to run `trips` iterations, excluding invocation
    /// overhead: `(SC + trips − 1) · II`.
    #[must_use]
    pub fn kernel_cycles(&self, trips: u64) -> u64 {
        self.scheduled.cycles(trips)
    }
}

/// Why translation aborted (the loop then runs on the baseline CPU).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslationError {
    /// Control/address separation failed.
    Unsupported(SeparationError),
    /// Modulo scheduling or register assignment failed.
    Schedule(ScheduleError),
}

impl fmt::Display for TranslationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslationError::Unsupported(e) => write!(f, "unsupported loop: {e}"),
            TranslationError::Schedule(e) => write!(f, "scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for TranslationError {}

/// The result of one translation attempt plus its measured cost.
#[derive(Debug, Clone)]
pub struct TranslationOutcome {
    /// Mapped loop or abort reason.
    pub result: Result<TranslatedLoop, TranslationError>,
    /// Per-phase abstract instruction counts (Figure 8's measurement).
    pub breakdown: PhaseBreakdown,
    /// What hint validation concluded (see [`crate::verify`]).
    pub verdict: HintVerdict,
}

impl TranslationOutcome {
    /// Total translation cost in abstract instructions (≈ host cycles).
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.breakdown.total()
    }
}

/// The configuration-independent prefix of one loop's translation, valid
/// for every member of an [`AcceleratorFamily`]: the separated (and
/// CCA-collapsed) graph, the hint verdict, the verified static order, the
/// exact charges the prefix made, and the [`SymbolicSchedule`] whose caches
/// answer RecMII and priority per concretization.
///
/// Built once per `(loop, family, hints)` by
/// [`Translator::translate_symbolic`] and stored in the family-keyed memo
/// ([`crate::memo::MemoEntry::Family`]); every session dispatching on a
/// member configuration turns it into a concrete [`TranslationOutcome`]
/// with [`Translator::concretize`], bit-identical to what
/// [`Translator::translate`] would have produced directly.
#[derive(Debug)]
pub struct SymbolicTranslation {
    /// Ops in the original (pre-separation) body; drives the deterministic
    /// concretize charge.
    pub(crate) loop_len: usize,
    /// Exact charges of the shared prefix (loop identification through
    /// hint verification) — replayed verbatim into every concretization.
    pub(crate) prefix: PhaseBreakdown,
    /// The original hint verdict (hint validation is config-independent).
    pub(crate) verdict: HintVerdict,
    /// Prefix products, or the separation error that ended translation.
    pub(crate) body: Result<SymbolicBody, SeparationError>,
}

#[derive(Debug)]
pub(crate) struct SymbolicBody {
    pub(crate) dfg: Dfg,
    pub(crate) summary: StreamSummary,
    pub(crate) cca_groups: usize,
    pub(crate) static_order: Option<Vec<OpId>>,
    pub(crate) sym: SymbolicSchedule,
}

impl SymbolicTranslation {
    /// Whether the prefix succeeded (a failed separation concretizes to the
    /// same `Unsupported` outcome at every configuration).
    #[must_use]
    pub fn is_separable(&self) -> bool {
        self.body.is_ok()
    }

    /// Distinct priority orders cached so far (one per MII observed across
    /// concretizations; telemetry).
    #[must_use]
    pub fn cached_orders(&self) -> usize {
        self.body.as_ref().map_or(0, |b| b.sym.cached_orders())
    }
}

/// Everything the configuration-independent prefix produces: the separated
/// compute graph, its stream summary, the CCA group count, the hint-decoded
/// priority order (when the policy accepted one), and the hint verdict.
type PrefixParts = (Dfg, StreamSummary, usize, Option<Vec<OpId>>, HintVerdict);

/// The VM's loop translator for one accelerator configuration.
#[derive(Debug, Clone)]
pub struct Translator {
    config: AcceleratorConfig,
    cca: Option<CcaSpec>,
    policy: TranslationPolicy,
    /// Observability handle; disabled by default. Deliberately excluded
    /// from [`Translator::fingerprint`] — tracing can never change what a
    /// translator produces, so it must not split memo keys.
    trace: Trace,
}

impl Translator {
    /// Creates a translator targeting `config`, with `cca` describing the
    /// accelerator's CCA (if any), under `policy`.
    #[must_use]
    pub fn new(config: AcceleratorConfig, cca: Option<CcaSpec>, policy: TranslationPolicy) -> Self {
        Translator {
            config,
            cca,
            policy,
            trace: Trace::null(),
        }
    }

    /// Attaches a trace handle (wall-clock profiling of `translate`).
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    pub(crate) fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The target configuration.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The accelerator's CCA spec, if it has one.
    #[must_use]
    pub fn cca(&self) -> Option<&CcaSpec> {
        self.cca.as_ref()
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> TranslationPolicy {
        self.policy
    }

    /// Stable fingerprint over everything that determines this translator's
    /// output for a given `(body, hints)` pair: the accelerator
    /// configuration, the CCA shape (or its absence), and the policy bits.
    /// Combined with [`veal_ir::LoopBody::content_hash`] and
    /// [`crate::StaticHints::fingerprint`], it keys memoized translations.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = veal_ir::rng::Fnv64::new();
        h.write_u64(self.config.fingerprint());
        match &self.cca {
            None => h.write_u8(0),
            Some(spec) => {
                h.write_u8(1);
                h.write_u64(spec.fingerprint());
            }
        }
        h.write_u8(u8::from(self.policy.static_cca));
        h.write_u8(u8::from(self.policy.static_priority));
        h.write_u8(match self.policy.priority {
            PriorityKind::Swing => 0,
            PriorityKind::Height => 1,
        });
        h.finish()
    }

    /// Runs the configuration-independent prefix of the pipeline: loop
    /// identification, control/stream separation, CCA mapping (decoded from
    /// hints when the policy and binary allow, recomputed otherwise), and
    /// static-priority verification. Within a family fixing the latency
    /// model and CCA presence, nothing here reads unit/register/II counts —
    /// which is what makes [`Translator::translate_symbolic`] sound.
    fn prefix(
        &self,
        body: &LoopBody,
        hints: &StaticHints,
        meter: &mut CostMeter,
    ) -> Result<PrefixParts, SeparationError> {
        // Loop identification: linear scan of the loop's instructions
        // (region formation already found the backward branch).
        meter.charge(Phase::LoopIdent, body.dfg.len() as u64 + 8);

        let sep = separate(&body.dfg, meter)?;
        let summary = sep.summary();
        let mut dfg = sep.dfg;
        let mut verdict = HintVerdict::default();

        // --- CCA mapping -------------------------------------------------
        let mut cca_groups = 0usize;
        if let Some(spec) = &self.cca {
            if self.policy.static_cca {
                if let Some(groups) = &hints.cca_groups {
                    // Untrusted procedural abstraction: validate every group
                    // on the current spec before any of them collapses
                    // (vm::verify). A hint that fails — stale, corrupted,
                    // hostile — degrades this step to the dynamic
                    // identifier, exactly the fully-dynamic path (paper
                    // §4.2's compatibility story), and is recorded in the
                    // verdict.
                    match verify_and_apply_cca(&mut dfg, spec, groups, meter) {
                        Ok(n) => {
                            cca_groups = n;
                            verdict.cca = Some(Ok(()));
                        }
                        Err(e) => {
                            verdict.cca = Some(Err(e));
                            cca_groups = map_cca(&mut dfg, spec, meter).len();
                        }
                    }
                }
                // No hints in the binary: a legacy binary under a static
                // policy leaves the CCA idle for this loop.
            } else {
                let groups = map_cca(&mut dfg, spec, meter);
                cca_groups = groups.len();
            }
        }

        // --- Static priority ---------------------------------------------
        let static_order = if self.policy.static_priority {
            match &hints.priority {
                Some(order) => match verify_priority(&dfg, order, meter) {
                    Ok(()) => {
                        verdict.priority = Some(Ok(()));
                        Some(order.clone())
                    }
                    Err(e) => {
                        // Not a permutation of this graph's ops (different
                        // CCA decisions, evolved hardware, corruption):
                        // degrade to dynamic priority.
                        verdict.priority = Some(Err(e));
                        None
                    }
                },
                None => None,
            }
        } else {
            None
        };

        Ok((dfg, summary, cca_groups, static_order, verdict))
    }

    /// Translates one loop body, charging every phase to a fresh meter.
    ///
    /// The pipeline mirrors Figure 5's walkthrough: loop identification,
    /// control/stream separation, CCA mapping (decoded from hints when the
    /// policy and binary allow, recomputed otherwise), MII, priority
    /// (likewise), scheduling, register assignment.
    #[must_use]
    pub fn translate(&self, body: &LoopBody, hints: &StaticHints) -> TranslationOutcome {
        let _wall = self.trace.timer(translate_wall_ns());
        let mut meter = CostMeter::new();
        let (dfg, summary, cca_groups, static_order, verdict) =
            match self.prefix(body, hints, &mut meter) {
                Ok(p) => p,
                Err(e) => {
                    record_phase_units(meter.breakdown());
                    return TranslationOutcome {
                        result: Err(TranslationError::Unsupported(e)),
                        breakdown: *meter.breakdown(),
                        verdict: HintVerdict::default(),
                    };
                }
            };

        let options = ScheduleOptions {
            priority: self.policy.priority,
            static_order,
            streams: Some(summary),
        };
        let result = match modulo_schedule(&dfg, &self.config, &options, &mut meter) {
            Ok(scheduled) => {
                let control_words = scheduled.schedule.control_words(&self.config);
                Ok(TranslatedLoop {
                    accel_ops: dfg.schedulable_ops().count(),
                    scheduled,
                    streams: summary,
                    control_words,
                    cca_groups,
                    dfg,
                })
            }
            Err(e) => Err(TranslationError::Schedule(e)),
        };
        record_phase_units(meter.breakdown());
        TranslationOutcome {
            result,
            breakdown: *meter.breakdown(),
            verdict,
        }
    }

    /// Lowers `body` all the way to a host-executable LoopVM artifact
    /// (see [`veal_exec`]): translate, then compile the **original**
    /// graph in schedule order. The original graph is what the golden
    /// semantics are stated over — the separated/collapsed view
    /// re-annotates streams and may hold opaque `Cca` nodes — while the
    /// schedule shares its id space, so it can still order the bytecode.
    ///
    /// Loops the accelerator rejects compile anyway (topological order):
    /// the host backend executes everything the reference interpreter
    /// can, whether or not the LA maps it.
    ///
    /// # Errors
    ///
    /// [`veal_exec::CompileError`] when the body itself is not
    /// executable (opaque call, cyclic distance-0 subgraph, or an
    /// arity-malformed op).
    pub fn compile_executable(
        &self,
        body: &LoopBody,
        hints: &StaticHints,
    ) -> Result<veal_exec::ExecutableLoop, veal_exec::CompileError> {
        let schedule = match self.translate(body, hints).result {
            Ok(t) => Some(t.scheduled.schedule),
            Err(_) => None,
        };
        veal_exec::ExecutableLoop::compile(&body.dfg, schedule.as_ref())
    }

    /// Runs the configuration-independent prefix once and packages it as a
    /// [`SymbolicTranslation`], reusable across every configuration of a
    /// family that shares this translator's latency model and CCA presence.
    ///
    /// The suffix (ResMII, scheduling, register assignment) is *not* run —
    /// [`Translator::concretize`] runs it per member configuration, and the
    /// combined outcome is bit-identical to [`Translator::translate`].
    #[must_use]
    pub fn translate_symbolic(&self, body: &LoopBody, hints: &StaticHints) -> SymbolicTranslation {
        let mut meter = CostMeter::new();
        match self.prefix(body, hints, &mut meter) {
            Ok((dfg, summary, cca_groups, static_order, verdict)) => SymbolicTranslation {
                loop_len: body.dfg.len(),
                prefix: *meter.breakdown(),
                verdict,
                body: Ok(SymbolicBody {
                    dfg,
                    summary,
                    cca_groups,
                    static_order,
                    sym: SymbolicSchedule::new(),
                }),
            },
            Err(e) => SymbolicTranslation {
                loop_len: body.dfg.len(),
                prefix: *meter.breakdown(),
                verdict: HintVerdict::default(),
                body: Err(e),
            },
        }
    }

    /// Instantiates a symbolic translation at this translator's concrete
    /// configuration: replays the prefix charges verbatim, answers RecMII
    /// and priority from the symbolic caches, and runs only the
    /// configuration-dependent suffix for real (O(ops), on the scheduler's
    /// thread-local scratch pool).
    ///
    /// The returned outcome — result, breakdown, verdict — is bit-identical
    /// to [`Translator::translate`] on the same `(body, hints)`. The real
    /// host work of concretization is charged as [`Phase::Concretize`] to
    /// `concretize_meter` (the session-level meter), never into the
    /// outcome's own breakdown: point translations have no such step, and
    /// family-mode statistics must replay exactly.
    #[must_use]
    pub fn concretize(
        &self,
        sym: &SymbolicTranslation,
        concretize_meter: &mut CostMeter,
    ) -> TranslationOutcome {
        let _wall = self.trace.timer(concretize_wall_ns());
        // Deterministic concretize charge: one pass over the loop plus
        // fixed per-phase bookkeeping.
        let units = sym.loop_len as u64 + ALL_PHASES.len() as u64;
        concretize_meter.charge(Phase::Concretize, units);
        phase_unit_counters()[ALL_PHASES.len() - 1].add(units);
        concretize_calls().inc();

        let mut meter = CostMeter::new();
        for &p in ALL_PHASES {
            let c = sym.prefix.get(p);
            if c != 0 {
                meter.charge(p, c);
            }
        }
        let result = match &sym.body {
            Err(e) => Err(TranslationError::Unsupported(e.clone())),
            Ok(b) => {
                let options = ScheduleOptions {
                    priority: self.policy.priority,
                    static_order: b.static_order.clone(),
                    streams: Some(b.summary),
                };
                match veal_sched::concretize(&b.sym, &b.dfg, &self.config, &options, &mut meter) {
                    Ok(scheduled) => {
                        let control_words = scheduled.schedule.control_words(&self.config);
                        Ok(TranslatedLoop {
                            accel_ops: b.dfg.schedulable_ops().count(),
                            scheduled,
                            streams: b.summary,
                            control_words,
                            cca_groups: b.cca_groups,
                            dfg: b.dfg.clone(),
                        })
                    }
                    Err(e) => Err(TranslationError::Schedule(e)),
                }
            }
        };
        TranslationOutcome {
            result,
            breakdown: *meter.breakdown(),
            verdict: sym.verdict.clone(),
        }
    }

    /// Family analogue of [`Translator::fingerprint`]: stable over
    /// everything that determines a *symbolic* translation for a given
    /// `(body, hints)` pair — the family's axis ranges and latency model,
    /// the CCA shape, and the policy bits. A leading domain tag keeps
    /// family keys disjoint from point keys even for a degenerate
    /// single-point family, so the two entry kinds can never coalesce in a
    /// shared memo.
    #[must_use]
    pub fn family_fingerprint(&self, family: &AcceleratorFamily) -> u64 {
        let mut h = veal_ir::rng::Fnv64::new();
        h.write_u8(0xFA);
        h.write_u64(family.fingerprint());
        match &self.cca {
            None => h.write_u8(0),
            Some(spec) => {
                h.write_u8(1);
                h.write_u64(spec.fingerprint());
            }
        }
        h.write_u8(u8::from(self.policy.static_cca));
        h.write_u8(u8::from(self.policy.static_priority));
        h.write_u8(match self.policy.priority {
            PriorityKind::Swing => 0,
            PriorityKind::Height => 1,
        });
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::compute_hints;
    use veal_ir::{DfgBuilder, Opcode};

    /// A loop with CCA-friendly logic, a mul, and streams.
    fn media_loop() -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let k = b.live_in();
        let m = b.op(Opcode::Mul, &[x, k]);
        let a = b.op(Opcode::And, &[m, k]);
        let s = b.op(Opcode::Sub, &[a, x]);
        let o = b.op(Opcode::Xor, &[s, a]);
        b.store_stream(1, o);
        LoopBody::new("media", b.finish())
    }

    #[test]
    fn fully_dynamic_translates_and_charges_cca_and_priority() {
        let t = Translator::new(
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
            TranslationPolicy::fully_dynamic(),
        );
        let out = t.translate(&media_loop(), &StaticHints::none());
        let tl = out.result.expect("translates");
        assert_eq!(tl.cca_groups, 1);
        assert!(out.breakdown.get(Phase::CcaMapping) > 0);
        assert!(out.breakdown.get(Phase::Priority) > 0);
        assert_eq!(out.breakdown.get(Phase::HintDecode), 0);
    }

    #[test]
    fn static_hints_shift_cost_to_decode() {
        let la = AcceleratorConfig::paper_design();
        let spec = CcaSpec::paper();
        let body = media_loop();
        let hints = compute_hints(&body, &la, Some(&spec));
        let t = Translator::new(la, Some(spec), TranslationPolicy::static_hints());
        let out = t.translate(&body, &hints);
        let tl = out.result.expect("translates");
        assert_eq!(tl.cca_groups, 1);
        assert_eq!(out.breakdown.get(Phase::CcaMapping), 0);
        assert_eq!(out.breakdown.get(Phase::Priority), 0);
        assert!(out.breakdown.get(Phase::HintDecode) > 0);
    }

    #[test]
    fn static_hints_much_cheaper_than_dynamic() {
        let la = AcceleratorConfig::paper_design();
        let spec = CcaSpec::paper();
        let body = media_loop();
        let hints = compute_hints(&body, &la, Some(&spec));
        let dyn_t = Translator::new(
            la.clone(),
            Some(spec.clone()),
            TranslationPolicy::fully_dynamic(),
        );
        let sta_t = Translator::new(la, Some(spec), TranslationPolicy::static_hints());
        let dyn_cost = dyn_t.translate(&body, &StaticHints::none()).cost();
        let sta_cost = sta_t.translate(&body, &hints).cost();
        assert!(
            sta_cost * 2 < dyn_cost,
            "static {sta_cost} vs dynamic {dyn_cost}"
        );
    }

    #[test]
    fn legacy_binary_without_hints_still_translates_under_static_policy() {
        let t = Translator::new(
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
            TranslationPolicy::static_hints(),
        );
        let out = t.translate(&media_loop(), &StaticHints::none());
        let tl = out.result.expect("translates without hints");
        assert_eq!(tl.cca_groups, 0); // CCA idle, ops run individually
    }

    #[test]
    fn hints_for_wide_cca_degrade_gracefully_on_narrow_cca() {
        // Hints computed for the paper CCA; hardware has the narrow CCA.
        let la = AcceleratorConfig::paper_design();
        let body = media_loop();
        let hints = compute_hints(&body, &la, Some(&CcaSpec::paper()));
        let t = Translator::new(
            la.clone(),
            Some(CcaSpec::narrow()),
            TranslationPolicy::static_hints(),
        );
        let out = t.translate(&body, &hints);
        assert!(out.result.is_ok(), "must still run: {:?}", out.result);
        // The cross-spec CCA hint is rejected as a whole and the step
        // degrades to dynamic identification; the schedule must equal what
        // the dynamic identifier produces on this hardware.
        assert!(matches!(out.verdict.cca, Some(Err(_))));
        let dynamic = Translator::new(
            la,
            Some(CcaSpec::narrow()),
            TranslationPolicy::fully_dynamic(),
        )
        .translate(&body, &StaticHints::none());
        let a = out.result.unwrap();
        let b = dynamic.result.unwrap();
        assert_eq!(a.cca_groups, b.cca_groups);
        assert_eq!(a.scheduled.schedule.ii, b.scheduled.schedule.ii);
    }

    #[test]
    fn bad_priority_hint_degrades_and_matches_dynamic_schedule() {
        let la = AcceleratorConfig::paper_design();
        let body = media_loop();
        let t = Translator::new(la, None, TranslationPolicy::static_hints());
        // Duplicate entry: covers every op id yet is not a permutation —
        // the scheduler would visit one op twice.
        let mut order: Vec<veal_ir::OpId> = {
            let mut meter = CostMeter::new();
            separate(&body.dfg, &mut meter)
                .expect("separable")
                .dfg
                .schedulable_ops()
                .collect()
        };
        let n = order.len();
        order[n - 1] = order[0];
        let bad = StaticHints {
            priority: Some(order),
            cca_groups: None,
        };
        let degraded = t.translate(&body, &bad);
        assert!(matches!(degraded.verdict.priority, Some(Err(_))));
        let dynamic = t.translate(&body, &StaticHints::none());
        assert!(!dynamic.verdict.is_degraded());
        let a = degraded.result.expect("degraded path translates");
        let b = dynamic.result.expect("dynamic path translates");
        assert_eq!(
            a.scheduled.schedule.entries(),
            b.scheduled.schedule.entries(),
            "degraded schedule must equal the fully dynamic one"
        );
        // Degradation costs: the failed validation is on the meter, plus
        // the dynamic priority it fell back to.
        assert!(degraded.breakdown.get(Phase::HintDecode) > 0);
        assert!(degraded.breakdown.get(Phase::Priority) > 0);
    }

    #[test]
    fn valid_hint_verdict_records_two_clean_checks() {
        let la = AcceleratorConfig::paper_design();
        let spec = CcaSpec::paper();
        let body = media_loop();
        let hints = compute_hints(&body, &la, Some(&spec));
        let t = Translator::new(la, Some(spec), TranslationPolicy::static_hints());
        let out = t.translate(&body, &hints);
        assert_eq!(out.verdict.checks(), 2);
        assert!(!out.verdict.is_degraded());
    }

    #[test]
    fn no_cca_in_system_skips_mapping_cost() {
        let t = Translator::new(
            AcceleratorConfig::builder().cca_units(0).build(),
            None,
            TranslationPolicy::fully_dynamic(),
        );
        let out = t.translate(&media_loop(), &StaticHints::none());
        assert!(out.result.is_ok());
        assert_eq!(out.breakdown.get(Phase::CcaMapping), 0);
    }

    #[test]
    fn unsupported_loop_reports_unsupported() {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        b.op(Opcode::Call, &[x]);
        let body = LoopBody::new("caller", b.finish());
        let t = Translator::new(
            AcceleratorConfig::paper_design(),
            None,
            TranslationPolicy::fully_dynamic(),
        );
        let out = t.translate(&body, &StaticHints::none());
        assert!(matches!(
            out.result,
            Err(TranslationError::Unsupported(SeparationError::CallInLoop))
        ));
    }

    #[test]
    fn too_many_streams_rejected() {
        let mut b = DfgBuilder::new();
        let mut acc = b.load_stream(0);
        for i in 1..20 {
            let x = b.load_stream(i);
            acc = b.op(Opcode::Add, &[acc, x]);
        }
        b.mark_live_out(acc);
        let body = LoopBody::new("wide", b.finish());
        let t = Translator::new(
            AcceleratorConfig::paper_design(),
            None,
            TranslationPolicy::fully_dynamic(),
        );
        let out = t.translate(&body, &StaticHints::none());
        assert!(matches!(
            out.result,
            Err(TranslationError::Schedule(ScheduleError::Capability(_)))
        ));
    }

    #[test]
    fn height_priority_cheaper_than_swing() {
        let body = media_loop();
        let swing = Translator::new(
            AcceleratorConfig::paper_design(),
            None,
            TranslationPolicy::fully_dynamic(),
        );
        let height = Translator::new(
            AcceleratorConfig::paper_design(),
            None,
            TranslationPolicy::fully_dynamic_height(),
        );
        let cs = swing.translate(&body, &StaticHints::none()).cost();
        let ch = height.translate(&body, &StaticHints::none()).cost();
        assert!(ch < cs, "height {ch} vs swing {cs}");
    }
}
