//! A stateful VM session: translator + code cache + statistics.

use crate::cache::{CacheStats, CodeCache};
use crate::hints::StaticHints;
use crate::memo::{MemoBackend, MemoEntry, MemoKey, MemoizedOutcome, TranslationMemo};
use crate::translator::{TranslatedLoop, TranslationOutcome, Translator};
use crate::verify::DegradeReason;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};
use veal_accel::AcceleratorFamily;
use veal_ir::meter::ALL_PHASES;
use veal_ir::{CostMeter, LoopBody, Phase, PhaseBreakdown};
use veal_obs::{metrics, Event, HintKind, Histogram, Trace, TranslateStatus};

fn invoke_wall_ns() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| metrics::histogram("vm.invoke.wall_ns"))
}

/// Consecutive hint-validation failures before a loop's hints are
/// quarantined (the session stops consuming them and translates the loop
/// hint-less, sparing the per-invocation validation cost).
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// Aggregated statistics of a VM session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Translation attempts actually performed (cache misses).
    pub translations: u64,
    /// Attempts that aborted (loop runs on the CPU).
    pub failures: u64,
    /// Total abstract instructions spent translating.
    pub translation_units: u64,
    /// Aggregated per-phase breakdown across all translations.
    pub breakdown: PhaseBreakdown,
    /// Hint validations performed (one per hint kind per translation).
    pub hint_validations: u64,
    /// Translations where at least one hint was rejected.
    pub degraded_translations: u64,
    /// Priority hints rejected (degraded to dynamic Swing/Height).
    pub priority_degradations: u64,
    /// CCA hints rejected (degraded to dynamic identification).
    pub cca_degradations: u64,
    /// Loops whose hints were quarantined after repeated failures.
    pub quarantined_loops: u64,
    /// Quarantines lifted because the caller supplied new hints (a fixed
    /// binary changes the hints fingerprint).
    pub quarantine_lifts: u64,
    /// Translations aborted by the budget watchdog (loop runs on the CPU).
    pub watchdog_aborts: u64,
}

impl VmStats {
    /// Average translation cost per performed translation.
    #[must_use]
    pub fn avg_cost(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.translation_units as f64 / self.translations as f64
        }
    }
}

/// Host-side cost of family-mode dispatch, metered separately from
/// [`VmStats`]: concretization is real work this process does, but the
/// *simulated* machine's translation story must stay bit-identical to the
/// point-keyed path (point translations have no concretize step), so these
/// units never enter a session's breakdown or translation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcretizeStats {
    /// Family entries instantiated at this session's configuration.
    pub concretizations: u64,
    /// Abstract [`Phase::Concretize`] units charged for them.
    pub units: u64,
}

/// One loop invocation's outcome as seen by the VM.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// The resident translation, if the loop runs on the accelerator.
    pub translated: Option<Arc<TranslatedLoop>>,
    /// Host cycles spent translating *on this invocation* (0 on a cache
    /// hit; one abstract meter unit ≈ one host cycle, matching the paper's
    /// instruction-count measurement).
    pub translation_cycles: u64,
}

/// A running co-designed VM: monitors invocations, translates on miss,
/// caches accelerator control, and remembers permanently unsupported loops
/// (the VM patches those call sites back to native code, so they are never
/// re-attempted).
#[derive(Debug)]
pub struct VmSession {
    translator: Translator,
    /// Cached [`Translator::fingerprint`] (the translator is immutable for
    /// the session's lifetime, so this is computed once).
    translator_fp: u64,
    cache: CodeCache<Arc<TranslatedLoop>>,
    /// Host-backend cache: LoopVM artifacts (see [`veal_exec`]) keyed like
    /// the control cache, filled lazily by
    /// [`VmSession::invoke_executable`].
    exec_cache: CodeCache<Arc<veal_exec::ExecutableLoop>>,
    rejected: HashSet<u64>,
    stats: VmStats,
    /// Optional cross-session translation memo (sweep engine, serving
    /// path). `None` keeps the session fully self-contained.
    memo: Option<Arc<dyn MemoBackend>>,
    /// Family mode: when set (and a memo is attached), misses are keyed on
    /// [`Translator::family_fingerprint`] and store one symbolic
    /// translation per `(loop, family, hints)`, concretized locally at this
    /// session's configuration.
    family: Option<Arc<AcceleratorFamily>>,
    /// Cached family fingerprint for the attached family.
    family_fp: u64,
    /// Session-level concretize meter (see [`ConcretizeStats`]).
    concretize: ConcretizeStats,
    /// Optional translation budget: a translation whose total cost exceeds
    /// this many abstract units is abandoned and the loop pinned to the CPU
    /// (watchdog against adversarial hints that inflate validation or
    /// scheduling work).
    budget: Option<u64>,
    /// Consecutive hint-validation failures per loop key, together with the
    /// fingerprint of the hints the streak was built on — different hints
    /// start a fresh streak.
    hint_failures: HashMap<u64, (u64, u32)>,
    /// Loops whose hints are no longer consulted (see
    /// [`QUARANTINE_THRESHOLD`]), mapped to the fingerprint of the hints
    /// that were quarantined. A caller supplying *different* hints (a fixed
    /// binary) lifts the quarantine.
    quarantined: HashMap<u64, u64>,
    /// Observability handle; disabled by default. Events mirror the stat
    /// updates exactly (see [`fold_vm_stats`]) and never alter them.
    trace: Trace,
}

impl VmSession {
    /// Creates a session with the paper's 16-entry code cache.
    #[must_use]
    pub fn new(translator: Translator) -> Self {
        Self::with_cache(translator, CodeCache::paper_default())
    }

    /// Creates a session with a custom code cache.
    #[must_use]
    pub fn with_cache(translator: Translator, cache: CodeCache<Arc<TranslatedLoop>>) -> Self {
        VmSession {
            translator_fp: translator.fingerprint(),
            translator,
            cache,
            exec_cache: CodeCache::paper_default(),
            rejected: HashSet::new(),
            stats: VmStats::default(),
            memo: None,
            family: None,
            family_fp: 0,
            concretize: ConcretizeStats::default(),
            budget: None,
            hint_failures: HashMap::new(),
            quarantined: HashMap::new(),
            trace: Trace::null(),
        }
    }

    /// Attaches a trace handle: the session emits the structured events
    /// documented in [`veal_obs::event`], and the translator gains its
    /// wall-clock profile. Statistics and all abstract-cost numbers are
    /// bit-identical with and without a trace.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.translator.set_trace(trace.clone());
        self.trace = trace;
        self
    }

    /// Caps any single translation at `units` abstract instructions. Past
    /// the cap the watchdog abandons the translation, pins the loop to the
    /// CPU, and the session charges only the work done up to the cap.
    #[must_use]
    pub fn with_translation_budget(mut self, units: u64) -> Self {
        self.budget = Some(units);
        self
    }

    /// Attaches a shared translation memo: on a code-cache miss the session
    /// consults `memo` before translating, and publishes fresh translations
    /// into it.
    ///
    /// Statistics stay **bit-identical** with or without a memo: a memo hit
    /// charges the stored outcome's full phase breakdown exactly as the
    /// fresh translation would (the simulated machine still pays for the
    /// translation — only this process's wall clock is spared).
    #[must_use]
    pub fn with_memo(self, memo: Arc<TranslationMemo>) -> Self {
        self.with_memo_backend(memo)
    }

    /// Like [`VmSession::with_memo`], for any [`MemoBackend`] — the serving
    /// path attaches a [`crate::ShardedMemo`] here. The bit-identity
    /// guarantee is the backend's responsibility: stored outcomes replay
    /// their full breakdown regardless of which thread computed them.
    #[must_use]
    pub fn with_memo_backend(mut self, memo: Arc<dyn MemoBackend>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Switches the memo path to **family mode**: misses store one
    /// symbolic translation under the family fingerprint, and every lookup
    /// (hit or miss) concretizes it at this session's configuration —
    /// so N member configurations share one memo entry instead of N.
    ///
    /// Outcomes and [`VmStats`] stay bit-identical to the point-keyed path;
    /// the real host cost of concretization is metered separately in
    /// [`VmSession::concretize_stats`]. A translator whose configuration is
    /// not a member of `family` (different latency model, out-of-range
    /// axis) keeps the point-keyed path — a symbolic translation would not
    /// be valid for it.
    #[must_use]
    pub fn with_family(mut self, family: Arc<AcceleratorFamily>) -> Self {
        if family.contains(self.translator.config()) {
            self.family_fp = self.translator.family_fingerprint(&family);
            self.family = Some(family);
        }
        self
    }

    /// The translator in use.
    #[must_use]
    pub fn translator(&self) -> &Translator {
        &self.translator
    }

    /// Family-mode concretization telemetry (zero outside family mode).
    #[must_use]
    pub fn concretize_stats(&self) -> ConcretizeStats {
        self.concretize
    }

    /// Handles one invocation of the loop identified by `key`.
    ///
    /// On a cache hit the stored translation is returned at zero cost; on a
    /// miss the loop is translated (and the cost charged); permanently
    /// rejected loops return a baseline disposition at zero cost after the
    /// first attempt.
    pub fn invoke(&mut self, key: u64, body: &LoopBody, hints: &StaticHints) -> Invocation {
        let _wall = self.trace.timer(invoke_wall_ns());
        if self.rejected.contains(&key) {
            self.trace.emit(|| Event::PinnedSkip { key });
            return Invocation {
                translated: None,
                translation_cycles: 0,
            };
        }
        // A quarantined loop whose caller now supplies *different* hints —
        // a rebuilt binary with the hints fixed — gets a fresh chance: the
        // quarantine and its failure streak reset, and the resident
        // hint-less translation is dropped. This runs *before* the cache
        // lookup: while quarantined, the translation cached under this key
        // was produced hint-less, so a cache hit would keep serving it and
        // the corrected hints would only take effect once the entry
        // happened to be evicted. Only quarantined keys pay the
        // fingerprint hash here, keeping the hot hit path untouched.
        if let Some(&quarantined_fp) = self.quarantined.get(&key) {
            if quarantined_fp != hints.fingerprint() {
                self.quarantined.remove(&key);
                self.hint_failures.remove(&key);
                self.cache.remove(key);
                self.stats.quarantine_lifts += 1;
                self.trace.emit(|| Event::QuarantineLift { key });
            }
        }
        if let Some(t) = self.cache.get(key) {
            let hit = Invocation {
                translated: Some(Arc::clone(t)),
                translation_cycles: 0,
            };
            self.trace.emit(|| Event::CacheHit { key });
            return hit;
        }
        let supplied_fp = hints.fingerprint();
        // Quarantined hints are not consulted (nor re-validated): the loop
        // translates as a hint-less binary would. The substitution happens
        // before the memo key is formed, so replays stay consistent.
        let hintless = StaticHints::none();
        let (hints, hints_fp) = if self.quarantined.contains_key(&key) {
            let fp = hintless.fingerprint();
            (&hintless, fp)
        } else {
            (hints, supplied_fp)
        };
        self.trace.emit(|| Event::TranslateStart {
            key,
            loop_hash: body.content_hash(),
        });
        // Code-cache miss: consult the shared memo when attached, translate
        // otherwise; fresh results are published back into the memo. The
        // backend may coalesce concurrent misses onto one translation
        // (single-flight); the stored outcome replays identically either
        // way.
        let outcome: MemoizedOutcome = match self.memo.clone() {
            Some(memo) => {
                let translator = &self.translator;
                let family_mode = self.family.is_some();
                let mkey = MemoKey {
                    loop_hash: body.content_hash(),
                    translator_fp: if family_mode {
                        self.family_fp
                    } else {
                        self.translator_fp
                    },
                    hints_fp,
                };
                let mut computed_here = false;
                let (entry, hit) = memo.get_or_insert_with(&mkey, &mut || {
                    computed_here = true;
                    if family_mode {
                        // One symbolic translation per (loop, family,
                        // hints); every member configuration concretizes
                        // it below.
                        MemoEntry::Family(Arc::new(translator.translate_symbolic(body, hints)))
                    } else {
                        let fresh: TranslationOutcome = translator.translate(body, hints);
                        MemoEntry::Point(MemoizedOutcome {
                            result: fresh.result.map(Arc::new),
                            breakdown: fresh.breakdown,
                            verdict: fresh.verdict,
                        })
                    }
                });
                // `hit` answers "did the table answer directly"; a coalesced
                // outcome computed by another thread also arrives without a
                // local translation and traces as a hit.
                if hit || !computed_here {
                    self.trace.emit(|| Event::MemoHit { key });
                } else {
                    self.trace.emit(|| Event::MemoMiss { key });
                }
                match entry {
                    MemoEntry::Point(m) => m,
                    MemoEntry::Family(sym) => {
                        // Hit or miss, the family entry is instantiated at
                        // this session's configuration. The outcome is
                        // bit-identical to a direct translation; the real
                        // host work lands on the concretize meter only.
                        let mut cm = CostMeter::new();
                        let fresh = self.translator.concretize(&sym, &mut cm);
                        self.concretize.concretizations += 1;
                        self.concretize.units += cm.breakdown().get(Phase::Concretize);
                        MemoizedOutcome {
                            result: fresh.result.map(Arc::new),
                            breakdown: fresh.breakdown,
                            verdict: fresh.verdict,
                        }
                    }
                }
            }
            None => {
                let fresh: TranslationOutcome = self.translator.translate(body, hints);
                MemoizedOutcome {
                    result: fresh.result.map(Arc::new),
                    breakdown: fresh.breakdown,
                    verdict: fresh.verdict,
                }
            }
        };
        // From here on, memo hits and fresh translations are
        // indistinguishable: the simulated machine pays the stored breakdown
        // either way, so memoized sweeps stay bit-identical.
        self.stats.hint_validations += outcome.verdict.checks();
        if outcome.verdict.is_degraded() {
            self.stats.degraded_translations += 1;
            for reason in outcome.verdict.degradations() {
                let kind = match &reason {
                    DegradeReason::PriorityHint(_) => {
                        self.stats.priority_degradations += 1;
                        HintKind::Priority
                    }
                    DegradeReason::CcaHint(_) => {
                        self.stats.cca_degradations += 1;
                        HintKind::Cca
                    }
                };
                self.trace.emit(|| Event::HintDegrade {
                    key,
                    kind,
                    reason: reason.to_string(),
                });
            }
            let streak = self.hint_failures.entry(key).or_insert((hints_fp, 0));
            if streak.0 != hints_fp {
                // Different hints than the streak was built on: the old
                // failures say nothing about these, so start over.
                *streak = (hints_fp, 0);
            }
            streak.1 += 1;
            if streak.1 >= QUARANTINE_THRESHOLD && self.quarantined.insert(key, hints_fp).is_none()
            {
                self.stats.quarantined_loops += 1;
                self.trace.emit(|| Event::Quarantine { key });
            }
        } else if outcome.verdict.checks() > 0 {
            // A clean validation resets the failure streak.
            self.hint_failures.remove(&key);
        }
        // Watchdog: a translation that blows the budget is abandoned — the
        // machine stops at the cap, charges only the work done so far, and
        // the loop is pinned to the CPU like any other rejection.
        if let Some(cap) = self.budget {
            if outcome.breakdown.total() > cap {
                let paid = truncate_breakdown(&outcome.breakdown, cap);
                self.stats.translations += 1;
                self.stats.failures += 1;
                self.stats.watchdog_aborts += 1;
                self.stats.translation_units += paid.total();
                self.stats.breakdown.merge(&paid);
                self.rejected.insert(key);
                self.trace.emit(|| Event::WatchdogAbort {
                    key,
                    cap,
                    paid: paid.total(),
                });
                self.trace.emit(|| Event::TranslateEnd {
                    key,
                    status: TranslateStatus::WatchdogAbort,
                    units: paid.total(),
                    checks: outcome.verdict.checks(),
                    degraded: outcome.verdict.is_degraded(),
                    breakdown: paid,
                });
                return Invocation {
                    translated: None,
                    translation_cycles: paid.total(),
                };
            }
        }
        self.stats.translations += 1;
        self.stats.translation_units += outcome.breakdown.total();
        self.stats.breakdown.merge(&outcome.breakdown);
        self.trace.emit(|| Event::TranslateEnd {
            key,
            status: if outcome.result.is_ok() {
                TranslateStatus::Mapped
            } else {
                TranslateStatus::Failed
            },
            units: outcome.breakdown.total(),
            checks: outcome.verdict.checks(),
            degraded: outcome.verdict.is_degraded(),
            breakdown: outcome.breakdown,
        });
        match outcome.result {
            Ok(arc) => {
                // Control storage: 32-bit words (paper §4.3 sizes 16 loops
                // at ~48 KB of it).
                let bytes = arc.control_words * 4;
                self.cache.insert_sized(key, Arc::clone(&arc), bytes);
                Invocation {
                    translated: Some(arc),
                    translation_cycles: outcome.breakdown.total(),
                }
            }
            Err(_) => {
                self.stats.failures += 1;
                self.rejected.insert(key);
                Invocation {
                    translated: None,
                    translation_cycles: outcome.breakdown.total(),
                }
            }
        }
    }

    /// Handles one invocation on the **host execution** path: returns the
    /// resident LoopVM artifact for `key`, compiling and caching it on a
    /// miss.
    ///
    /// Accelerator-mapped loops go through the normal [`VmSession::invoke`]
    /// machinery first — cache, memo, hint validation, quarantine,
    /// watchdog all apply — and their bytecode is emitted in schedule
    /// order. Loops the accelerator rejects still compile (topological
    /// order): the host backend executes everything the reference
    /// interpreter can. `None` means the body itself is not executable
    /// (opaque call, cyclic, arity-malformed) and the caller keeps native
    /// code.
    pub fn invoke_executable(
        &mut self,
        key: u64,
        body: &LoopBody,
        hints: &StaticHints,
    ) -> Option<Arc<veal_exec::ExecutableLoop>> {
        if let Some(exe) = self.exec_cache.get(key) {
            return Some(Arc::clone(exe));
        }
        let invocation = self.invoke(key, body, hints);
        let schedule = invocation
            .translated
            .as_ref()
            .map(|t| &t.scheduled.schedule);
        let exe = Arc::new(veal_exec::ExecutableLoop::compile(&body.dfg, schedule).ok()?);
        let bytes = exe.code_bytes();
        self.exec_cache.insert_sized(key, Arc::clone(&exe), bytes);
        Some(exe)
    }

    /// Host-backend (LoopVM) code-cache statistics.
    #[must_use]
    pub fn exec_cache_stats(&self) -> CacheStats {
        self.exec_cache.stats()
    }

    /// Whether `key`'s hints are quarantined (no longer consulted).
    #[must_use]
    pub fn is_quarantined(&self, key: u64) -> bool {
        self.quarantined.contains_key(&key)
    }

    /// Session statistics.
    #[must_use]
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Code-cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serializes this session's warm state — every memo entry (if a memo
    /// is attached) and every resident code-cache translation — into a
    /// snapshot byte stream (see [`crate::snapshot`]).
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::EncodeError`] when a count or id overflows the
    /// format's fixed-width fields (implausibly oversized state; never
    /// silently truncated).
    pub fn save_warm_state(&self) -> Result<Vec<u8>, crate::snapshot::EncodeError> {
        let memo_entries = self
            .memo
            .as_deref()
            .map(MemoBackend::export_entries)
            .unwrap_or_default();
        crate::snapshot::encode_warm_state(
            self.translator_fp,
            self.family.is_some().then_some(self.family_fp),
            &memo_entries,
            &self.cache.export_entries(),
        )
    }

    /// Restores warm state from untrusted snapshot bytes into this
    /// session's memo and code cache. Never fails: corrupt or stale
    /// entries are salvaged per entry, and a wholly bad snapshot leaves
    /// the session cold (see [`crate::snapshot::restore_warm_state`]).
    pub fn restore_warm_state(&mut self, bytes: &[u8]) -> crate::snapshot::RestoreReport {
        let report = crate::snapshot::restore_warm_state(
            bytes,
            &self.translator,
            self.family.is_some().then_some(self.family_fp),
            self.memo.as_deref(),
            Some(&mut self.cache),
        );
        self.trace.emit(|| Event::SnapshotRestore {
            restored: report.restored(),
            salvaged: report.salvaged,
            rejected: report.rejected,
        });
        report
    }
}

/// Reconstructs a [`VmStats`] by folding a session's event stream.
///
/// This is the coherence contract between the trace and the counters: for
/// any sequence of invocations, folding the events a session emitted must
/// equal the [`VmSession::stats`] it reports directly. The obs-coherence
/// tests drive both over a fuzz corpus and assert equality.
#[must_use]
pub fn fold_vm_stats(events: &[Event]) -> VmStats {
    let mut stats = VmStats::default();
    for e in events {
        match e {
            Event::TranslateEnd {
                status,
                units,
                checks,
                degraded,
                breakdown,
                ..
            } => {
                stats.translations += 1;
                stats.translation_units += units;
                stats.breakdown.merge(breakdown);
                stats.hint_validations += checks;
                stats.degraded_translations += u64::from(*degraded);
                match status {
                    TranslateStatus::Mapped => {}
                    TranslateStatus::Failed => stats.failures += 1,
                    TranslateStatus::WatchdogAbort => {
                        stats.failures += 1;
                        stats.watchdog_aborts += 1;
                    }
                }
            }
            Event::HintDegrade { kind, .. } => match kind {
                HintKind::Priority => stats.priority_degradations += 1,
                HintKind::Cca => stats.cca_degradations += 1,
            },
            Event::Quarantine { .. } => stats.quarantined_loops += 1,
            Event::QuarantineLift { .. } => stats.quarantine_lifts += 1,
            _ => {}
        }
    }
    stats
}

/// The prefix of `full` the watchdog lets the machine pay for: phases in
/// pipeline order, accumulated until `cap` units, the interrupting phase
/// charged partially. Keeps `translation_units == breakdown.total()`
/// coherent for aborted translations.
fn truncate_breakdown(full: &PhaseBreakdown, cap: u64) -> PhaseBreakdown {
    let mut meter = CostMeter::new();
    let mut remaining = cap;
    for &p in ALL_PHASES {
        let c = full.get(p).min(remaining);
        meter.charge(p, c);
        remaining -= c;
        if remaining == 0 {
            break;
        }
    }
    *meter.breakdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::TranslationMemo;
    use crate::translator::TranslationPolicy;
    use veal_accel::AcceleratorConfig;
    use veal_cca::CcaSpec;
    use veal_ir::{DfgBuilder, Opcode};

    fn session() -> VmSession {
        VmSession::new(Translator::new(
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
            TranslationPolicy::fully_dynamic(),
        ))
    }

    fn simple_loop(name: &str) -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        LoopBody::new(name, b.finish())
    }

    fn call_loop() -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        b.op(Opcode::Call, &[x]);
        LoopBody::new("call", b.finish())
    }

    #[test]
    fn first_invocation_pays_then_hits() {
        let mut s = session();
        let body = simple_loop("l");
        let first = s.invoke(1, &body, &StaticHints::none());
        assert!(first.translated.is_some());
        assert!(first.translation_cycles > 0);
        let second = s.invoke(1, &body, &StaticHints::none());
        assert!(second.translated.is_some());
        assert_eq!(second.translation_cycles, 0);
        assert_eq!(s.stats().translations, 1);
    }

    #[test]
    fn rejected_loop_charged_once() {
        let mut s = session();
        let body = call_loop();
        let first = s.invoke(7, &body, &StaticHints::none());
        assert!(first.translated.is_none());
        assert!(first.translation_cycles > 0);
        let second = s.invoke(7, &body, &StaticHints::none());
        assert!(second.translated.is_none());
        assert_eq!(second.translation_cycles, 0);
        assert_eq!(s.stats().failures, 1);
    }

    #[test]
    fn eviction_forces_retranslation() {
        let cache = CodeCache::new(2);
        let mut s = VmSession::with_cache(
            Translator::new(
                AcceleratorConfig::paper_design(),
                None,
                TranslationPolicy::fully_dynamic(),
            ),
            cache,
        );
        let bodies: Vec<LoopBody> = (0..3).map(|i| simple_loop(&format!("l{i}"))).collect();
        for (i, b) in bodies.iter().enumerate() {
            s.invoke(i as u64, b, &StaticHints::none());
        }
        // Loop 0 was evicted; invoking it again re-pays translation.
        let again = s.invoke(0, &bodies[0], &StaticHints::none());
        assert!(again.translation_cycles > 0);
        assert_eq!(s.stats().translations, 4);
        assert!(s.cache_stats().evictions >= 1);
    }

    #[test]
    fn memo_replays_identical_stats() {
        let body = simple_loop("l");
        // Reference: two independent sessions, no memo.
        let mut plain_a = session();
        plain_a.invoke(1, &body, &StaticHints::none());
        let mut plain_b = session();
        plain_b.invoke(1, &body, &StaticHints::none());

        // Memoized: second session replays the first's translation.
        let memo = Arc::new(TranslationMemo::new());
        let mut memo_a = session().with_memo(Arc::clone(&memo));
        memo_a.invoke(1, &body, &StaticHints::none());
        let mut memo_b = session().with_memo(Arc::clone(&memo));
        memo_b.invoke(1, &body, &StaticHints::none());

        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 1);
        for (plain, memoized) in [(&plain_a, &memo_a), (&plain_b, &memo_b)] {
            assert_eq!(plain.stats().translations, memoized.stats().translations);
            assert_eq!(
                plain.stats().translation_units,
                memoized.stats().translation_units
            );
            assert_eq!(plain.stats().breakdown, memoized.stats().breakdown);
        }
    }

    #[test]
    fn memo_keyed_on_content_not_key() {
        // Two different invocation keys with byte-identical bodies share one
        // memoized translation.
        let memo = Arc::new(TranslationMemo::new());
        let mut s = session().with_memo(Arc::clone(&memo));
        s.invoke(1, &simple_loop("l"), &StaticHints::none());
        s.invoke(2, &simple_loop("l"), &StaticHints::none());
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().entries, 1);
        // Session stats still count both as translations (the simulated
        // machine translated twice; only host work was shared).
        assert_eq!(s.stats().translations, 2);
    }

    #[test]
    fn memoized_failures_replay() {
        let memo = Arc::new(TranslationMemo::new());
        let mut a = session().with_memo(Arc::clone(&memo));
        let first = a.invoke(7, &call_loop(), &StaticHints::none());
        assert!(first.translated.is_none());
        let mut b = session().with_memo(Arc::clone(&memo));
        let replay = b.invoke(7, &call_loop(), &StaticHints::none());
        assert!(replay.translated.is_none());
        assert_eq!(first.translation_cycles, replay.translation_cycles);
        assert_eq!(b.stats().failures, 1);
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn stats_aggregate_breakdowns() {
        let mut s = session();
        s.invoke(1, &simple_loop("a"), &StaticHints::none());
        s.invoke(2, &simple_loop("b"), &StaticHints::none());
        assert_eq!(s.stats().translations, 2);
        assert!(s.stats().avg_cost() > 0.0);
        assert_eq!(s.stats().breakdown.total(), s.stats().translation_units);
    }

    /// A hint that can never validate: wrong length for any non-trivial
    /// loop.
    fn bad_hints() -> StaticHints {
        StaticHints {
            priority: Some(vec![veal_ir::OpId::new(0)]),
            cca_groups: None,
        }
    }

    fn static_session_with_cache(capacity: usize) -> VmSession {
        VmSession::with_cache(
            Translator::new(
                AcceleratorConfig::paper_design(),
                None,
                TranslationPolicy::static_hints(),
            ),
            CodeCache::new(capacity),
        )
    }

    #[test]
    fn degradations_are_counted_per_reason() {
        let mut s = static_session_with_cache(16);
        let inv = s.invoke(1, &simple_loop("l"), &bad_hints());
        assert!(inv.translated.is_some(), "degraded, not failed");
        let st = s.stats();
        assert_eq!(st.hint_validations, 1);
        assert_eq!(st.degraded_translations, 1);
        assert_eq!(st.priority_degradations, 1);
        assert_eq!(st.cca_degradations, 0);
        assert_eq!(st.quarantined_loops, 0);
    }

    #[test]
    fn repeated_hint_failures_quarantine_the_loop() {
        // Capacity-1 cache with two alternating loops: every invocation is
        // a cache miss, so the bad hints are re-validated each time until
        // the quarantine trips.
        let mut s = static_session_with_cache(1);
        let a = simple_loop("a");
        let b = simple_loop("b");
        for _ in 0..QUARANTINE_THRESHOLD {
            s.invoke(1, &a, &bad_hints());
            s.invoke(2, &b, &bad_hints());
        }
        assert!(s.is_quarantined(1));
        assert!(s.is_quarantined(2));
        let st = s.stats().clone();
        assert_eq!(st.quarantined_loops, 2);
        assert_eq!(
            st.degraded_translations,
            2 * u64::from(QUARANTINE_THRESHOLD)
        );
        // Post-quarantine invocations skip validation entirely.
        s.invoke(1, &a, &bad_hints());
        assert_eq!(s.stats().hint_validations, st.hint_validations);
        assert!(
            s.invoke(1, &a, &bad_hints()).translated.is_some()
                || s.invoke(1, &a, &bad_hints()).translation_cycles > 0,
            "quarantined loop still translates hint-less"
        );
    }

    #[test]
    fn corrected_hints_lift_the_quarantine() {
        // Quarantine a loop under bad hints, then supply corrected hints
        // (a different fingerprint, as a fixed binary would): the session
        // must lift the quarantine and consult them again.
        let config = AcceleratorConfig::paper_design();
        let mut s = VmSession::with_cache(
            Translator::new(config.clone(), None, TranslationPolicy::static_hints()),
            CodeCache::new(1),
        );
        let a = simple_loop("a");
        let other = simple_loop("other");
        for _ in 0..QUARANTINE_THRESHOLD {
            s.invoke(1, &a, &bad_hints());
            s.invoke(2, &other, &StaticHints::none()); // evict key 1
        }
        assert!(s.is_quarantined(1));
        let validations_before = s.stats().hint_validations;

        let good = crate::hints::compute_hints(&a, &config, None);
        assert_ne!(good.fingerprint(), bad_hints().fingerprint());
        s.invoke(1, &a, &good);
        assert!(
            !s.is_quarantined(1),
            "new hints fingerprint lifts quarantine"
        );
        assert_eq!(s.stats().quarantine_lifts, 1);
        assert!(
            s.stats().hint_validations > validations_before,
            "corrected hints are validated again"
        );
        assert_eq!(s.stats().quarantined_loops, 1);
    }

    #[test]
    fn corrected_hints_lift_even_while_the_stale_translation_is_resident() {
        // Regression: the lift check used to run after the code-cache
        // early return, so while the quarantined loop's hint-less
        // translation sat in the cache, corrected hints hit the cache and
        // were ignored until the entry happened to be evicted (the other
        // lift tests mask this by forcing eviction with a 1-entry cache).
        let config = AcceleratorConfig::paper_design();
        let mut s = VmSession::with_cache(
            Translator::new(config.clone(), None, TranslationPolicy::static_hints()),
            CodeCache::new(1),
        );
        let a = simple_loop("a");
        let other = simple_loop("other");
        for _ in 0..QUARANTINE_THRESHOLD {
            s.invoke(1, &a, &bad_hints());
            s.invoke(2, &other, &StaticHints::none()); // evict key 1
        }
        assert!(s.is_quarantined(1));
        // Make the hint-less translation resident under key 1; nothing
        // evicts it between here and the corrected hints.
        s.invoke(1, &a, &bad_hints());
        let validations_before = s.stats().hint_validations;
        let translations_before = s.stats().translations;

        let good = crate::hints::compute_hints(&a, &config, None);
        assert_ne!(good.fingerprint(), bad_hints().fingerprint());
        s.invoke(1, &a, &good);
        assert!(
            !s.is_quarantined(1),
            "the lift must not wait for an eviction"
        );
        assert_eq!(s.stats().quarantine_lifts, 1);
        assert_eq!(
            s.stats().translations,
            translations_before + 1,
            "the stale hint-less translation was dropped and replaced"
        );
        assert!(
            s.stats().hint_validations > validations_before,
            "corrected hints are validated, not served from the stale cache"
        );
    }

    #[test]
    fn resupplying_the_quarantined_hints_does_not_lift() {
        let mut s = static_session_with_cache(1);
        let a = simple_loop("a");
        let other = simple_loop("other");
        for _ in 0..QUARANTINE_THRESHOLD {
            s.invoke(1, &a, &bad_hints());
            s.invoke(2, &other, &StaticHints::none());
        }
        assert!(s.is_quarantined(1));
        let validations = s.stats().hint_validations;
        s.invoke(1, &a, &bad_hints());
        assert!(s.is_quarantined(1));
        assert_eq!(s.stats().quarantine_lifts, 0);
        assert_eq!(s.stats().hint_validations, validations);
    }

    #[test]
    fn relapsed_hints_requarantine_after_a_fresh_streak() {
        // After a lift, the *new* hints must fail QUARANTINE_THRESHOLD
        // times on their own before quarantining again — the old streak is
        // gone.
        let mut s = static_session_with_cache(1);
        let a = simple_loop("a");
        let other = simple_loop("other");
        for _ in 0..QUARANTINE_THRESHOLD {
            s.invoke(1, &a, &bad_hints());
            s.invoke(2, &other, &StaticHints::none());
        }
        assert!(s.is_quarantined(1));
        // "Fixed" binary still ships bad hints, just different ones.
        let still_bad = StaticHints {
            priority: Some(vec![veal_ir::OpId::new(0), veal_ir::OpId::new(0)]),
            cca_groups: None,
        };
        for round in 0..QUARANTINE_THRESHOLD {
            s.invoke(1, &a, &still_bad);
            assert_eq!(
                s.is_quarantined(1),
                round + 1 == QUARANTINE_THRESHOLD,
                "quarantine only after a full fresh streak"
            );
            s.invoke(2, &other, &StaticHints::none());
        }
        assert_eq!(s.stats().quarantine_lifts, 1);
        assert_eq!(s.stats().quarantined_loops, 2);
    }

    #[test]
    fn clean_validation_resets_the_failure_streak() {
        let la = AcceleratorConfig::paper_design();
        let t = Translator::new(la.clone(), None, TranslationPolicy::static_hints());
        let body = simple_loop("l");
        let good = crate::hints::compute_hints(&body, &la, None);
        let mut s = VmSession::with_cache(t, CodeCache::new(1));
        let other = simple_loop("other");
        for _ in 0..QUARANTINE_THRESHOLD {
            // One failure, then a clean validation: the streak never
            // reaches the threshold.
            s.invoke(1, &body, &bad_hints());
            s.invoke(2, &other, &StaticHints::none()); // evict key 1
            s.invoke(1, &body, &good);
            s.invoke(2, &other, &StaticHints::none());
        }
        assert!(!s.is_quarantined(1));
        assert_eq!(s.stats().quarantined_loops, 0);
    }

    #[test]
    fn watchdog_aborts_past_the_budget_and_charges_the_prefix() {
        let mut s = session().with_translation_budget(5);
        let inv = s.invoke(1, &simple_loop("l"), &StaticHints::none());
        assert!(inv.translated.is_none(), "aborted to CPU");
        assert_eq!(inv.translation_cycles, 5, "pays exactly the cap");
        let st = s.stats();
        assert_eq!(st.watchdog_aborts, 1);
        assert_eq!(st.failures, 1);
        assert_eq!(st.breakdown.total(), st.translation_units);
        // The abort pins the loop to the CPU: no re-attempt, no new cost.
        let again = s.invoke(1, &simple_loop("l"), &StaticHints::none());
        assert!(again.translated.is_none());
        assert_eq!(again.translation_cycles, 0);
        assert_eq!(s.stats().watchdog_aborts, 1);
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let body = simple_loop("l");
        let mut plain = session();
        let a = plain.invoke(1, &body, &StaticHints::none());
        let mut capped = session().with_translation_budget(u64::MAX);
        let b = capped.invoke(1, &body, &StaticHints::none());
        assert_eq!(a.translation_cycles, b.translation_cycles);
        assert_eq!(plain.stats().breakdown, capped.stats().breakdown);
        assert_eq!(capped.stats().watchdog_aborts, 0);
    }

    #[test]
    fn memo_replays_degradation_counters_identically() {
        let memo = Arc::new(TranslationMemo::new());
        let body = simple_loop("l");
        let mk = || {
            VmSession::new(Translator::new(
                AcceleratorConfig::paper_design(),
                Some(CcaSpec::paper()),
                TranslationPolicy::static_hints(),
            ))
        };
        let mut fresh = mk().with_memo(Arc::clone(&memo));
        fresh.invoke(1, &body, &bad_hints());
        let mut replay = mk().with_memo(Arc::clone(&memo));
        replay.invoke(1, &body, &bad_hints());
        assert_eq!(memo.stats().hits, 1);
        let (a, b) = (fresh.stats(), replay.stats());
        assert_eq!(a.hint_validations, b.hint_validations);
        assert_eq!(a.degraded_translations, b.degraded_translations);
        assert_eq!(a.priority_degradations, b.priority_degradations);
        assert_eq!(a.cca_degradations, b.cca_degradations);
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn restored_session_is_indistinguishable_from_a_continuing_one() {
        // Warm up a memoized session, snapshot it, restore into a fresh
        // process-alike session, then drive both through the same second
        // window. The differential contract: identical stat deltas and
        // bit-identical schedules, with the restored side recomputing
        // nothing.
        let bodies: Vec<LoopBody> = (0..4).map(|i| simple_loop(&format!("w{i}"))).collect();
        let memo_a = Arc::new(TranslationMemo::new());
        let mut warm = session().with_memo(Arc::clone(&memo_a));
        for (i, b) in bodies.iter().enumerate() {
            warm.invoke(i as u64, b, &StaticHints::none());
        }
        let bytes = warm.save_warm_state().expect("warm state encodes");

        let memo_b = Arc::new(TranslationMemo::new());
        let mut restored = session().with_memo(Arc::clone(&memo_b));
        let report = restored.restore_warm_state(&bytes);
        assert_eq!(report.restored() as usize, bodies.len() * 2);
        assert_eq!(report.rejected, 0);

        let before_warm = warm.stats().clone();
        let before_restored = restored.stats().clone();
        let misses_before = memo_b.stats().misses;
        for (i, b) in bodies.iter().enumerate() {
            let a = warm.invoke(i as u64, b, &StaticHints::none());
            let r = restored.invoke(i as u64, b, &StaticHints::none());
            // The warm session hits its code cache at zero cost; the
            // restored one restored that cache too, so both do.
            assert_eq!(a.translation_cycles, r.translation_cycles);
            let (at, rt) = (a.translated.unwrap(), r.translated.unwrap());
            assert_eq!(at.dfg.content_hash(), rt.dfg.content_hash());
            assert_eq!(at.scheduled.schedule.ii, rt.scheduled.schedule.ii);
            assert_eq!(
                at.scheduled.schedule.raw_parts().1,
                rt.scheduled.schedule.raw_parts().1
            );
            assert_eq!(at.control_words, rt.control_words);
            assert_eq!(at.accel_ops, rt.accel_ops);
        }
        let delta = |after: &VmStats, before: &VmStats| {
            (
                after.translations - before.translations,
                after.translation_units - before.translation_units,
                after.failures - before.failures,
            )
        };
        assert_eq!(
            delta(warm.stats(), &before_warm),
            delta(restored.stats(), &before_restored)
        );
        // Nothing was recomputed on the restored side: no new memo misses.
        assert_eq!(memo_b.stats().misses, misses_before);
    }

    #[test]
    fn restore_without_memo_still_warms_the_code_cache() {
        let mut warm = session();
        let body = simple_loop("solo");
        warm.invoke(1, &body, &StaticHints::none());
        let bytes = warm.save_warm_state().expect("warm state encodes");

        let mut restored = session();
        let report = restored.restore_warm_state(&bytes);
        assert_eq!(report.cache_entries, 1);
        let inv = restored.invoke(1, &body, &StaticHints::none());
        assert!(inv.translated.is_some());
        assert_eq!(inv.translation_cycles, 0, "cache hit, nothing recomputed");
        assert_eq!(restored.stats().translations, 0);
    }

    #[test]
    fn restoring_garbage_leaves_a_session_cold_but_working() {
        let mut s = session();
        let report = s.restore_warm_state(b"definitely not a snapshot");
        assert!(report.is_cold());
        let inv = s.invoke(1, &simple_loop("l"), &StaticHints::none());
        assert!(inv.translated.is_some());
        assert!(inv.translation_cycles > 0);
    }
}
