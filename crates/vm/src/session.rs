//! A stateful VM session: translator + code cache + statistics.

use crate::cache::{CacheStats, CodeCache};
use crate::hints::StaticHints;
use crate::memo::{MemoKey, MemoizedOutcome, TranslationMemo};
use crate::translator::{TranslatedLoop, TranslationOutcome, Translator};
use std::collections::HashSet;
use std::sync::Arc;
use veal_ir::{LoopBody, PhaseBreakdown};

/// Aggregated statistics of a VM session.
#[derive(Debug, Clone, Default)]
pub struct VmStats {
    /// Translation attempts actually performed (cache misses).
    pub translations: u64,
    /// Attempts that aborted (loop runs on the CPU).
    pub failures: u64,
    /// Total abstract instructions spent translating.
    pub translation_units: u64,
    /// Aggregated per-phase breakdown across all translations.
    pub breakdown: PhaseBreakdown,
}

impl VmStats {
    /// Average translation cost per performed translation.
    #[must_use]
    pub fn avg_cost(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.translation_units as f64 / self.translations as f64
        }
    }
}

/// One loop invocation's outcome as seen by the VM.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// The resident translation, if the loop runs on the accelerator.
    pub translated: Option<Arc<TranslatedLoop>>,
    /// Host cycles spent translating *on this invocation* (0 on a cache
    /// hit; one abstract meter unit ≈ one host cycle, matching the paper's
    /// instruction-count measurement).
    pub translation_cycles: u64,
}

/// A running co-designed VM: monitors invocations, translates on miss,
/// caches accelerator control, and remembers permanently unsupported loops
/// (the VM patches those call sites back to native code, so they are never
/// re-attempted).
#[derive(Debug)]
pub struct VmSession {
    translator: Translator,
    /// Cached [`Translator::fingerprint`] (the translator is immutable for
    /// the session's lifetime, so this is computed once).
    translator_fp: u64,
    cache: CodeCache<Arc<TranslatedLoop>>,
    rejected: HashSet<u64>,
    stats: VmStats,
    /// Optional cross-session translation memo (sweep engine). `None` keeps
    /// the session fully self-contained.
    memo: Option<Arc<TranslationMemo>>,
}

impl VmSession {
    /// Creates a session with the paper's 16-entry code cache.
    #[must_use]
    pub fn new(translator: Translator) -> Self {
        Self::with_cache(translator, CodeCache::paper_default())
    }

    /// Creates a session with a custom code cache.
    #[must_use]
    pub fn with_cache(translator: Translator, cache: CodeCache<Arc<TranslatedLoop>>) -> Self {
        VmSession {
            translator_fp: translator.fingerprint(),
            translator,
            cache,
            rejected: HashSet::new(),
            stats: VmStats::default(),
            memo: None,
        }
    }

    /// Attaches a shared translation memo: on a code-cache miss the session
    /// consults `memo` before translating, and publishes fresh translations
    /// into it.
    ///
    /// Statistics stay **bit-identical** with or without a memo: a memo hit
    /// charges the stored outcome's full phase breakdown exactly as the
    /// fresh translation would (the simulated machine still pays for the
    /// translation — only this process's wall clock is spared).
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<TranslationMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The translator in use.
    #[must_use]
    pub fn translator(&self) -> &Translator {
        &self.translator
    }

    /// Handles one invocation of the loop identified by `key`.
    ///
    /// On a cache hit the stored translation is returned at zero cost; on a
    /// miss the loop is translated (and the cost charged); permanently
    /// rejected loops return a baseline disposition at zero cost after the
    /// first attempt.
    pub fn invoke(&mut self, key: u64, body: &LoopBody, hints: &StaticHints) -> Invocation {
        if self.rejected.contains(&key) {
            return Invocation {
                translated: None,
                translation_cycles: 0,
            };
        }
        if let Some(t) = self.cache.get(key) {
            return Invocation {
                translated: Some(Arc::clone(t)),
                translation_cycles: 0,
            };
        }
        // Code-cache miss: consult the shared memo when attached, translate
        // otherwise; fresh results are published back into the memo.
        let outcome: MemoizedOutcome = match &self.memo {
            Some(memo) => {
                let mkey = MemoKey {
                    loop_hash: body.content_hash(),
                    translator_fp: self.translator_fp,
                    hints_fp: hints.fingerprint(),
                };
                match memo.get(&mkey) {
                    Some(hit) => hit,
                    None => {
                        let fresh: TranslationOutcome = self.translator.translate(body, hints);
                        let stored = MemoizedOutcome {
                            result: fresh.result.map(Arc::new),
                            breakdown: fresh.breakdown,
                        };
                        memo.insert(mkey, stored.clone());
                        stored
                    }
                }
            }
            None => {
                let fresh: TranslationOutcome = self.translator.translate(body, hints);
                MemoizedOutcome {
                    result: fresh.result.map(Arc::new),
                    breakdown: fresh.breakdown,
                }
            }
        };
        // From here on, memo hits and fresh translations are
        // indistinguishable: the simulated machine pays the stored breakdown
        // either way, so memoized sweeps stay bit-identical.
        self.stats.translations += 1;
        self.stats.translation_units += outcome.breakdown.total();
        self.stats.breakdown.merge(&outcome.breakdown);
        match outcome.result {
            Ok(arc) => {
                // Control storage: 32-bit words (paper §4.3 sizes 16 loops
                // at ~48 KB of it).
                let bytes = arc.control_words * 4;
                self.cache.insert_sized(key, Arc::clone(&arc), bytes);
                Invocation {
                    translated: Some(arc),
                    translation_cycles: outcome.breakdown.total(),
                }
            }
            Err(_) => {
                self.stats.failures += 1;
                self.rejected.insert(key);
                Invocation {
                    translated: None,
                    translation_cycles: outcome.breakdown.total(),
                }
            }
        }
    }

    /// Session statistics.
    #[must_use]
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Code-cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::TranslationMemo;
    use crate::translator::TranslationPolicy;
    use veal_accel::AcceleratorConfig;
    use veal_cca::CcaSpec;
    use veal_ir::{DfgBuilder, Opcode};

    fn session() -> VmSession {
        VmSession::new(Translator::new(
            AcceleratorConfig::paper_design(),
            Some(CcaSpec::paper()),
            TranslationPolicy::fully_dynamic(),
        ))
    }

    fn simple_loop(name: &str) -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.load_stream(0);
        let y = b.op(Opcode::Add, &[x, x]);
        b.store_stream(1, y);
        LoopBody::new(name, b.finish())
    }

    fn call_loop() -> LoopBody {
        let mut b = DfgBuilder::new();
        let x = b.live_in();
        b.op(Opcode::Call, &[x]);
        LoopBody::new("call", b.finish())
    }

    #[test]
    fn first_invocation_pays_then_hits() {
        let mut s = session();
        let body = simple_loop("l");
        let first = s.invoke(1, &body, &StaticHints::none());
        assert!(first.translated.is_some());
        assert!(first.translation_cycles > 0);
        let second = s.invoke(1, &body, &StaticHints::none());
        assert!(second.translated.is_some());
        assert_eq!(second.translation_cycles, 0);
        assert_eq!(s.stats().translations, 1);
    }

    #[test]
    fn rejected_loop_charged_once() {
        let mut s = session();
        let body = call_loop();
        let first = s.invoke(7, &body, &StaticHints::none());
        assert!(first.translated.is_none());
        assert!(first.translation_cycles > 0);
        let second = s.invoke(7, &body, &StaticHints::none());
        assert!(second.translated.is_none());
        assert_eq!(second.translation_cycles, 0);
        assert_eq!(s.stats().failures, 1);
    }

    #[test]
    fn eviction_forces_retranslation() {
        let cache = CodeCache::new(2);
        let mut s = VmSession::with_cache(
            Translator::new(
                AcceleratorConfig::paper_design(),
                None,
                TranslationPolicy::fully_dynamic(),
            ),
            cache,
        );
        let bodies: Vec<LoopBody> = (0..3).map(|i| simple_loop(&format!("l{i}"))).collect();
        for (i, b) in bodies.iter().enumerate() {
            s.invoke(i as u64, b, &StaticHints::none());
        }
        // Loop 0 was evicted; invoking it again re-pays translation.
        let again = s.invoke(0, &bodies[0], &StaticHints::none());
        assert!(again.translation_cycles > 0);
        assert_eq!(s.stats().translations, 4);
        assert!(s.cache_stats().evictions >= 1);
    }

    #[test]
    fn memo_replays_identical_stats() {
        let body = simple_loop("l");
        // Reference: two independent sessions, no memo.
        let mut plain_a = session();
        plain_a.invoke(1, &body, &StaticHints::none());
        let mut plain_b = session();
        plain_b.invoke(1, &body, &StaticHints::none());

        // Memoized: second session replays the first's translation.
        let memo = Arc::new(TranslationMemo::new());
        let mut memo_a = session().with_memo(Arc::clone(&memo));
        memo_a.invoke(1, &body, &StaticHints::none());
        let mut memo_b = session().with_memo(Arc::clone(&memo));
        memo_b.invoke(1, &body, &StaticHints::none());

        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 1);
        for (plain, memoized) in [(&plain_a, &memo_a), (&plain_b, &memo_b)] {
            assert_eq!(plain.stats().translations, memoized.stats().translations);
            assert_eq!(
                plain.stats().translation_units,
                memoized.stats().translation_units
            );
            assert_eq!(plain.stats().breakdown, memoized.stats().breakdown);
        }
    }

    #[test]
    fn memo_keyed_on_content_not_key() {
        // Two different invocation keys with byte-identical bodies share one
        // memoized translation.
        let memo = Arc::new(TranslationMemo::new());
        let mut s = session().with_memo(Arc::clone(&memo));
        s.invoke(1, &simple_loop("l"), &StaticHints::none());
        s.invoke(2, &simple_loop("l"), &StaticHints::none());
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().entries, 1);
        // Session stats still count both as translations (the simulated
        // machine translated twice; only host work was shared).
        assert_eq!(s.stats().translations, 2);
    }

    #[test]
    fn memoized_failures_replay() {
        let memo = Arc::new(TranslationMemo::new());
        let mut a = session().with_memo(Arc::clone(&memo));
        let first = a.invoke(7, &call_loop(), &StaticHints::none());
        assert!(first.translated.is_none());
        let mut b = session().with_memo(Arc::clone(&memo));
        let replay = b.invoke(7, &call_loop(), &StaticHints::none());
        assert!(replay.translated.is_none());
        assert_eq!(first.translation_cycles, replay.translation_cycles);
        assert_eq!(b.stats().failures, 1);
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn stats_aggregate_breakdowns() {
        let mut s = session();
        s.invoke(1, &simple_loop("a"), &StaticHints::none());
        s.invoke(2, &simple_loop("b"), &StaticHints::none());
        assert_eq!(s.stats().translations, 2);
        assert!(s.stats().avg_cost() > 0.0);
        assert_eq!(s.stats().breakdown.total(), s.stats().translation_units);
    }
}
